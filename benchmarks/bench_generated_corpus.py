"""Generated-corpus throughput: the ``generated`` workload family end to end.

The ground-truth generator (``repro.gen``) opens an effectively unbounded
workload; this benchmark measures how fast the service chews through one
seeded corpus -- generation, compilation, and ``analyze_corpus`` under each
executor backend -- and verifies that every backend produces byte-identical
results (the differential oracle's core invariant, measured here at corpus
scale instead of per program).

Run modes:

* script (what CI's gen-smoke can use for a quick number)::

      PYTHONPATH=src python benchmarks/bench_generated_corpus.py --count 40

* pytest::

      PYTHONPATH=src python -m pytest benchmarks/bench_generated_corpus.py -q

Numbers land in ``benchmarks/results/generated_corpus.txt``.
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

DEFAULT_COUNT = int(os.environ.get("REPRO_GEN_BENCH_COUNT", "40"))
DEFAULT_SEED = 20160613
BACKENDS = ("serial", "threads", "processes")
#: pytest smoke-corpus size; large enough that the process backend's pool
#: spawn + program fan-out amortizes instead of dominating.
SMOKE_COUNT = int(os.environ.get("REPRO_GEN_SMOKE_COUNT", "24"))


def _corpus(count, seed, profile_name):
    from repro.gen import generate_corpus, named_profiles

    generate_start = time.perf_counter()
    programs = generate_corpus(count, seed, named_profiles()[profile_name])
    generate_seconds = time.perf_counter() - generate_start

    compile_start = time.perf_counter()
    compiled = {program.name: program.compile().program for program in programs}
    compile_seconds = time.perf_counter() - compile_start
    return programs, compiled, generate_seconds, compile_seconds


def _run_backend(compiled, executor, workers=None):
    from repro.gen import result_fingerprint
    from repro.service import AnalysisService, ServiceConfig, analyze_corpus

    service = AnalysisService(
        ServiceConfig(use_cache=True, executor=executor, max_workers=workers)
    )
    try:
        start = time.perf_counter()
        report = analyze_corpus(compiled, service=service)
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    fingerprints = {
        name: result_fingerprint(entry.types) for name, entry in report.reports.items()
    }
    return elapsed, report, fingerprints


def run(count, seed, profile_name, write=True, workers=None, gate=None):
    programs, compiled, generate_seconds, compile_seconds = _corpus(
        count, seed, profile_name
    )
    total_functions = sum(len(program.functions) for program in programs)

    lines = [
        "Generated-corpus throughput (repro.gen -> analyze_corpus per backend)",
        "",
        f"corpus: {count} programs / {total_functions} functions "
        f"(seed {seed}, profile {profile_name!r})",
        f"generate {generate_seconds:.3f}s, compile {compile_seconds:.3f}s",
        "",
        f"{'backend':>10} {'seconds':>8} {'prog/s':>8} {'hit_rate':>8}",
    ]
    reference = None
    timings = {}
    backend_rows = {}
    for backend in BACKENDS:
        elapsed, report, fingerprints = _run_backend(compiled, backend, workers)
        timings[backend] = elapsed
        if reference is None:
            reference = fingerprints
        else:
            mismatched = [name for name in reference if fingerprints[name] != reference[name]]
            assert not mismatched, (
                f"backend {backend!r} diverged from serial on: {mismatched[:5]}"
            )
        backend_rows[backend] = _backend_row(backend, elapsed, report, count)
        lines.append(
            f"{backend:>10} {elapsed:>8.3f} {count / elapsed:>8.1f} "
            f"{report.hit_rate:>8.0%}"
        )

    speedups = {
        backend: timings["serial"] / timings[backend] if timings[backend] else None
        for backend in BACKENDS
    }
    lines += [
        "",
        f"processes vs serial: {speedups['processes']:.2f}x "
        f"({os.cpu_count()} cpus, workers={workers or 'auto'})",
        f"all {len(BACKENDS)} backends byte-identical over {count} programs",
    ]
    report_text = "\n".join(lines)
    print(report_text)
    if write:
        from conftest import write_result

        write_result("generated_corpus.txt", report_text)
        payload = {
            "benchmark": "generated_corpus",
            "programs": count,
            "functions": total_functions,
            "seed": seed,
            "profile": profile_name,
            "cpus": os.cpu_count(),
            "workers": workers,
            "generate_seconds": generate_seconds,
            "compile_seconds": compile_seconds,
            "backends": backend_rows,
            "speedup_vs_serial": speedups,
            "byte_identical": True,
        }
        for name in ("BENCH_corpus.json", "BENCH_corpus_backends.json"):
            bench_path = os.path.join(_HERE, "results", name)
            with open(bench_path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"machine-readable: {bench_path}")
    if gate is not None:
        ratio = speedups["processes"]
        assert ratio >= gate, (
            f"processes backend only {ratio:.2f}x serial on the generated smoke "
            f"corpus (gate {gate}x, {os.cpu_count()} cpus)"
        )
        print(f"gate passed: processes {ratio:.2f}x serial (>= {gate}x)")
    return timings


def _backend_row(backend, elapsed, report, count):
    """One backend's machine-readable record: throughput plus per-program
    latency percentiles estimated through the obs histogram (same method the
    server's ``metrics`` verb uses)."""
    from repro.obs import Histogram

    hist = Histogram()
    for entry in report.reports.values():
        hist.observe(entry.seconds)
    row = {
        "backend": backend,
        "wall_seconds": elapsed,
        "programs_per_second": count / elapsed if elapsed else None,
        "hit_rate": report.hit_rate,
        "per_program_seconds": {
            "count": hist.count,
            "mean": hist.sum / hist.count if hist.count else None,
        },
    }
    row["per_program_seconds"].update(hist.percentiles())
    return row


def test_generated_corpus_backends_identical():
    """Small pytest entry: every backend identical on a quick corpus."""
    run(SMOKE_COUNT, DEFAULT_SEED, "smoke", write=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--profile", choices=["smoke", "default", "stress"], default="smoke"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="process-backend worker count"
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail unless processes >= GATE x serial (needs >= 2 real CPUs)",
    )
    args = parser.parse_args(argv)
    run(args.count, args.seed, args.profile, workers=args.workers, gate=args.gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
