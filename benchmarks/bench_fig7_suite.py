"""Figure 7: the benchmark-suite inventory.

The paper lists its corpus with per-binary instruction counts.  This benchmark
regenerates the analogous inventory for the synthetic suite (program name,
cluster, instruction count, CFG nodes, procedure count) and benchmarks the
suite generator itself.
"""

from conftest import write_result


def _generate_small():
    from repro.eval.workloads import make_workload

    return make_workload("inventory_probe", 12, seed=7)


def test_fig7_suite_inventory(benchmark, suite):
    workload = benchmark(_generate_small)
    assert workload.instructions > 0

    from repro.eval.harness import format_rows
    from repro.ir import cfg_node_count

    rows = []
    for item in suite:
        rows.append(
            {
                "program": item.name,
                "cluster": item.cluster,
                "procedures": len(item.program.procedures),
                "instructions": item.instructions,
                "cfg_nodes": sum(cfg_node_count(p) for p in item.program),
            }
        )
    total = sum(item.instructions for item in suite)
    rows.append({"program": "TOTAL", "instructions": total})
    write_result("fig7_suite.txt", "Figure 7: benchmark suite inventory\n\n" + format_rows(rows))
    assert len(suite) >= 20
