"""Figure 4 / section 3.3: sound pointer subtyping through aliased copies.

Benchmarks the saturation-based simplification on the two aliased-pointer
programs and checks that both derive ``X <= Y`` (the property a unary ``Ptr``
constructor cannot deliver).
"""

from conftest import write_result

PROGRAM_1 = ["q <= p", "x <= p.store", "q.load <= y"]
PROGRAM_2 = ["q <= p", "x <= q.store", "p.load <= y"]


def _derive_both():
    from repro.core import parse_constraint, parse_constraints, proves

    goal = parse_constraint("x <= y")
    results = []
    for program in (PROGRAM_1, PROGRAM_2):
        constraints = parse_constraints(program)
        results.append(proves(constraints, goal))
    return results


def test_fig4_pointer_subtyping(benchmark):
    results = benchmark(_derive_both)
    assert results == [True, True]
    write_result(
        "fig4_pointers.txt",
        "Figure 4: x <= y derivable through aliased pointers\n"
        f"  program f (store through copy): {results[0]}\n"
        f"  program g (load through copy):  {results[1]}",
    )
