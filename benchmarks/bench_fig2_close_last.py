"""Figure 2: the `close_last` linked-list example.

Benchmarks the full pipeline (disassembly text to C types) on the paper's
running example and regenerates its artefacts: the inferred type scheme and the
reconstructed C declaration.
"""

from conftest import write_result

CLOSE_LAST_ASM = """
.extern close

close_last:
    mov edx, [esp+4]
    jmp .loc_8048402
.loc_8048400:
    mov edx, eax
.loc_8048402:
    mov eax, [edx]
    test eax, eax
    jnz .loc_8048400
    mov eax, [edx+4]
    push eax
    call close
    add esp, 4
    ret
"""


def _analyze():
    from repro import analyze_program

    return analyze_program(CLOSE_LAST_ASM)


def test_fig2_close_last(benchmark):
    types = benchmark(_analyze)
    info = types["close_last"]
    param = info.param_type(0)
    assert param.const

    lines = [
        "Figure 2 reproduction: close_last",
        "",
        "Inferred type scheme:",
        str(types.scheme("close_last")),
        "",
        "Reconstructed C signature:",
        types.signature("close_last"),
        "",
        "Synthesized structs:",
    ]
    for name, struct in sorted(types.struct_definitions().items()):
        lines.append(f"  {struct};")
    write_result("fig2_close_last.txt", "\n".join(lines))
