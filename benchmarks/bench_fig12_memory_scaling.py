"""Figure 12: type-inference memory usage versus program size.

The paper fits ``m = 0.037 * N^0.846`` (R^2 = 0.959): memory grows sublinearly
to mildly linearly with program size.  The reproduction measures peak traced
allocation over the same size sweep used for Figure 11 and fits the model.
"""

from conftest import write_result


def test_fig12_memory_scaling(benchmark, scaling_points):
    from repro.eval.scaling import figure12_fit

    fit = benchmark(figure12_fit, scaling_points)

    lines = [
        "Figure 12: type-inference memory usage vs program size",
        "",
        f"{'program':>12}  {'cfg_nodes':>9}  {'peak MB':>9}",
    ]
    for point in scaling_points:
        lines.append(
            f"{point.name:>12}  {point.cfg_nodes:>9}  {point.peak_memory_bytes / 1e6:>9.2f}"
        )
    lines += ["", f"best fit: m = {fit.a:.3g} * N^{fit.b:.3f}   (R^2 = {fit.r_squared:.3f})",
              "paper:    m = 0.037 * N^0.846 (R^2 = 0.959)"]
    write_result("fig12_memory_scaling.txt", "\n".join(lines))

    assert fit.b < 2.0, "memory growth should be at most mildly superlinear"
