"""Task-codec micro-benchmark: nested JSON (v1) vs integer tables (v2).

The process backend ships solver inputs and callee summaries to workers as
JSON text.  The v1 codec spelled every derived type variable out at every
occurrence and re-parsed each one on the worker; the v2 codec
(``repro.service.procpool``) interns every string once per task and ships
flat int arrays.  This benchmark re-encodes the same wave tasks both ways --
the v1 encoder/decoder is retained below as a reference implementation --
and reports payload bytes and encode/decode wall time.

The hard gate is on *bytes*: the integer-table payload must not be larger
than the nested-JSON payload it replaced (time on a loaded CI runner is too
noisy to gate, so it is reported but not asserted).

Run modes:

* script (what CI's perf-smoke uses)::

      PYTHONPATH=src python benchmarks/bench_codec.py

* pytest::

      PYTHONPATH=src python -m pytest benchmarks/bench_codec.py -q

Numbers land in ``benchmarks/results/BENCH_codec.json``.
"""

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

DEFAULT_SEED = 20160613
DEFAULT_FUNCTIONS = int(os.environ.get("REPRO_CODEC_BENCH_FUNCTIONS", "96"))


# ---------------------------------------------------------------------------
# The retained v1 codec (reference implementation, do not "optimize")
# ---------------------------------------------------------------------------


def _encode_callee_v1(result):
    return {
        "scheme": result.scheme.to_json(),
        "formal_ins": [
            [str(dtv), sketch.to_json()]
            for dtv, sketch in result.formal_in_sketches.items()
        ],
        "formal_outs": [
            [str(dtv), sketch.to_json()]
            for dtv, sketch in result.formal_out_sketches.items()
        ],
    }


def _decode_callee_v1(name, entry, lattice):
    from repro.core.schemes import TypeScheme
    from repro.core.sketches import Sketch
    from repro.core.solver import ProcedureResult
    from repro.core.variables import parse_dtv

    return ProcedureResult(
        name=name,
        scheme=TypeScheme.from_json(entry["scheme"]),
        formal_in_sketches={
            parse_dtv(text): Sketch.from_json(data, lattice)
            for text, data in entry["formal_ins"]
        },
        formal_out_sketches={
            parse_dtv(text): Sketch.from_json(data, lattice)
            for text, data in entry["formal_outs"]
        },
        shapes=None,
    )


def _encode_input_v1(proc):
    return {
        "constraints": proc.constraints.to_json(),
        "formal_ins": [str(dtv) for dtv in proc.formal_ins],
        "formal_outs": [str(dtv) for dtv in proc.formal_outs],
        "callsites": [[c.callee, c.base] for c in proc.callsites],
    }


def _decode_input_v1(name, entry):
    from repro.core.constraints import ConstraintSet
    from repro.core.solver import Callsite, ProcedureTypingInput
    from repro.core.variables import parse_dtv

    return ProcedureTypingInput(
        name=name,
        constraints=ConstraintSet.from_json(entry["constraints"]),
        formal_ins=tuple(parse_dtv(text) for text in entry["formal_ins"]),
        formal_outs=tuple(parse_dtv(text) for text in entry["formal_outs"]),
        callsites=tuple(Callsite(callee, base) for callee, base in entry["callsites"]),
    )


def _encode_task_v1(chunk, inputs, working):
    sccs = []
    callees = {}
    for scc in chunk:
        scc_set = set(scc)
        scc_inputs = {}
        for name in scc:
            proc = inputs[name]
            scc_inputs[name] = _encode_input_v1(proc)
            for callsite in proc.callsites:
                callee = callsite.callee
                if callee in scc_set or callee in callees or callee not in working:
                    continue
                callees[callee] = _encode_callee_v1(working[callee])
        sccs.append({"scc": list(scc), "key": None, "inputs": scc_inputs})
    message = {"format": "retypd-procpool-v1", "sccs": sccs, "callees": callees}
    return json.dumps(message, sort_keys=True, separators=(",", ":"))


def _decode_task_v1(task_json, lattice):
    task = json.loads(task_json)
    callees = {
        name: _decode_callee_v1(name, entry, lattice)
        for name, entry in task["callees"].items()
    }
    decoded = []
    for item in task["sccs"]:
        decoded.append(
            {
                name: _decode_input_v1(name, entry)
                for name, entry in item["inputs"].items()
            }
        )
    return callees, decoded


def _decode_task_v2(task_json, lattice):
    from repro.service import procpool

    task = json.loads(task_json)
    reader = procpool._TableReader(task["strings"])
    callees = {
        name: procpool.decode_callee(name, entry, reader, lattice)
        for name, entry in task["callees"].items()
    }
    decoded = []
    for item in task["sccs"]:
        decoded.append(
            {
                name: procpool.decode_input(name, entry, reader)
                for name, entry in item["inputs"].items()
            }
        )
    return callees, decoded


# ---------------------------------------------------------------------------
# The workload: every wave of a solved synthetic program, as worker tasks
# ---------------------------------------------------------------------------


def _wave_tasks(functions, seed):
    """(chunk, inputs, working) per wave of one generated program's DAG."""
    from repro.core.lattice import default_lattice
    from repro.core.solver import SolveStats, Solver, SolverConfig
    from repro.eval.workloads import make_workload
    from repro.ir.callgraph import CallGraph
    from repro.typegen.abstract_interp import generate_program_constraints
    from repro.typegen.externs import (
        ensure_lattice_tags,
        extern_schemes,
        standard_externs,
    )

    lattice = ensure_lattice_tags(default_lattice())
    externs = standard_externs()
    workload = make_workload("codec_bench", functions, seed)
    inputs = generate_program_constraints(workload.program, externs)
    callgraph = CallGraph.from_typing_inputs(inputs)
    solver = Solver(lattice, extern_schemes(externs), SolverConfig())

    tasks = []
    working = {}
    for wave in callgraph.scc_waves():
        tasks.append((list(wave), inputs, dict(working)))
        for scc in wave:
            working.update(solver.solve_scc(scc, inputs, working, stats=SolveStats()))
    return lattice, tasks


def _measure(encode, decode, tasks, lattice, repeats):
    encode_seconds = 0.0
    decode_seconds = 0.0
    payload_bytes = 0
    for _ in range(repeats):
        payload_bytes = 0
        for chunk, inputs, working in tasks:
            start = time.perf_counter()
            payload = encode(chunk, inputs, working)
            encode_seconds += time.perf_counter() - start
            payload_bytes += len(payload.encode("utf-8"))
            start = time.perf_counter()
            decode(payload, lattice)
            decode_seconds += time.perf_counter() - start
    return {
        "encode_seconds": encode_seconds / repeats,
        "decode_seconds": decode_seconds / repeats,
        "payload_bytes": payload_bytes,
    }


def run(functions=DEFAULT_FUNCTIONS, seed=DEFAULT_SEED, repeats=3, write=True):
    from repro.service import procpool

    lattice, tasks = _wave_tasks(functions, seed)

    def encode_v2(chunk, inputs, working):
        return procpool.encode_task(chunk, inputs, working, {})

    v1 = _measure(_encode_task_v1, _decode_task_v1, tasks, lattice, repeats)
    v2 = _measure(encode_v2, _decode_task_v2, tasks, lattice, repeats)

    # The two codecs must describe the same tasks: decoded inputs compare
    # equal object-by-object (the v2 round-trip test covers byte identity).
    for chunk, inputs, working in tasks[-1:]:
        _, d1 = _decode_task_v1(_encode_task_v1(chunk, inputs, working), lattice)
        _, d2 = _decode_task_v2(encode_v2(chunk, inputs, working), lattice)
        for scc1, scc2 in zip(d1, d2):
            assert scc1.keys() == scc2.keys()
            for name in scc1:
                assert scc1[name].constraints == scc2[name].constraints
                assert scc1[name].formal_ins == scc2[name].formal_ins

    bytes_ratio = v2["payload_bytes"] / v1["payload_bytes"]
    report = {
        "benchmark": "task_codec",
        "functions": functions,
        "seed": seed,
        "waves": len(tasks),
        "repeats": repeats,
        "v1_nested_json": v1,
        "v2_integer_tables": v2,
        "bytes_ratio_v2_over_v1": bytes_ratio,
        "encode_speedup": v1["encode_seconds"] / v2["encode_seconds"]
        if v2["encode_seconds"]
        else None,
        "decode_speedup": v1["decode_seconds"] / v2["decode_seconds"]
        if v2["decode_seconds"]
        else None,
    }
    print(
        f"task codec over {len(tasks)} waves ({functions} functions):\n"
        f"  v1 nested JSON    : {v1['payload_bytes']:>9} bytes  "
        f"encode {v1['encode_seconds'] * 1e3:7.2f} ms  decode {v1['decode_seconds'] * 1e3:7.2f} ms\n"
        f"  v2 integer tables : {v2['payload_bytes']:>9} bytes  "
        f"encode {v2['encode_seconds'] * 1e3:7.2f} ms  decode {v2['decode_seconds'] * 1e3:7.2f} ms\n"
        f"  bytes ratio v2/v1 : {bytes_ratio:.3f}"
    )
    if write:
        path = os.path.join(_HERE, "results", "BENCH_codec.json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"machine-readable: {path}")

    assert bytes_ratio <= 1.0, (
        f"integer-table payloads grew past nested JSON: {bytes_ratio:.3f}x"
    )
    return report


def test_integer_codec_is_no_larger_than_nested_json():
    """Pytest entry: quick corpus, same byte gate."""
    run(functions=32, repeats=1, write=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--functions", type=int, default=DEFAULT_FUNCTIONS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    run(args.functions, args.seed, args.repeats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
