"""Figure 11: type-inference time versus program size.

The paper fits ``T = 0.000725 * N^1.098`` (R^2 = 0.977) over 2K-840K
instruction binaries -- essentially linear scaling despite the cubic
per-procedure worst case.  The reproduction sweeps generated programs of
increasing size, fits the same power-law model numerically in (N, T) space and
checks that the measured exponent stays far below the cubic worst case.
"""

from conftest import write_result


def test_fig11_time_scaling(benchmark, scaling_points):
    from repro.eval.scaling import figure11_fit, fit_power_law

    fit = benchmark(figure11_fit, scaling_points)

    lines = [
        "Figure 11: type-inference time vs program size",
        "",
        f"{'program':>12}  {'cfg_nodes':>9}  {'instructions':>12}  {'seconds':>8}",
    ]
    for point in scaling_points:
        lines.append(
            f"{point.name:>12}  {point.cfg_nodes:>9}  {point.instructions:>12}  {point.seconds:>8.3f}"
        )
    lines += ["", f"best fit: T = {fit.a:.3g} * N^{fit.b:.3f}   (R^2 = {fit.r_squared:.3f})",
              "paper:    T = 0.000725 * N^1.098 (R^2 = 0.977)"]
    write_result("fig11_time_scaling.txt", "\n".join(lines))

    assert fit.b < 2.5, "scaling should stay far below the cubic worst case"
    assert fit.r_squared > 0.5
