"""Figure 11: type-inference time versus program size.

The paper fits ``T = 0.000725 * N^1.098`` (R^2 = 0.977) over 2K-840K
instruction binaries -- essentially linear scaling despite the cubic
per-procedure worst case.  The reproduction sweeps generated programs of
increasing size, fits the same power-law model numerically in (N, T) space and
checks that the measured exponent stays far below the cubic worst case.
"""

import json

from conftest import write_result

#: regression gate on the fitted exponent.  The paper measures ~N^1.1; the
#: integer-kernel solver core fits ~N^0.9 on the sweep, so a drift back above
#: 1.25 means an asymptotic regression (e.g. object hashing creeping back into
#: the saturation/simplification hot loops), not noise.
MAX_EXPONENT = 1.25


def test_fig11_time_scaling(benchmark, scaling_points):
    from repro.eval.scaling import figure11_fit, fit_power_law

    fit = benchmark(figure11_fit, scaling_points)

    lines = [
        "Figure 11: type-inference time vs program size",
        "",
        f"{'program':>12}  {'cfg_nodes':>9}  {'instructions':>12}  {'seconds':>8}",
    ]
    for point in scaling_points:
        lines.append(
            f"{point.name:>12}  {point.cfg_nodes:>9}  {point.instructions:>12}  {point.seconds:>8.3f}"
        )
    lines += ["", f"best fit: T = {fit.a:.3g} * N^{fit.b:.3f}   (R^2 = {fit.r_squared:.3f})",
              "paper:    T = 0.000725 * N^1.098 (R^2 = 0.977)"]
    write_result("fig11_time_scaling.txt", "\n".join(lines))
    write_result(
        "BENCH_fig11.json",
        json.dumps(
            {
                "exponent": fit.b,
                "coefficient": fit.a,
                "r_squared": fit.r_squared,
                "max_exponent": MAX_EXPONENT,
                "paper": {"exponent": 1.098, "coefficient": 0.000725, "r_squared": 0.977},
                "points": [
                    {
                        "name": point.name,
                        "cfg_nodes": point.cfg_nodes,
                        "instructions": point.instructions,
                        "seconds": point.seconds,
                    }
                    for point in scaling_points
                ],
            },
            indent=2,
            sort_keys=True,
        ),
    )

    assert fit.b < MAX_EXPONENT, (
        f"fitted exponent {fit.b:.3f} exceeds {MAX_EXPONENT}: the near-linear "
        "scaling the integer kernel restored has regressed"
    )
    assert fit.r_squared > 0.5
