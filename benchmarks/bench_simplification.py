"""Section 5.3 ablation + the worklist-core perf-smoke gate.

The paper argues the cubic worst case of saturation is tamed because it is
applied per procedure.  This module measures the saturation-based
simplification machinery three ways:

* ``test_simplification_cost`` -- pytest-benchmark microbenchmark of the
  historic chain workload (aliased pointer copies, a worst-case-ish
  saturation input), plus the precise-vs-per-class lattice-bound ablation;
* ``test_suite_workload_speedup`` -- the perf-smoke gate: the worklist core
  (indexed graph + worklist saturation + memoized simplification) must be at
  least 2x faster than the seed implementation on the suite workload.  The
  seed algorithms are retained verbatim in ``tests/core/naive_reference.py``
  and re-measured live in the same process, so the gate compares both cores
  on the same machine and stays meaningful on any CI runner; the numbers
  recorded at the time of the rewrite are committed in
  ``results/simplification_seed_baseline.json`` for the historical record.

The suite workload is per-procedure: every procedure of four synthetic
corpus programs contributes its own (constraints, interesting-variables)
simplification job -- exactly how the solver applies the machinery -- plus
the chain workload at scale 12.
"""

import json
import os
import sys
import time

from conftest import RESULTS_DIR, write_result

_TESTS_CORE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "core"
)
if _TESTS_CORE not in sys.path:
    sys.path.insert(0, _TESTS_CORE)


def _procedure_constraints(scale: int):
    """A chain of aliased pointer copies -- a worst-case-ish saturation input."""
    from repro.core import parse_constraints

    lines = []
    for i in range(scale):
        lines.append(f"v{i} <= v{i + 1}")
        lines.append(f"x{i} <= v{i}.store")
        lines.append(f"v{i + 1}.load <= y{i}")
    return parse_constraints(lines)


def _chain_job(scale: int = 12):
    interesting = {f"x{i}" for i in range(scale)} | {f"y{i}" for i in range(scale)}
    return ("chain:scale12", _procedure_constraints(scale), interesting)


def _suite_jobs():
    """Per-procedure simplification jobs over four synthetic corpus programs."""
    from repro.core.lattice import default_lattice
    from repro.eval.workloads import make_workload
    from repro.typegen.abstract_interp import generate_program_constraints

    lattice = default_lattice()
    jobs = []
    for name, functions, seed in [
        ("coreutils_like", 24, 101),
        ("vpx_like", 28, 202),
        ("putty_like", 24, 303),
        ("zlib_like", 16, 404),
    ]:
        workload = make_workload(name, functions, seed=seed)
        inputs = generate_program_constraints(workload.program)
        for proc, typing_input in sorted(inputs.items()):
            bases = {c.left.base for c in typing_input.constraints} | {
                c.right.base for c in typing_input.constraints
            }
            constants = {b for b in bases if lattice.is_constant(b)}
            jobs.append((f"{name}:{proc}", typing_input.constraints, {proc} | constants))
    return jobs


def _run_worklist(jobs):
    from repro.core import ConstraintGraph, saturate, simplify_constraints

    for _, constraints, interesting in jobs:
        graph = ConstraintGraph(constraints)
        saturate(graph)
        simplify_constraints(constraints, interesting, graph=graph)


def _run_seed_reference(jobs):
    from naive_reference import naive_saturate, naive_simplify_constraints

    from repro.core import ConstraintGraph

    for _, constraints, interesting in jobs:
        graph = ConstraintGraph(constraints)
        naive_saturate(graph)
        naive_simplify_constraints(constraints, interesting, graph=graph)


def _best_of(runner, jobs, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner(jobs)
        best = min(best, time.perf_counter() - start)
    return best


def test_suite_workload_speedup():
    """Perf-smoke gate: worklist core >= 2x faster than the seed core."""
    suite_jobs = _suite_jobs()
    chain = _chain_job()
    all_jobs = suite_jobs + [chain]

    new_suite = _best_of(_run_worklist, suite_jobs)
    seed_suite = _best_of(_run_seed_reference, suite_jobs)
    new_chain = _best_of(_run_worklist, [chain])
    seed_chain = _best_of(_run_seed_reference, [chain], repeats=1)

    new_total = new_suite + new_chain
    seed_total = seed_suite + seed_chain
    ratio = seed_total / new_total if new_total else float("inf")

    recorded = {}
    baseline_path = os.path.join(RESULTS_DIR, "simplification_seed_baseline.json")
    if os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            recorded = json.load(handle)

    lines = [
        "Worklist solver core vs seed core on the suite workload",
        "(seed algorithms retained in tests/core/naive_reference.py, re-measured",
        " live in this process; recorded rewrite-time numbers in",
        " simplification_seed_baseline.json)",
        "",
        f"procedures (corpus jobs):    {len(suite_jobs)}",
        f"corpus jobs   seed={seed_suite:8.3f}s  worklist={new_suite:8.3f}s  "
        f"{seed_suite / new_suite:6.2f}x",
        f"chain scale12 seed={seed_chain:8.3f}s  worklist={new_chain:8.3f}s  "
        f"{seed_chain / new_chain:6.2f}x",
        f"total         seed={seed_total:8.3f}s  worklist={new_total:8.3f}s  "
        f"{ratio:6.2f}x",
    ]
    if recorded:
        lines += [
            "",
            f"recorded at rewrite time ({recorded.get('machine', 'unknown machine')}):",
            f"  corpus jobs seed={recorded['seed']['corpus_seconds']:.3f}s  "
            f"worklist={recorded['worklist']['corpus_seconds']:.3f}s",
            f"  chain       seed={recorded['seed']['chain_seconds']:.3f}s  "
            f"worklist={recorded['worklist']['chain_seconds']:.3f}s",
        ]
    write_result("simplification_suite.txt", "\n".join(lines))

    assert len(all_jobs) > 50, "suite workload unexpectedly small"
    assert ratio >= 2.0, (
        f"worklist core is only {ratio:.2f}x faster than the seed core "
        f"(required >= 2x); see benchmarks/results/simplification_suite.txt"
    )


def test_noop_obs_overhead_gate():
    """Disabled-observability gate: the null tracer/registry must cost < 2%.

    The solver, typegen and service layers are permanently instrumented with
    ``get_tracer().span(...)`` / ``get_registry().counter(...)`` calls that
    hit shared no-op singletons unless a caller opts in.  There is no
    un-instrumented build to diff against, so the gate projects the overhead:
    run one analysis under a real tracer to count how many spans the workload
    emits, measure the null-path unit cost in a tight loop, and require
    ``spans * unit_cost`` to stay under 2% of the workload's wall time on the
    default (disabled) path.
    """
    from repro.eval.workloads import make_workload
    from repro.obs import NULL_TRACER, Tracer, get_tracer, tracing
    from repro.pipeline import analyze_program

    workload = make_workload("obs_gate", 16, seed=7)

    def analyze(_jobs=None):
        analyze_program(workload.program)

    assert get_tracer() is NULL_TRACER, "suite leaked an installed tracer"
    baseline = _best_of(analyze, None)

    with tracing(Tracer()) as tracer:
        analyze()
    span_count = len(tracer.spans())
    assert span_count > 0, "instrumentation emitted no spans under a real tracer"

    probes = 200_000
    null_tracer = get_tracer()
    start = time.perf_counter()
    for _ in range(probes):
        with null_tracer.span("solver.saturate", edges_added=0) as span:
            span.set("probe", 1)
    unit_cost = (time.perf_counter() - start) / probes

    projected = span_count * unit_cost
    fraction = projected / baseline if baseline else 0.0
    write_result(
        "obs_noop_overhead.txt",
        "\n".join(
            [
                "Disabled-observability overhead projection",
                "",
                f"workload baseline (null tracer): {baseline:.4f}s",
                f"spans emitted when enabled:      {span_count}",
                f"null span unit cost:             {unit_cost * 1e9:.1f} ns",
                f"projected no-op overhead:        {projected * 1e3:.3f} ms "
                f"({fraction:.3%} of baseline)",
            ]
        ),
    )
    assert fraction < 0.02, (
        f"no-op instrumentation projects to {fraction:.2%} of workload time "
        f"(gate: < 2%); see benchmarks/results/obs_noop_overhead.txt"
    )


def test_simplification_cost(benchmark):
    from repro.core import ConstraintGraph, saturate, simplify_constraints

    constraints = _procedure_constraints(12)

    def simplify():
        graph = ConstraintGraph(constraints)
        saturate(graph)
        return simplify_constraints(
            constraints, {f"x{i}" for i in range(12)} | {f"y{i}" for i in range(12)}, graph=graph
        )

    simplified = benchmark(simplify)
    assert len(simplified) > 0

    # Ablation: precise (Appendix D.4) vs per-class lattice bounds.
    from repro.core import SolverConfig
    from repro.eval.workloads import make_workload
    from repro.eval.metrics import evaluate_program
    from repro.pipeline import analyze_program

    workload = make_workload("ablation", 16, seed=11)
    rows = []
    for precise in (True, False):
        start = time.perf_counter()
        types = analyze_program(
            workload.program, config=SolverConfig(precise_bounds=precise)
        )
        elapsed = time.perf_counter() - start
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        rows.append(
            f"precise_bounds={precise!s:5}  distance={metrics.mean_distance:.2f}  "
            f"conservativeness={metrics.conservativeness:.2f}  time={elapsed:.2f}s"
        )
    write_result(
        "simplification_ablation.txt",
        "Section 5 ablation: saturation-based bounds vs per-class bounds\n\n" + "\n".join(rows),
    )
