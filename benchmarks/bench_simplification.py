"""Section 5.3 ablation: cost of the per-procedure constraint machinery.

The paper argues the cubic worst case of saturation is tamed because it is
applied per procedure.  This benchmark measures the saturation-based
simplification on a realistic per-procedure constraint set and on constraint
sets of growing size, providing the data behind that argument, plus an
ablation comparing the precise (saturated-graph) lattice-bound computation
against the cheap per-class bounds.
"""

from conftest import write_result


def _procedure_constraints(scale: int):
    """A chain of aliased pointer copies -- a worst-case-ish saturation input."""
    from repro.core import parse_constraints

    lines = []
    for i in range(scale):
        lines.append(f"v{i} <= v{i + 1}")
        lines.append(f"x{i} <= v{i}.store")
        lines.append(f"v{i + 1}.load <= y{i}")
    return parse_constraints(lines)


def test_simplification_cost(benchmark):
    from repro.core import ConstraintGraph, saturate, simplify_constraints

    constraints = _procedure_constraints(12)

    def simplify():
        graph = ConstraintGraph(constraints)
        saturate(graph)
        return simplify_constraints(
            constraints, {f"x{i}" for i in range(12)} | {f"y{i}" for i in range(12)}, graph=graph
        )

    simplified = benchmark(simplify)
    assert len(simplified) > 0

    # Ablation: precise (Appendix D.4) vs per-class lattice bounds.
    import time

    from repro.core import Solver, SolverConfig
    from repro.eval.workloads import make_workload
    from repro.eval.metrics import evaluate_program
    from repro.baselines import RetypdEngine
    from repro.pipeline import analyze_program

    workload = make_workload("ablation", 16, seed=11)
    rows = []
    for precise in (True, False):
        start = time.perf_counter()
        types = analyze_program(
            workload.program, config=SolverConfig(precise_bounds=precise)
        )
        elapsed = time.perf_counter() - start
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        rows.append(
            f"precise_bounds={precise!s:5}  distance={metrics.mean_distance:.2f}  "
            f"conservativeness={metrics.conservativeness:.2f}  time={elapsed:.2f}s"
        )
    write_result(
        "simplification_ablation.txt",
        "Section 5 ablation: saturation-based bounds vs per-class bounds\n\n" + "\n".join(rows),
    )
