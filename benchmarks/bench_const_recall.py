"""Section 6.4: recovery of pointer-parameter ``const`` annotations.

The paper reports that 98% of the ``const`` annotations present in the source
are recovered (Retypd infers ``const`` whenever a pointer parameter has the
``.load`` capability but not ``.store``).  The reproduction measures recall
over every const-annotated pointer parameter of the suite.
"""

from conftest import write_result


def test_const_recall(benchmark, suite, retypd_report):
    def recall_over_suite():
        total = 0
        recovered = 0
        for workload in suite:
            metrics = retypd_report.per_program[workload.name]
            for comparison in metrics.comparisons:
                if comparison.const_truth:
                    total += 1
                    if comparison.const_inferred:
                        recovered += 1
        return recovered, total

    recovered, total = benchmark(recall_over_suite)
    recall = recovered / total if total else 1.0
    write_result(
        "const_recall.txt",
        "Section 6.4: const annotation recall\n\n"
        f"const pointer parameters in source : {total}\n"
        f"recovered as const                 : {recovered}\n"
        f"recall                             : {recall:.1%}\n"
        "paper                              : 98%",
    )
    assert total > 0
    assert recall >= 0.85
