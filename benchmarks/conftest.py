"""Shared fixtures for the benchmark suite.

Every figure/table of the paper's evaluation has a matching ``bench_fig*.py``
module.  Expensive artifacts (the synthetic benchmark suite and the engine
reports over it) are computed once per session and shared; each module then
benchmarks its figure's core computation and writes the regenerated table to
``benchmarks/results/``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: scale factor for the synthetic suite; raise for a closer match to the paper's
#: corpus sizes, lower for a quicker run.
SUITE_SCALE = float(os.environ.get("REPRO_SUITE_SCALE", "0.75"))
SCALING_SIZES = tuple(
    int(s) for s in os.environ.get("REPRO_SCALING_SIZES", "6,12,25,50,100").split(",")
)


def write_result(name: str, content: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    return path


@pytest.fixture(scope="session")
def suite():
    """The clustered benchmark suite (Figures 7-10)."""
    from repro.eval.workloads import standard_suite

    return standard_suite(scale=SUITE_SCALE)


@pytest.fixture(scope="session")
def engine_reports(suite):
    """All four engines run over the whole suite (Figures 8 and 9)."""
    from repro.eval.harness import compare_engines

    return compare_engines(suite)


@pytest.fixture(scope="session")
def retypd_report(engine_reports):
    return engine_reports["retypd"]


@pytest.fixture(scope="session")
def scaling_points():
    """Timing/memory measurements over the size sweep (Figures 11 and 12)."""
    from repro.eval.scaling import measure_scaling
    from repro.eval.workloads import scaling_suite

    workloads = scaling_suite(sizes=SCALING_SIZES)
    return measure_scaling(workloads)
