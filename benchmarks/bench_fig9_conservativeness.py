"""Figure 9: conservativeness and multi-level pointer accuracy, per engine.

The paper reports ~95% conservativeness and 88% mean pointer accuracy for
Retypd (SecondWrite: 73% pointer accuracy).  The reproduction checks that
Retypd stays highly conservative and beats the signature-propagation baseline
on pointer accuracy while at least matching the unification baseline's
conservativeness.
"""

from conftest import write_result


def test_fig9_conservativeness_pointer_accuracy(benchmark, suite, engine_reports):
    from repro.baselines import UnificationEngine
    from repro.eval.harness import figure9_rows, format_rows
    from repro.eval.metrics import evaluate_program

    probe = suite[0]
    engine = UnificationEngine()

    def analyze_probe():
        return evaluate_program(probe.name, engine.analyze(probe.program), probe.ground_truth)

    metrics = benchmark(analyze_probe)
    assert metrics.variable_count > 0

    rows = figure9_rows(engine_reports)
    table = format_rows(rows)
    write_result(
        "fig9_conservativeness.txt",
        "Figure 9: conservativeness and pointer accuracy (higher is better)\n\n" + table,
    )

    by_engine = {row["engine"]: row for row in rows}
    retypd = by_engine["retypd"]
    assert retypd["overall_conservativeness"] >= 0.80
    assert (
        retypd["overall_conservativeness"]
        >= by_engine["unification"]["overall_conservativeness"] - 0.02
    )
    assert (
        retypd["overall_pointer_accuracy"]
        >= by_engine["propagation"]["overall_pointer_accuracy"]
    )
