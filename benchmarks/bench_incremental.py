"""Service layer: cold vs. warm-cache analysis and serial vs. parallel waves.

The analysis service caches per-SCC type summaries under content-addressed
keys, so re-analyzing an unmodified program performs zero SCC solves, and
editing one procedure re-solves only its SCC plus transitive callers.  This
benchmark measures, on the Figure 11 scaling workload:

* cold analysis (empty store) vs. warm re-analysis (full store) vs.
  incremental re-analysis after editing a single leaf procedure;
* the serial scheduler vs. the SCC-wave parallel scheduler.

The warm and incremental runs must beat the cold run -- that is the point of
the subsystem -- and all paths must produce identical reports.
"""

import time

from conftest import SCALING_SIZES, write_result


def _copy_with_edit(program):
    """A shallowly-copied program with one extra nop in one leaf procedure."""
    from repro.ir.instructions import Nop
    from repro.ir.program import Procedure, Program

    edited = Program(
        procedures=dict(program.procedures),
        externs=set(program.externs),
        globals=dict(program.globals),
    )
    name = sorted(edited.procedures)[0]
    victim = edited.procedures[name]
    edited.procedures[name] = Procedure(
        name=victim.name, instructions=list(victim.instructions) + [Nop()]
    )
    return edited, name


def test_incremental_and_parallel_scaling(benchmark):
    from repro.eval.workloads import scaling_suite
    from repro.service import AnalysisService, IncrementalSession, ServiceConfig

    workloads = scaling_suite(sizes=SCALING_SIZES)

    lines = [
        "Service layer: cold vs warm vs incremental, serial vs parallel waves",
        "",
        f"{'program':>12} {'sccs':>5} {'cold_s':>8} {'warm_s':>8} {'incr_s':>8} "
        f"{'resolved':>8} {'serial_s':>8} {'parallel_s':>10} {'max_wave':>8}",
    ]
    cold_total = warm_total = incremental_total = 0.0
    for workload in workloads:
        session = IncrementalSession(AnalysisService())

        start = time.perf_counter()
        cold = session.analyze(workload.program)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = session.analyze(workload.program)
        warm_seconds = time.perf_counter() - start
        assert warm.stats["sccs_solved"] == 0
        assert warm.report() == cold.report()

        edited, _ = _copy_with_edit(workload.program)
        start = time.perf_counter()
        incremental = session.analyze(edited)
        incremental_seconds = time.perf_counter() - start
        assert incremental.stats["sccs_solved"] <= cold.stats["scc_count"]

        serial_service = AnalysisService(ServiceConfig(use_cache=False, parallel=False))
        start = time.perf_counter()
        serial = serial_service.analyze(workload.program)
        serial_seconds = time.perf_counter() - start

        parallel_service = AnalysisService(ServiceConfig(use_cache=False, parallel=True))
        start = time.perf_counter()
        parallel = parallel_service.analyze(workload.program)
        parallel_seconds = time.perf_counter() - start
        assert parallel.report() == serial.report()

        cold_total += cold_seconds
        warm_total += warm_seconds
        incremental_total += incremental_seconds
        lines.append(
            f"{workload.name:>12} {cold.stats['scc_count']:>5} {cold_seconds:>8.3f} "
            f"{warm_seconds:>8.3f} {incremental_seconds:>8.3f} "
            f"{incremental.stats['sccs_solved']:>8} {serial_seconds:>8.3f} "
            f"{parallel_seconds:>10.3f} {max(cold.stats['dag_wave_widths']):>8}"
        )

    lines += [
        "",
        f"totals: cold {cold_total:.3f}s, warm {warm_total:.3f}s "
        f"({cold_total / max(warm_total, 1e-9):.1f}x), incremental {incremental_total:.3f}s "
        f"({cold_total / max(incremental_total, 1e-9):.1f}x)",
    ]
    write_result("incremental_scaling.txt", "\n".join(lines))

    # The acceptance bar: warm/incremental beat cold on the scaling workload.
    assert warm_total < cold_total, "warm-cache re-analysis should beat cold analysis"
    assert incremental_total < cold_total, "incremental re-analysis should beat cold analysis"

    # Benchmark the steady state: warm re-analysis of the largest program.
    largest = workloads[-1]
    steady = AnalysisService()
    steady.analyze(largest.program)
    types = benchmark(steady.analyze, largest.program)
    assert types.stats["sccs_solved"] == 0
