"""Figure 8: distance to ground-truth types and interval size, per engine.

The paper reports mean distance 0.54 for Retypd against 1.15-1.70 for the
dynamic/static TIE, REWARDS and SecondWrite baselines, and mean interval size
1.2 against 1.7-2.0.  The reproduction checks the *shape*: Retypd's distance
and interval must not be worse than every baseline's.
"""

from conftest import write_result


def test_fig8_distance_and_interval(benchmark, suite, engine_reports):
    from repro.baselines import RetypdEngine
    from repro.eval.harness import figure8_rows, format_rows
    from repro.eval.metrics import evaluate_program

    # Benchmark: Retypd end-to-end on one representative member of the suite.
    probe = suite[0]
    engine = RetypdEngine()

    def analyze_probe():
        return evaluate_program(probe.name, engine.analyze(probe.program), probe.ground_truth)

    metrics = benchmark(analyze_probe)
    assert metrics.variable_count > 0

    rows = figure8_rows(engine_reports)
    table = format_rows(rows)
    write_result(
        "fig8_distance_interval.txt",
        "Figure 8: distance to source type and interval size (lower is better)\n\n" + table,
    )

    by_engine = {row["engine"]: row for row in rows}
    retypd = by_engine["retypd"]
    assert retypd["overall_distance"] <= by_engine["propagation"]["overall_distance"]
    assert retypd["overall_distance"] <= by_engine["tie"]["overall_distance"] + 0.05
    assert retypd["overall_interval"] <= by_engine["propagation"]["overall_interval"]
    assert retypd["overall_interval"] <= by_engine["tie"]["overall_interval"] + 0.05
