"""Figure 10: per-cluster results for Retypd, with and without cluster averaging.

The paper groups binaries that share most of their code (coreutils, vpx, ...)
into clusters and reports per-cluster averages plus the overall averages with
and without clustering.  This benchmark regenerates that table for the
synthetic suite.
"""

from conftest import write_result


def test_fig10_cluster_table(benchmark, suite, retypd_report):
    from repro.eval.harness import figure10_rows, format_rows

    rows = benchmark(figure10_rows, retypd_report, suite)
    table = format_rows(rows)
    write_result("fig10_clusters.txt", "Figure 10: per-cluster metrics (Retypd)\n\n" + table)

    named = {row.get("cluster"): row for row in rows}
    assert "coreutils" in named
    overall = named["OVERALL (clustered)"]
    assert overall["conservativeness"] >= 0.80
    assert overall["distance"] <= 1.5
    assert overall["const_recall"] >= 0.80
