"""Process backend scaling: serial vs. threads vs. processes on the fig7 suite.

The thread executor cannot beat serial by much -- the solver is pure Python
and the GIL serializes its CPU work -- which is exactly why the process
backend exists.  This benchmark analyzes the Figure 7 standalone programs
(scaled up so per-SCC solves amortize the chunk codec + IPC) under all three
executor strategies with the same worker count and reports wall-clock totals
and the processes-vs-threads speedup.

Run modes:

* script (what CI's perf-smoke uses)::

      PYTHONPATH=src python benchmarks/bench_procpool.py --workers 2 --gate 1.25

* pytest (the acceptance gate, skipped on hosts with < 4 CPUs)::

      PYTHONPATH=src python -m pytest benchmarks/bench_procpool.py -q

Numbers land in ``benchmarks/results/procpool_scaling.txt``.
"""

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: the Figure 7 standalone entries (name, base function count); scaled below.
FIG7_ENTRIES = [
    ("libidn", 10),
    ("zlib", 14),
    ("ogg", 18),
    ("libbz2", 24),
    ("mcf", 8),
    ("bzip2", 16),
    ("sjeng", 22),
    ("hmmer", 30),
]

DEFAULT_SCALE = float(os.environ.get("REPRO_PROCPOOL_SCALE", "4.0"))


def _suite(scale):
    from repro.eval.workloads import make_workload

    return [
        make_workload(name, max(4, int(count * scale)), 20160613 + index)
        for index, (name, count) in enumerate(FIG7_ENTRIES)
    ]


def _run_backend(workloads, executor, workers):
    """Total wall-clock of analyzing every workload under one executor."""
    from repro.service import AnalysisService, ServiceConfig

    service = AnalysisService(
        ServiceConfig(use_cache=False, executor=executor, max_workers=workers)
    )
    try:
        # Warm-up on the smallest program: builds (and amortizes) the process
        # pool, touches every code path once for every backend alike.
        service.analyze(min(workloads, key=lambda w: w.instructions).program)
        per_program = []
        start = time.perf_counter()
        for workload in workloads:
            program_start = time.perf_counter()
            types = service.analyze(workload.program)
            per_program.append(
                (workload.name, time.perf_counter() - program_start, types)
            )
        total = time.perf_counter() - start
    finally:
        service.close()
    return total, per_program


def run(workers, scale, gate=None, write=True):
    cpus = os.cpu_count() or 1
    if gate is not None and cpus < max(2, workers):
        # Multi-core scaling is unmeasurable here; report, don't fail the CI
        # job for a hardware shortfall (mirrors the pytest gate's skip).
        print(
            f"SKIP: speedup gate needs >= {max(2, workers)} CPUs to be "
            f"meaningful, host has {cpus}; running report-only"
        )
        gate = None
    workloads = _suite(scale)
    rows = []
    totals = {}
    results_by_backend = {}
    for executor in ("serial", "threads", "processes"):
        total, per_program = _run_backend(workloads, executor, workers)
        totals[executor] = total
        results_by_backend[executor] = per_program

    # Identical outputs across backends -- a benchmark that changed answers
    # would be measuring a bug.
    for (_, _, serial_types), (_, _, process_types) in zip(
        results_by_backend["serial"], results_by_backend["processes"]
    ):
        assert process_types.report() == serial_types.report(), "backend results diverge"

    header = f"{'program':<12} {'procs':>6} {'serial_s':>9} {'threads_s':>10} {'processes_s':>12}"
    lines = [
        f"Process backend scaling: fig7 suite (scale {scale:g}), {workers} workers, "
        f"{os.cpu_count()} cpus",
        "",
        header,
        "-" * len(header),
    ]
    for index, workload in enumerate(workloads):
        serial_s = results_by_backend["serial"][index][1]
        threads_s = results_by_backend["threads"][index][1]
        processes_s = results_by_backend["processes"][index][1]
        procs = results_by_backend["serial"][index][2].stats["procedures"]
        lines.append(
            f"{workload.name:<12} {procs:>6} {serial_s:>9.3f} {threads_s:>10.3f} "
            f"{processes_s:>12.3f}"
        )
        rows.append((workload.name, serial_s, threads_s, processes_s))
    speedup_threads = totals["threads"] / max(totals["processes"], 1e-9)
    speedup_serial = totals["serial"] / max(totals["processes"], 1e-9)
    lines += [
        "-" * len(header),
        f"totals: serial {totals['serial']:.3f}s, threads {totals['threads']:.3f}s, "
        f"processes {totals['processes']:.3f}s",
        f"speedup processes vs threads: {speedup_threads:.2f}x",
        f"speedup processes vs serial:  {speedup_serial:.2f}x",
    ]
    report = "\n".join(lines)
    print(report)
    if write:
        from conftest import write_result

        write_result("procpool_scaling.txt", report)
    if gate is not None:
        assert speedup_threads >= gate, (
            f"process backend speedup {speedup_threads:.2f}x over threads is below "
            f"the {gate:.2f}x gate at {workers} workers"
        )
    return speedup_threads


def test_procpool_speedup_gate():
    """The acceptance bar: >= 1.8x over the thread backend at 4 workers.

    Needs real cores; on smaller hosts the multi-core claim is untestable and
    the gate skips (CI's perf-smoke still runs the 2-worker script gate).
    """
    import pytest

    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 CPUs to measure 4-worker scaling")
    run(workers=4, scale=DEFAULT_SCALE, gate=1.8)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="worker count (default 4)")
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="suite scale factor"
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail unless processes beat threads by this factor",
    )
    parser.add_argument("--quick", action="store_true", help="half-scale quick run")
    args = parser.parse_args(argv)
    scale = args.scale / 2 if args.quick else args.scale
    run(workers=args.workers, scale=scale, gate=args.gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
