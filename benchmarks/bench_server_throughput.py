"""Type-query server throughput: concurrent clients, cold vs. warm latency.

Starts a server in-process, then measures three things:

* **cold analyze latency** -- submitting a never-seen program (full pipeline:
  parse, constraint generation, SCC solving, sketch display);
* **warm query latency** -- querying an already-analyzed program (a registry
  dict lookup plus JSON encoding, the server's steady-state hot path);
* **concurrent fan-out** -- N asyncio clients (default 8) each running an
  analyze-then-query loop against one server, with every answer checked
  byte-identical to the single-client reference.

The structural claim (and the PR's acceptance bar): warm queries must be at
least 10x faster than cold analyses, and all concurrent clients must be
served correct answers.  Exits non-zero if either fails, so CI can gate on
it.  ``--quick`` shrinks the workload for smoke use.

Run with::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py [--quick]
"""

import argparse
import asyncio
import json
import os
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.eval.workloads import generate_program_source
from repro.frontend import compile_c
from repro.obs import Histogram
from repro.server import AsyncTypeQueryClient, ServerConfig, TypeQueryClient, TypeQueryServer

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def latency_summary(latencies) -> dict:
    """Fold raw per-request latencies through an obs histogram: the summary
    reports the same estimated p50/p95/p99 a live server's ``metrics`` verb
    would, so trajectory files and production dashboards agree on method."""
    hist = Histogram()
    for value in latencies:
        hist.observe(value)
    summary = {
        "count": hist.count,
        "mean_seconds": hist.sum / hist.count if hist.count else None,
    }
    summary.update({key: value for key, value in hist.percentiles().items()})
    return summary


def write_bench_json(name: str, payload: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def start_server(max_concurrency: int):
    """Server on a daemon thread; returns (port, server)."""
    started = threading.Event()
    info = {}

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main():
            server = TypeQueryServer(
                ServerConfig(port=0, max_concurrency=max_concurrency)
            )
            _, port = await server.start()
            info.update(port=port, server=server)
            started.set()
            await server.serve_forever()

        loop.run_until_complete(main())

    threading.Thread(target=run, daemon=True).start()
    assert started.wait(60), "server failed to start"
    return info["port"], info["server"]


def make_sources(count: int, functions: int):
    """Distinct asm programs (pre-compiled from generated mini-C)."""
    sources = []
    for index in range(count):
        c_source = generate_program_source(f"bench{index}", functions, seed=1000 + index)
        sources.append(str(compile_c(c_source).program))
    return sources


def canonical(payload) -> str:
    if isinstance(payload, dict):
        payload = {key: value for key, value in payload.items() if key != "stats"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def bench_cold_analyze(port: int, sources) -> list:
    latencies = []
    with TypeQueryClient(port=port) as client:
        for source in sources:
            start = time.perf_counter()
            result = client.analyze(source)
            latencies.append(time.perf_counter() - start)
            assert result["cached"] is False, "cold program unexpectedly cached"
    return latencies


def bench_warm_query(port: int, source: str, repeats: int) -> list:
    latencies = []
    with TypeQueryClient(port=port) as client:
        program_id = client.analyze(source)["program_id"]
        procedures = client.query(program_id)["functions"]
        target = sorted(procedures)[0]
        for _ in range(repeats):
            start = time.perf_counter()
            client.query(program_id, target)
            latencies.append(time.perf_counter() - start)
    return latencies


def bench_concurrent(port: int, source: str, clients: int, queries: int):
    """N clients fan out; returns (wall_seconds, requests, mismatches)."""
    with TypeQueryClient(port=port) as reference_client:
        program_id = reference_client.analyze(source)["program_id"]
        procedures = sorted(reference_client.query(program_id)["functions"])
        reference = {
            name: canonical(reference_client.query(program_id, name))
            for name in procedures
        }

    async def one_client(index: int):
        client = await AsyncTypeQueryClient.connect("127.0.0.1", port, connect_retries=10)
        try:
            result = await client.analyze(source)
            mismatches = 0 if result["program_id"] == program_id else 1
            requests = 1
            for i in range(queries):
                name = procedures[(index + i) % len(procedures)]
                payload = await client.query(program_id, name)
                requests += 1
                if canonical(payload) != reference[name]:
                    mismatches += 1
            return requests, mismatches
        finally:
            await client.aclose()

    async def fan_out():
        return await asyncio.gather(*(one_client(i) for i in range(clients)))

    start = time.perf_counter()
    results = asyncio.run(fan_out())
    wall = time.perf_counter() - start
    requests = sum(r for r, _ in results)
    mismatches = sum(m for _, m in results)
    return wall, requests, mismatches


def main() -> int:
    parser = argparse.ArgumentParser(description="type-query server throughput benchmark")
    parser.add_argument("--quick", action="store_true", help="small workload for CI smoke")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default: 8)")
    parser.add_argument("--functions", type=int, default=None,
                        help="functions per generated program (default: 6 quick, 14 full)")
    args = parser.parse_args()

    functions = args.functions or (6 if args.quick else 14)
    cold_programs = 3 if args.quick else 6
    warm_repeats = 50 if args.quick else 300
    queries_per_client = 10 if args.quick else 40

    print(f"generating {cold_programs + 1} programs of ~{functions} functions ...")
    sources = make_sources(cold_programs + 1, functions)
    hot_source, cold_sources = sources[0], sources[1:]

    port, server = start_server(max_concurrency=max(4, min(args.clients, 8)))
    print(f"server on port {port}\n")

    cold = bench_cold_analyze(port, cold_sources)
    cold_mean = statistics.mean(cold)
    print(f"cold analyze latency : mean {cold_mean * 1000:8.2f} ms  "
          f"(min {min(cold) * 1000:.2f}, max {max(cold) * 1000:.2f}, n={len(cold)})")

    warm = bench_warm_query(port, hot_source, warm_repeats)
    warm_mean = statistics.mean(warm)
    print(f"warm query latency   : mean {warm_mean * 1000:8.2f} ms  "
          f"(p50 {statistics.median(warm) * 1000:.2f}, n={len(warm)})")
    speedup = cold_mean / warm_mean if warm_mean else float("inf")
    print(f"warm/cold speedup    : {speedup:10.1f}x")

    wall, requests, mismatches = bench_concurrent(
        port, hot_source, args.clients, queries_per_client
    )
    print(f"concurrent fan-out   : {args.clients} clients, {requests} requests in "
          f"{wall:.3f}s ({requests / wall:.0f} req/s), {mismatches} mismatches")

    registry = server.registry.snapshot()
    print(f"registry             : {registry['programs']} programs, "
          f"hit rate {registry['hit_rate']:.0%}")

    bench_path = write_bench_json(
        "BENCH_server.json",
        {
            "benchmark": "server_throughput",
            "backend": server.config.backend or "serial",
            "quick": bool(args.quick),
            "functions_per_program": functions,
            "cold_analyze": latency_summary(cold),
            "warm_query": latency_summary(warm),
            "warm_cold_speedup": speedup,
            "concurrent": {
                "clients": args.clients,
                "requests": requests,
                "wall_seconds": wall,
                "requests_per_second": requests / wall if wall else None,
                "mismatches": mismatches,
            },
            "registry": registry,
        },
    )
    print(f"machine-readable     : {bench_path}")

    failed = []
    if mismatches:
        failed.append(f"{mismatches} concurrent answers differed from the reference")
    if speedup < 10.0:
        failed.append(f"warm-query speedup {speedup:.1f}x below the 10x bar")
    if failed:
        print("\nFAILED: " + "; ".join(failed))
        return 1
    print(f"\nOK: {args.clients} concurrent clients served, warm queries "
          f"{speedup:.0f}x faster than cold analyses")
    return 0


if __name__ == "__main__":
    sys.exit(main())
