"""Type-query server throughput: concurrent clients, cold vs. warm latency.

Starts a server in-process, then measures three things:

* **cold analyze latency** -- submitting a never-seen program (full pipeline:
  parse, constraint generation, SCC solving, sketch display);
* **warm query latency** -- querying an already-analyzed program (a registry
  dict lookup plus JSON encoding, the server's steady-state hot path);
* **concurrent fan-out** -- N asyncio clients (default 8) each running an
  analyze-then-query loop against one server, with every answer checked
  byte-identical to the single-client reference.

The structural claim (and the PR's acceptance bar): warm queries must be at
least 10x faster than cold analyses, and all concurrent clients must be
served correct answers.  Exits non-zero if either fails, so CI can gate on
it.  ``--quick`` shrinks the workload for smoke use.

``--fleet N`` benchmarks the sharded fleet instead: N shard subprocesses
behind the consistent-hash router (real processes via the public CLI),
measured analyze/query latency under concurrent clients plus per-shard and
aggregate throughput, written to ``results/BENCH_fleet.json``.

``--slo`` runs the SLO load harness: a sweep of 8 -> 512 concurrent clients
over mixed verb traffic (analyze / query / session.open-edit-close, programs
sampled from ``repro.gen`` corpora and families), reporting per-verb
p50/p95/p99 latency, shed (``overloaded``) counts, a per-level single-flight
coalescing probe and the saturation throughput, written to
``results/BENCH_slo.json``.  ``--slo-clients N`` pins the sweep to one client
count (the CI smoke shape) and ``--p99-gate SECONDS`` exits non-zero when the
query p99 at that level exceeds the bound.

Run with::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py [--quick]
    PYTHONPATH=src python benchmarks/bench_server_throughput.py --fleet 2 --quick
    PYTHONPATH=src python benchmarks/bench_server_throughput.py --slo [--quick]
    PYTHONPATH=src python benchmarks/bench_server_throughput.py --slo --quick \
        --slo-clients 32 --p99-gate 2.5
"""

import argparse
import asyncio
import json
import os
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.eval.workloads import generate_program_source
from repro.frontend import compile_c
from repro.obs import Histogram
from repro.server import (
    AsyncTypeQueryClient,
    ServerConfig,
    TypeQueryClient,
    TypeQueryError,
    TypeQueryServer,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def latency_summary(latencies) -> dict:
    """Fold raw per-request latencies through an obs histogram: the summary
    reports the same estimated p50/p95/p99 a live server's ``metrics`` verb
    would, so trajectory files and production dashboards agree on method."""
    hist = Histogram()
    for value in latencies:
        hist.observe(value)
    summary = {
        "count": hist.count,
        "mean_seconds": hist.sum / hist.count if hist.count else None,
        "min_seconds": min(latencies) if latencies else None,
        "max_seconds": max(latencies) if latencies else None,
    }
    summary.update({key: value for key, value in hist.percentiles().items()})
    return summary


def write_bench_json(name: str, payload: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def start_server(max_concurrency: int, **config_kwargs):
    """Server on a daemon thread; returns (port, server)."""
    started = threading.Event()
    info = {}

    def run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main():
            server = TypeQueryServer(
                ServerConfig(port=0, max_concurrency=max_concurrency, **config_kwargs)
            )
            _, port = await server.start()
            info.update(port=port, server=server)
            started.set()
            await server.serve_forever()

        loop.run_until_complete(main())

    threading.Thread(target=run, daemon=True).start()
    assert started.wait(60), "server failed to start"
    return info["port"], info["server"]


def make_sources(count: int, functions: int):
    """Distinct asm programs (pre-compiled from generated mini-C)."""
    sources = []
    for index in range(count):
        c_source = generate_program_source(f"bench{index}", functions, seed=1000 + index)
        sources.append(str(compile_c(c_source).program))
    return sources


def canonical(payload) -> str:
    if isinstance(payload, dict):
        payload = {key: value for key, value in payload.items() if key != "stats"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def bench_cold_analyze(port: int, sources) -> list:
    latencies = []
    with TypeQueryClient(port=port) as client:
        for source in sources:
            start = time.perf_counter()
            result = client.analyze(source)
            latencies.append(time.perf_counter() - start)
            assert result["cached"] is False, "cold program unexpectedly cached"
    return latencies


def bench_warm_query(port: int, source: str, repeats: int) -> list:
    latencies = []
    with TypeQueryClient(port=port) as client:
        program_id = client.analyze(source)["program_id"]
        procedures = client.query(program_id)["functions"]
        target = sorted(procedures)[0]
        for _ in range(repeats):
            start = time.perf_counter()
            client.query(program_id, target)
            latencies.append(time.perf_counter() - start)
    return latencies


def bench_concurrent(port: int, source: str, clients: int, queries: int):
    """N clients fan out; returns (wall_seconds, requests, mismatches)."""
    with TypeQueryClient(port=port) as reference_client:
        program_id = reference_client.analyze(source)["program_id"]
        procedures = sorted(reference_client.query(program_id)["functions"])
        reference = {
            name: canonical(reference_client.query(program_id, name))
            for name in procedures
        }

    async def one_client(index: int):
        client = await AsyncTypeQueryClient.connect("127.0.0.1", port, connect_retries=10)
        try:
            result = await client.analyze(source)
            mismatches = 0 if result["program_id"] == program_id else 1
            requests = 1
            for i in range(queries):
                name = procedures[(index + i) % len(procedures)]
                payload = await client.query(program_id, name)
                requests += 1
                if canonical(payload) != reference[name]:
                    mismatches += 1
            return requests, mismatches
        finally:
            await client.aclose()

    async def fan_out():
        return await asyncio.gather(*(one_client(i) for i in range(clients)))

    start = time.perf_counter()
    results = asyncio.run(fan_out())
    wall = time.perf_counter() - start
    requests = sum(r for r, _ in results)
    mismatches = sum(m for _, m in results)
    return wall, requests, mismatches


def bench_fleet(args, functions: int) -> int:
    """The ``--fleet N`` mode: a real fleet via the public CLI, under load."""
    from repro.fleet.smoke import _spawn, _stop
    from repro.server import RetryPolicy

    programs = 4 if args.quick else 12
    queries_per_client = 20 if args.quick else 80

    print(f"generating {programs} programs of ~{functions} functions ...")
    sources = make_sources(programs, functions)

    print(f"starting fleet of {args.fleet} shards ...")
    process, host, port = _spawn(
        [sys.executable, "-m", "repro.server", "--fleet", str(args.fleet), "--port", "0"],
        timeout=120.0,
    )
    try:
        retry = RetryPolicy(attempts=6, base_delay=0.2)

        async def one_client(index: int):
            client = await AsyncTypeQueryClient.connect(
                host, port, connect_retries=25, retry=retry
            )
            analyze_lat, query_lat, ids = [], [], []
            try:
                for si, source in enumerate(sources):
                    if si % args.clients != index:
                        continue
                    start = time.perf_counter()
                    result = await client.analyze(source)
                    analyze_lat.append(time.perf_counter() - start)
                    ids.append(result["program_id"])
                for i in range(queries_per_client):
                    if not ids:
                        break
                    start = time.perf_counter()
                    await client.query(ids[i % len(ids)])
                    query_lat.append(time.perf_counter() - start)
                return analyze_lat, query_lat
            finally:
                await client.aclose()

        async def fan_out():
            return await asyncio.gather(*(one_client(i) for i in range(args.clients)))

        start = time.perf_counter()
        results = asyncio.run(fan_out())
        wall = time.perf_counter() - start
        analyze_lat = [v for a, _ in results for v in a]
        query_lat = [v for _, q in results for v in q]
        requests = len(analyze_lat) + len(query_lat)

        with TypeQueryClient(host, port, timeout=300.0, retry=retry) as client:
            health = client.health()
            router_stats = client.stats()
            per_shard = {}
            for shard_id, row in sorted(health["shards"].items()):
                if not row.get("healthy"):
                    per_shard[shard_id] = {"healthy": False}
                    continue
                shard_stats = client.request("stats", {"shard": int(shard_id)})
                per_shard[shard_id] = {
                    "healthy": True,
                    "requests_served": shard_stats["requests_served"],
                    "requests_per_second": shard_stats["requests_served"] / wall,
                    "store": shard_stats["store"],
                }

        print(f"fleet fan-out        : {args.clients} clients, {requests} requests in "
              f"{wall:.3f}s ({requests / wall:.0f} req/s aggregate)")
        analyze_summary = latency_summary(analyze_lat)
        query_summary = latency_summary(query_lat)
        print(f"analyze latency      : mean {analyze_summary['mean_seconds'] * 1000:8.2f} ms "
              f"(p50 {analyze_summary['p50'] * 1000:.2f}, p95 {analyze_summary['p95'] * 1000:.2f})")
        print(f"query latency        : mean {query_summary['mean_seconds'] * 1000:8.2f} ms "
              f"(p50 {query_summary['p50'] * 1000:.2f}, p95 {query_summary['p95'] * 1000:.2f})")
        for shard_id, row in per_shard.items():
            if row.get("healthy"):
                print(f"  shard {shard_id}            : {row['requests_served']} requests "
                      f"({row['requests_per_second']:.0f} req/s)")

        bench_path = write_bench_json(
            "BENCH_fleet.json",
            {
                "benchmark": "fleet_throughput",
                "quick": bool(args.quick),
                "shards": args.fleet,
                "clients": args.clients,
                "programs": programs,
                "functions_per_program": functions,
                "analyze": analyze_summary,
                "query": query_summary,
                "aggregate": {
                    "requests": requests,
                    "wall_seconds": wall,
                    "requests_per_second": requests / wall if wall else None,
                },
                "per_shard": per_shard,
                "router": {
                    "requests_served": router_stats["requests_served"],
                    "errors_returned": router_stats["errors_returned"],
                    "reanalyses": router_stats["reanalyses"],
                },
            },
        )
        print(f"machine-readable     : {bench_path}")

        failed = []
        if router_stats["errors_returned"]:
            failed.append(f"router returned {router_stats['errors_returned']} errors")
        if health["shards_healthy"] != args.fleet:
            failed.append(
                f"only {health['shards_healthy']}/{args.fleet} shards healthy after the run"
            )
        if failed:
            print("\nFAILED: " + "; ".join(failed))
            return 1
        print(f"\nOK: fleet of {args.fleet} served {requests} requests error-free")
        return 0
    finally:
        _stop(process)


# ---------------------------------------------------------------------------
# The SLO load harness (--slo)
# ---------------------------------------------------------------------------

#: client counts swept by the full harness; --quick keeps the first and the
#: CI smoke level, --slo-clients pins a single one.
SLO_LEVELS = [8, 16, 32, 64, 128, 256, 512]
SLO_QUICK_LEVELS = [8, 32]


def _raise_fd_limit(target: int = 8192) -> None:
    """512 clients + 512 accepted sockets live in one process: lift the soft
    RLIMIT_NOFILE toward ``target`` (best-effort; capped by the hard limit)."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < target:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(target, hard), hard))
    except (ImportError, ValueError, OSError):
        pass


def build_slo_workload(quick: bool):
    """Deterministic mixed traffic from ``repro.gen``: a corpus of independent
    programs plus toggle-derived family variants (analyze traffic), and
    per-client edited sources (session traffic)."""
    from repro.gen import GenProfile, generate_corpus, generate_edit, generate_family

    profile = GenProfile.smoke()
    corpus = generate_corpus(4 if quick else 6, seed=20260807, profile=profile)
    family = generate_family(
        20260808, profile=profile, members=3 if quick else 4, name="slofam"
    )
    analyze_sources = [program.source for program in corpus]
    analyze_sources += [member.source for member in family.members]
    session_base = family.base.source
    session_edits = [
        generate_edit(family.base, edit_seed=seed).source for seed in range(4)
    ]
    return analyze_sources, session_base, session_edits


def _slo_verb(index: int, step: int) -> str:
    """The deterministic per-(client, step) verb schedule: ~60% query, ~30%
    analyze (warm after the first touch), ~10% session cycles -- and session
    traffic only on every 16th client so ``max_sessions`` bounds hold at 512."""
    slot = (index * 13 + step * 7) % 10
    if slot < 6:
        return "query"
    if slot < 9:
        return "analyze"
    return "session" if index % 16 == 0 else "query"


def _coalesce_probe(host: str, port: int, server, source: str, clients: int) -> dict:
    """All ``clients`` submit the same never-seen program at once: exactly one
    solve may run (single-flight coalescing) and every reply that joined the
    flight must be byte-identical."""
    admits_before = server.registry.admits
    coalesced_before = server.coalesced_total

    async def submit():
        client = await AsyncTypeQueryClient.connect(
            host, port, connect_retries=30, connect_delay=0.1
        )
        try:
            start = time.perf_counter()
            reply = await client.analyze(source, kind="c")
            return time.perf_counter() - start, reply
        finally:
            await client.aclose()

    async def fan_out():
        return await asyncio.gather(*(submit() for _ in range(clients)))

    results = asyncio.run(fan_out())
    latencies = [elapsed for elapsed, _ in results]
    replies = [reply for _, reply in results]
    inflight = [r for r in replies if not r["cached"]]
    identical = len({canonical(r) for r in inflight}) == 1 if inflight else False
    return {
        "clients": clients,
        "solves": server.registry.admits - admits_before,
        "coalesced_delta": server.coalesced_total - coalesced_before,
        "identical_inflight_replies": identical,
        "inflight_replies": len(inflight),
        "latency": latency_summary(latencies),
    }


def _run_slo_level(host, port, server, level, requests_per_client, workload):
    """One sweep level: ``level`` concurrent clients each walking the verb
    schedule; returns the per-verb latency/shed/error accounting."""
    analyze_sources, session_base, session_edits, query_targets = workload
    latencies = {}
    sheds = {}
    errors = []

    def record(verb, elapsed):
        latencies.setdefault(verb, []).append(elapsed)

    def shed(verb):
        sheds[verb] = sheds.get(verb, 0) + 1

    async def timed(verb, coro):
        start = time.perf_counter()
        try:
            result = await coro
        except TypeQueryError as exc:
            if exc.code == "overloaded":
                shed(verb)
                return None
            errors.append(f"{verb}: [{exc.code}] {exc.message}")
            return None
        record(verb, time.perf_counter() - start)
        return result

    async def one_client(index: int):
        client = await AsyncTypeQueryClient.connect(
            host, port, connect_retries=30, connect_delay=0.1
        )
        try:
            for step in range(requests_per_client):
                verb = _slo_verb(index, step)
                if verb == "query":
                    program_id, procedure = query_targets[
                        (index * 3 + step) % len(query_targets)
                    ]
                    await timed("query", client.query(program_id, procedure))
                elif verb == "analyze":
                    source = analyze_sources[(index + step) % len(analyze_sources)]
                    await timed("analyze", client.analyze(source, kind="c"))
                else:
                    opened = await timed(
                        "session.open", client.session_open(session_base, kind="c")
                    )
                    if opened is None:
                        continue
                    session_id = opened["session_id"]
                    edited = session_edits[index % len(session_edits)]
                    await timed(
                        "session.edit",
                        client.session_edit(session_id, edited, kind="c"),
                    )
                    await timed("session.close", client.session_close(session_id))
        finally:
            await client.aclose()

    async def fan_out():
        await asyncio.gather(*(one_client(i) for i in range(level)))

    start = time.perf_counter()
    asyncio.run(fan_out())
    wall = time.perf_counter() - start
    completed = sum(len(values) for values in latencies.values())
    return {
        "clients": level,
        "requests": completed,
        "wall_seconds": wall,
        "requests_per_second": completed / wall if wall else None,
        "per_verb": {verb: latency_summary(values) for verb, values in sorted(latencies.items())},
        "shed": {"total": sum(sheds.values()), "per_verb": dict(sorted(sheds.items()))},
        "errors": errors,
    }


def bench_slo(args) -> int:
    """The ``--slo`` mode: the latency-under-load trajectory of one server."""
    from repro.gen import GenProfile, generate_program

    _raise_fd_limit()
    if args.slo_clients is not None:
        levels = [args.slo_clients]
    else:
        levels = SLO_QUICK_LEVELS if args.quick else SLO_LEVELS
    requests_per_client = 6 if args.quick else 8

    print("generating traffic from repro.gen corpora and families ...")
    analyze_sources, session_base, session_edits = build_slo_workload(args.quick)

    port, server = start_server(
        max_concurrency=4,
        max_pending=256,
        max_queue_wait_seconds=args.max_queue_wait,
        max_sessions=64,
    )
    host = "127.0.0.1"
    print(f"server on port {port} (max_concurrency=4, max_pending=256, "
          f"max_queue_wait={args.max_queue_wait}s)\n")

    # Warm-up: analyze every traffic program once and collect (program_id,
    # procedure) query targets, so steady-state traffic measures the serving
    # path, not a cold store.
    query_targets = []
    with TypeQueryClient(host, port, timeout=300.0) as reference:
        for source in analyze_sources + [session_base] + session_edits:
            result = reference.analyze(source, kind="c")
            procedures = result["procedures"]
            for procedure in procedures[:3]:
                query_targets.append((result["program_id"], procedure))
    workload = (analyze_sources, session_base, session_edits, query_targets)

    level_rows = []
    failures = []
    for level_index, level in enumerate(levels):
        probe_clients = min(level, 32)
        probe_source = generate_program(
            seed=77_000 + level_index, profile=GenProfile.smoke(), name=f"probe{level}"
        ).source
        shed_before, coalesced_before = server.shed_total, server.coalesced_total

        probe = _coalesce_probe(host, port, server, probe_source, probe_clients)
        row = _run_slo_level(host, port, server, level, requests_per_client, workload)
        row["coalesce_probe"] = probe
        row["server_counters"] = {
            "coalesced_total": server.coalesced_total,
            "shed_total": server.shed_total,
            "coalesced_delta": server.coalesced_total - coalesced_before,
            "shed_delta": server.shed_total - shed_before,
        }
        level_rows.append(row)

        query_summary = row["per_verb"].get("query", {})
        p99 = query_summary.get("p99")
        print(f"  {level:4d} clients: {row['requests']:5d} requests in "
              f"{row['wall_seconds']:.2f}s ({row['requests_per_second']:7.0f} req/s), "
              f"query p99 {p99 * 1000:7.2f} ms, shed {row['shed']['total']}, "
              f"probe {probe['clients']}-way -> {probe['solves']} solve"
              if p99 is not None else f"  {level:4d} clients: no query traffic")

        if probe["solves"] != 1:
            failures.append(
                f"level {level}: coalesce probe ran {probe['solves']} solves (want 1)"
            )
        if not probe["identical_inflight_replies"]:
            failures.append(f"level {level}: coalesced replies were not byte-identical")
        if row["errors"]:
            failures.append(
                f"level {level}: {len(row['errors'])} unexpected errors "
                f"(first: {row['errors'][0]})"
            )

    saturation = max(
        (row for row in level_rows if row["requests_per_second"]),
        key=lambda row: row["requests_per_second"],
    )
    print(f"\nsaturation throughput: {saturation['requests_per_second']:.0f} req/s "
          f"at {saturation['clients']} clients")

    gate = None
    if args.p99_gate is not None:
        gated_row = level_rows[0]
        gated_p99 = gated_row["per_verb"].get("query", {}).get("p99")
        gate = {
            "verb": "query",
            "clients": gated_row["clients"],
            "bound_seconds": args.p99_gate,
            "p99_seconds": gated_p99,
            "passed": gated_p99 is not None and gated_p99 <= args.p99_gate,
        }
        if not gate["passed"]:
            failures.append(
                f"query p99 {gated_p99}s at {gated_row['clients']} clients "
                f"exceeds the {args.p99_gate}s gate"
            )
        else:
            print(f"p99 gate: query p99 {gated_p99 * 1000:.2f} ms <= "
                  f"{args.p99_gate * 1000:.0f} ms at {gated_row['clients']} clients")

    bench_path = write_bench_json(
        "BENCH_slo.json",
        {
            "benchmark": "slo_load",
            "quick": bool(args.quick),
            "requests_per_client": requests_per_client,
            "generator": {
                "profile": "smoke",
                "analyze_sources": len(analyze_sources),
                "session_edit_variants": len(session_edits),
                "query_targets": len(query_targets),
            },
            "server": {
                "max_concurrency": 4,
                "max_pending": 256,
                "max_queue_wait_seconds": args.max_queue_wait,
                "backend": server.config.backend or "serial",
            },
            "levels": level_rows,
            "saturation": {
                "clients": saturation["clients"],
                "requests_per_second": saturation["requests_per_second"],
            },
            "p99_gate": gate,
        },
    )
    print(f"machine-readable     : {bench_path}")

    if failures:
        print("\nFAILED: " + "; ".join(failures))
        return 1
    print(f"\nOK: swept {levels} clients, coalescing held at every level")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description="type-query server throughput benchmark")
    parser.add_argument("--quick", action="store_true", help="small workload for CI smoke")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default: 8)")
    parser.add_argument("--functions", type=int, default=None,
                        help="functions per generated program (default: 6 quick, 14 full)")
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="benchmark a fleet of N shards (writes BENCH_fleet.json)")
    parser.add_argument("--slo", action="store_true",
                        help="SLO load harness: sweep concurrent clients over mixed "
                        "verb traffic (writes BENCH_slo.json)")
    parser.add_argument("--slo-clients", type=int, default=None, metavar="N",
                        help="pin the --slo sweep to one client count (CI smoke)")
    parser.add_argument("--p99-gate", type=float, default=None, metavar="SECONDS",
                        help="--slo: exit non-zero when query p99 at the first "
                        "swept level exceeds this bound")
    parser.add_argument("--max-queue-wait", type=float, default=2.0, metavar="SECONDS",
                        help="--slo: the server's admission-control wait cap "
                        "(default: %(default)s)")
    args = parser.parse_args()

    functions = args.functions or (6 if args.quick else 14)
    if args.slo:
        return bench_slo(args)
    if args.fleet is not None:
        return bench_fleet(args, functions)
    cold_programs = 3 if args.quick else 6
    warm_repeats = 50 if args.quick else 300
    queries_per_client = 10 if args.quick else 40

    print(f"generating {cold_programs + 1} programs of ~{functions} functions ...")
    sources = make_sources(cold_programs + 1, functions)
    hot_source, cold_sources = sources[0], sources[1:]

    port, server = start_server(max_concurrency=max(4, min(args.clients, 8)))
    print(f"server on port {port}\n")

    cold = bench_cold_analyze(port, cold_sources)
    cold_mean = statistics.mean(cold)
    print(f"cold analyze latency : mean {cold_mean * 1000:8.2f} ms  "
          f"(min {min(cold) * 1000:.2f}, max {max(cold) * 1000:.2f}, n={len(cold)})")

    warm = bench_warm_query(port, hot_source, warm_repeats)
    warm_mean = statistics.mean(warm)
    print(f"warm query latency   : mean {warm_mean * 1000:8.2f} ms  "
          f"(p50 {statistics.median(warm) * 1000:.2f}, n={len(warm)})")
    speedup = cold_mean / warm_mean if warm_mean else float("inf")
    print(f"warm/cold speedup    : {speedup:10.1f}x")

    wall, requests, mismatches = bench_concurrent(
        port, hot_source, args.clients, queries_per_client
    )
    print(f"concurrent fan-out   : {args.clients} clients, {requests} requests in "
          f"{wall:.3f}s ({requests / wall:.0f} req/s), {mismatches} mismatches")

    registry = server.registry.snapshot()
    print(f"registry             : {registry['programs']} programs, "
          f"hit rate {registry['hit_rate']:.0%}")

    bench_path = write_bench_json(
        "BENCH_server.json",
        {
            "benchmark": "server_throughput",
            "backend": server.config.backend or "serial",
            "quick": bool(args.quick),
            "functions_per_program": functions,
            "cold_analyze": latency_summary(cold),
            "warm_query": latency_summary(warm),
            "warm_cold_speedup": speedup,
            "concurrent": {
                "clients": args.clients,
                "requests": requests,
                "wall_seconds": wall,
                "requests_per_second": requests / wall if wall else None,
                "mismatches": mismatches,
            },
            "registry": registry,
        },
    )
    print(f"machine-readable     : {bench_path}")

    failed = []
    if mismatches:
        failed.append(f"{mismatches} concurrent answers differed from the reference")
    if speedup < 10.0:
        failed.append(f"warm-query speedup {speedup:.1f}x below the 10x bar")
    if failed:
        print("\nFAILED: " + "; ".join(failed))
        return 1
    print(f"\nOK: {args.clients} concurrent clients served, warm queries "
          f"{speedup:.0f}x faster than cold analyses")
    return 0


if __name__ == "__main__":
    sys.exit(main())
