"""A TIE-style baseline: subtype constraints with upper/lower bounds, but
monomorphic and without recursive types.

TIE (Lee, Avgerinos, Brumley 2011) was the first machine-code system to keep
subtype constraints and maintain an interval (upper and lower bound) per type
variable.  Its published limitations -- the ones the Retypd paper calls out --
are the lack of recursive types and of polymorphism.  The baseline therefore:

* runs the same SCC-based solver as Retypd but with *monomorphic* callsite
  instantiation (shared existentials: all callsites of a function unify), and
* truncates every recovered sketch to a shallow depth before display, so
  recursive and deeply nested structures degrade to generic pointers -- the
  behaviour Schwartz et al. identified as a major source of decompilation
  imprecision.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core.labels import Label
from ..core.lattice import TypeLattice
from ..core.sketches import Sketch
from ..core.solver import Solver, SolverConfig
from ..ir.program import Program
from ..pipeline import ProgramTypes, _function_types
from ..core.display import TypeDisplay
from ..typegen.abstract_interp import generate_program_constraints
from ..typegen.externs import ensure_lattice_tags, extern_schemes, standard_externs
from ..core.lattice import default_lattice
from ..ir.cfg import cfg_node_count
from .common import TypeInferenceEngine


def truncate_sketch(sketch: Sketch, max_depth: int) -> Sketch:
    """Copy ``sketch`` but cut every path deeper than ``max_depth`` labels."""
    out = Sketch(sketch.lattice)
    mapping = {}

    def copy(node: int, depth: int) -> int:
        if depth == 0:
            target = out.root
        else:
            target = out.add_node()
        source = sketch.node(node)
        out.nodes[target].lower = source.lower
        out.nodes[target].upper = source.upper
        if depth >= max_depth:
            return target
        for label, child in sketch.successors(node).items():
            out.add_edge(target, label, copy(child, depth + 1))
        return target

    copy(sketch.root, 0)
    return out


class TIEEngine(TypeInferenceEngine):
    name = "tie"

    #: structure deeper than this many labels is not reconstructed.
    max_depth = 2

    def analyze(self, program: Program) -> ProgramTypes:
        start = time.perf_counter()
        lattice = ensure_lattice_tags(default_lattice())
        externs = standard_externs()
        inputs = generate_program_constraints(program, externs)
        config = SolverConfig(polymorphic=False, refine_parameters=False)
        solver = Solver(lattice, extern_schemes(externs), config)
        results = solver.solve_program(inputs)

        for result in results.values():
            result.formal_in_sketches = {
                dtv: truncate_sketch(sketch, self.max_depth)
                for dtv, sketch in result.formal_in_sketches.items()
            }
            result.formal_out_sketches = {
                dtv: truncate_sketch(sketch, self.max_depth)
                for dtv, sketch in result.formal_out_sketches.items()
            }

        display = TypeDisplay(lattice)
        functions = {
            name: _function_types(name, inputs[name], result, display)
            for name, result in results.items()
        }
        elapsed = time.perf_counter() - start
        stats = {
            "total_seconds": elapsed,
            "instructions": program.instruction_count,
            "cfg_nodes": sum(cfg_node_count(proc) for proc in program),
        }
        return ProgramTypes(program=program, functions=functions, display=display, stats=stats)
