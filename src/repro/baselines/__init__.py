"""Comparison engines: the algorithm families the paper evaluates against."""

from .common import RetypdEngine, TypeInferenceEngine, whole_program_constraints
from .unification import UnificationEngine
from .tie import TIEEngine, truncate_sketch
from .propagation import PropagationEngine

ALL_ENGINES = {
    "retypd": RetypdEngine,
    "unification": UnificationEngine,
    "tie": TIEEngine,
    "propagation": PropagationEngine,
}

__all__ = [
    "ALL_ENGINES",
    "PropagationEngine",
    "RetypdEngine",
    "TIEEngine",
    "TypeInferenceEngine",
    "UnificationEngine",
    "truncate_sketch",
    "whole_program_constraints",
]
