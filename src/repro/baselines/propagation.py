"""An IdaPro-style signature-propagation baseline.

IdaPro recovers types by propagating the signatures of recognized library
functions through direct value copies, stopping at the first conflict and
defaulting everything else to ``int``.  The baseline mirrors that: it seeds the
lattice atoms of the modelled libc formals, propagates them along copy
constraints (treating them as equalities, ignoring all structural labels), and
renders every untouched location as ``int``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set

from ..core.constraints import ConstraintSet
from ..core.ctype import FunctionType, IntType, PointerType, UnknownType, VoidType
from ..core.display import TypeDisplay
from ..core.labels import InLabel, OutLabel
from ..core.lattice import default_lattice
from ..core.schemes import TypeScheme
from ..core.solver import ProcedureResult
from ..core.variables import DerivedTypeVariable
from ..ir.cfg import cfg_node_count
from ..ir.program import Program
from ..pipeline import FunctionTypes, ProgramTypes
from ..typegen.externs import ensure_lattice_tags
from .common import TypeInferenceEngine, whole_program_constraints


class PropagationEngine(TypeInferenceEngine):
    name = "propagation"

    #: how many copy steps a seeded type survives
    max_steps = 4

    def analyze(self, program: Program) -> ProgramTypes:
        start = time.perf_counter()
        inputs, combined, lattice = whole_program_constraints(program)
        ensure_lattice_tags(lattice)

        # Seed: any derived type variable directly bounded by a type constant.
        seeds: Dict[DerivedTypeVariable, str] = {}
        for constraint in combined:
            if lattice.is_constant(constraint.right.base) and constraint.right.is_base:
                seeds[constraint.left] = constraint.right.base
            if lattice.is_constant(constraint.left.base) and constraint.left.is_base:
                seeds[constraint.right] = constraint.left.base

        # Propagate along copy constraints only (both directions, as IdaPro's
        # propagation is effectively a unification that stops on conflicts).
        types: Dict[DerivedTypeVariable, str] = dict(seeds)
        copy_edges = [
            (c.left, c.right)
            for c in combined
            if not lattice.is_constant(c.left.base) and not lattice.is_constant(c.right.base)
        ]
        for _ in range(self.max_steps):
            changed = False
            for left, right in copy_edges:
                for a, b in ((left, right), (right, left)):
                    if a in types and b not in types:
                        types[b] = types[a]
                        changed = True
            if not changed:
                break

        display = TypeDisplay(lattice)
        functions: Dict[str, FunctionTypes] = {}
        for name, proc in inputs.items():
            params = []
            names = []
            locations = []
            for dtv in proc.formal_ins:
                atom = types.get(dtv)
                params.append(self._atom_to_ctype(display, atom))
                label = dtv.labels[0]
                location = label.location if isinstance(label, InLabel) else str(label)
                names.append(f"arg_{location}")
                locations.append(location)
            if proc.formal_outs:
                ret = self._atom_to_ctype(display, types.get(proc.formal_outs[0]))
            else:
                ret = VoidType()
            ftype = FunctionType(tuple(params), ret)
            result = ProcedureResult(
                name=name, scheme=TypeScheme(proc=name, constraints=ConstraintSet())
            )
            functions[name] = FunctionTypes(
                name=name,
                function_type=ftype,
                param_names=names,
                param_locations=locations,
                result=result,
            )
        elapsed = time.perf_counter() - start
        stats = {
            "total_seconds": elapsed,
            "instructions": program.instruction_count,
            "cfg_nodes": sum(cfg_node_count(proc) for proc in program),
        }
        return ProgramTypes(program=program, functions=functions, display=display, stats=stats)

    @staticmethod
    def _atom_to_ctype(display: TypeDisplay, atom: Optional[str]):
        if atom is None:
            return IntType(32, True)  # the IdaPro default
        return display.atom_to_ctype(atom)
