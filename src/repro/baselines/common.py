"""Shared infrastructure for the comparison engines.

The paper compares Retypd against three algorithm families: unification-based
inference (SecondWrite, REWARDS), interval/bound propagation with subtyping but
without polymorphism or recursive types (TIE), and signature propagation
(IdaPro).  All engines in this package consume the same IR and the same
generated constraints, so the comparison isolates exactly the algorithmic
differences the paper studies.

Every engine implements :class:`TypeInferenceEngine`: given an IR program it
returns a :class:`repro.pipeline.ProgramTypes`, so the evaluation harness and
the metrics treat all engines uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..core.constraints import ConstraintSet
from ..core.display import TypeDisplay
from ..core.labels import InLabel
from ..core.lattice import TypeLattice, default_lattice
from ..core.schemes import TypeScheme
from ..core.solver import ProcedureResult, ProcedureTypingInput
from ..core.sketches import Sketch
from ..core.variables import DerivedTypeVariable
from ..ir.cfg import cfg_node_count
from ..ir.program import Program
from ..pipeline import FunctionTypes, ProgramTypes, _function_types
from ..typegen.abstract_interp import generate_program_constraints
from ..typegen.externs import ensure_lattice_tags, extern_schemes, standard_externs


class TypeInferenceEngine:
    """Interface implemented by Retypd and by every baseline."""

    name = "abstract"

    def analyze(self, program: Program) -> ProgramTypes:  # pragma: no cover - interface
        raise NotImplementedError


class RetypdEngine(TypeInferenceEngine):
    """The reproduction's own algorithm (a thin wrapper around the pipeline)."""

    name = "retypd"

    def __init__(self, lattice: Optional[TypeLattice] = None) -> None:
        self.lattice = lattice

    def analyze(self, program: Program) -> ProgramTypes:
        from ..pipeline import analyze_program

        return analyze_program(program, lattice=self.lattice)


def whole_program_constraints(
    program: Program,
) -> Tuple[Dict[str, ProcedureTypingInput], ConstraintSet, TypeLattice]:
    """Generate constraints and merge them into one monomorphic constraint set.

    All baselines are monomorphic: instead of instantiating callee type schemes
    per callsite, every callsite base variable is identified with the callee's
    own variable, so all calls to a function share one type.  Extern library
    schemes are instantiated once per callsite (they have to be seeded
    somewhere) but recursive structure is not preserved by engines that do not
    support it.
    """
    lattice = ensure_lattice_tags(default_lattice())
    externs = standard_externs()
    inputs = generate_program_constraints(program, externs)
    schemes = extern_schemes(externs)

    combined = ConstraintSet()
    for name, proc in inputs.items():
        combined.update(proc.constraints)
        for callsite in proc.callsites:
            here = DerivedTypeVariable(callsite.base)
            if callsite.callee in inputs:
                there = DerivedTypeVariable(callsite.callee)
                combined.add_subtype(here, there)
                combined.add_subtype(there, here)
            elif callsite.callee in schemes:
                combined.update(schemes[callsite.callee].instantiate_as(callsite.base))
    return inputs, combined, lattice


def results_to_program_types(
    program: Program,
    inputs: Mapping[str, ProcedureTypingInput],
    results: Mapping[str, ProcedureResult],
    lattice: TypeLattice,
    stats: Optional[Dict[str, float]] = None,
) -> ProgramTypes:
    """Package per-procedure results the same way the main pipeline does."""
    display = TypeDisplay(lattice)
    functions: Dict[str, FunctionTypes] = {}
    for name, result in results.items():
        functions[name] = _function_types(name, inputs[name], result, display)
    all_stats: Dict[str, float] = {
        "instructions": program.instruction_count,
        "cfg_nodes": sum(cfg_node_count(proc) for proc in program),
    }
    if stats:
        all_stats.update(stats)
    return ProgramTypes(program=program, functions=functions, display=display, stats=all_stats)


def empty_result(name: str, proc: ProcedureTypingInput) -> ProcedureResult:
    return ProcedureResult(name=name, scheme=TypeScheme(proc=name, constraints=ConstraintSet()))
