"""A unification-based type-inference baseline (SecondWrite / REWARDS family).

Characteristics reproduced from the family:

* value assignments unify types instead of constraining them (the whole
  program becomes one Steensgaard-style quotient);
* calls are monomorphic -- all callsites of a function share one type, so a
  single polymorphic helper (``memcpy`` wrappers, user allocators) merges the
  types of all of its callers (section 2.2);
* lattice information is attached per equivalence class with no notion of
  direction, so an upper bound discovered for one member leaks to every
  comparable variable (the over-unification hazard of section 2.5).

Structure (pointers, fields) is still recovered where the quotient supports
it, which matches SecondWrite's behaviour of recovering structure when its
points-to analysis cooperates.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core.lattice import TypeLattice
from ..core.schemes import TypeScheme
from ..core.shapes import infer_shapes
from ..core.solver import ProcedureResult
from ..core.constraints import ConstraintSet
from ..ir.program import Program
from ..pipeline import ProgramTypes
from .common import TypeInferenceEngine, results_to_program_types, whole_program_constraints


class UnificationEngine(TypeInferenceEngine):
    name = "unification"

    def analyze(self, program: Program) -> ProgramTypes:
        start = time.perf_counter()
        inputs, combined, lattice = whole_program_constraints(program)
        shapes = infer_shapes(combined, lattice)

        results: Dict[str, ProcedureResult] = {}
        for name, proc in inputs.items():
            result = ProcedureResult(
                name=name,
                scheme=TypeScheme(proc=name, constraints=ConstraintSet()),
                shapes=shapes,
            )
            for dtv in proc.formal_ins:
                if shapes.lookup(dtv) is not None:
                    result.formal_in_sketches[dtv] = shapes.sketch_for(dtv)
            for dtv in proc.formal_outs:
                if shapes.lookup(dtv) is not None:
                    result.formal_out_sketches[dtv] = shapes.sketch_for(dtv)
            results[name] = result
        elapsed = time.perf_counter() - start
        return results_to_program_types(
            program, inputs, results, lattice, {"total_seconds": elapsed}
        )
