"""Tokenizer for the mini-C frontend."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional


KEYWORDS = {
    "int",
    "unsigned",
    "char",
    "void",
    "struct",
    "const",
    "if",
    "else",
    "while",
    "return",
    "sizeof",
    "NULL",
    "extern",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|!=|->|&&|\|\||[-+*/%<>=!&|(){}\[\];,.])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'ident', 'keyword', 'op', 'eof'
    value: str
    position: int
    line: int


class LexError(ValueError):
    pass


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            line = source.count("\n", 0, position) + 1
            raise LexError(f"unexpected character {source[position]!r} at line {line}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        line = source.count("\n", 0, match.start()) + 1
        kind = match.lastgroup
        value = match.group()
        if kind == "ident" and value in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, value, match.start(), line))
    tokens.append(Token("eof", "", length, source.count("\n") + 1))
    return tokens
