"""Type checker / annotator for the mini-C frontend.

Besides rejecting malformed programs, the checker records the declared type of
every expression (needed by the code generator for pointer scaling, field
offsets and access sizes) and assembles the *ground truth* tables that the
evaluation compares inferred types against.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..core.ctype import (
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructRef,
    StructType,
    TypedefType,
    UnknownType,
    VoidType,
)
from .ast import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Declaration,
    Expr,
    ExprStmt,
    FieldAccess,
    FunctionDecl,
    GlobalVar,
    If,
    Index,
    IntLit,
    Name,
    NullLit,
    Param,
    Return,
    SizeOf,
    StructDecl,
    StructLayout,
    TranslationUnit,
    Unary,
    While,
    type_size,
)


class TypeCheckError(TypeError):
    pass


#: C-level signatures of the modelled libc functions (return type, parameter types).
EXTERN_C_SIGNATURES: Dict[str, Tuple[CType, Tuple[CType, ...]]] = {
    "malloc": (PointerType(VoidType()), (IntType(32, False),)),
    "calloc": (PointerType(VoidType()), (IntType(32, False), IntType(32, False))),
    "realloc": (PointerType(VoidType()), (PointerType(VoidType()), IntType(32, False))),
    "free": (VoidType(), (PointerType(VoidType()),)),
    "memcpy": (
        PointerType(VoidType()),
        (PointerType(VoidType()), PointerType(VoidType()), IntType(32, False)),
    ),
    "memset": (
        PointerType(VoidType()),
        (PointerType(VoidType()), IntType(32, True), IntType(32, False)),
    ),
    "strlen": (IntType(32, False), (PointerType(IntType(8, True), const=True),)),
    "strcpy": (
        PointerType(IntType(8, True)),
        (PointerType(IntType(8, True)), PointerType(IntType(8, True), const=True)),
    ),
    "strcmp": (
        IntType(32, True),
        (PointerType(IntType(8, True), const=True), PointerType(IntType(8, True), const=True)),
    ),
    "strdup": (PointerType(IntType(8, True)), (PointerType(IntType(8, True), const=True),)),
    "fopen": (
        PointerType(TypedefType("FILE", UnknownType(32))),
        (PointerType(IntType(8, True), const=True), PointerType(IntType(8, True), const=True)),
    ),
    "fclose": (IntType(32, True), (PointerType(TypedefType("FILE", UnknownType(32))),)),
    "fread": (
        IntType(32, False),
        (
            PointerType(VoidType()),
            IntType(32, False),
            IntType(32, False),
            PointerType(TypedefType("FILE", UnknownType(32))),
        ),
    ),
    "fwrite": (
        IntType(32, False),
        (
            PointerType(VoidType()),
            IntType(32, False),
            IntType(32, False),
            PointerType(TypedefType("FILE", UnknownType(32))),
        ),
    ),
    "printf": (IntType(32, True), (PointerType(IntType(8, True), const=True),)),
    "puts": (IntType(32, True), (PointerType(IntType(8, True), const=True),)),
    "open": (IntType(32, True), (PointerType(IntType(8, True), const=True), IntType(32, True))),
    "close": (IntType(32, True), (IntType(32, True),)),
    "read": (IntType(32, True), (IntType(32, True), PointerType(VoidType()), IntType(32, False))),
    "write": (
        IntType(32, True),
        (IntType(32, True), PointerType(VoidType(), const=True), IntType(32, False)),
    ),
    "signal": (PointerType(VoidType()), (IntType(32, True), PointerType(VoidType()))),
    "socket": (IntType(32, True), (IntType(32, True), IntType(32, True), IntType(32, True))),
    "exit": (VoidType(), (IntType(32, True),)),
    "abort": (VoidType(), ()),
    "atoi": (IntType(32, True), (PointerType(IntType(8, True), const=True),)),
    "rand": (IntType(32, True), ()),
}


@dataclass
class FunctionSignature:
    name: str
    return_type: CType
    params: Tuple[CType, ...]
    variadic: bool = False
    is_extern: bool = False


@dataclass
class CheckedUnit:
    """Result of type checking: the annotated AST plus symbol information."""

    unit: TranslationUnit
    struct_layouts: Dict[str, StructLayout]
    signatures: Dict[str, FunctionSignature]
    globals: Dict[str, CType]

    def layout(self, name: str) -> StructLayout:
        return self.struct_layouts[name]


class TypeChecker:
    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit
        self.struct_layouts: Dict[str, StructLayout] = {}
        self.signatures: Dict[str, FunctionSignature] = {}
        self.globals: Dict[str, CType] = {}
        self._scopes: List[Dict[str, CType]] = []

    # -- entry point -----------------------------------------------------------------

    def check(self) -> CheckedUnit:
        self._collect_structs()
        self._collect_signatures()
        for var in self.unit.globals:
            self.globals[var.name] = var.ctype
        for function in self.unit.functions:
            if function.is_definition:
                self._check_function(function)
        return CheckedUnit(self.unit, self.struct_layouts, self.signatures, self.globals)

    # -- declarations ----------------------------------------------------------------------

    def _collect_structs(self) -> None:
        for decl in self.unit.structs:
            # Two-pass layout so self-referential structs (via pointers) work.
            self.struct_layouts[decl.name] = StructLayout(decl.name, [], 4)
        for decl in self.unit.structs:
            self.struct_layouts[decl.name] = decl.layout(self.struct_layouts)

    def _collect_signatures(self) -> None:
        for name, (return_type, params) in EXTERN_C_SIGNATURES.items():
            self.signatures[name] = FunctionSignature(
                name, return_type, tuple(params), variadic=name == "printf", is_extern=True
            )
        for function in self.unit.functions:
            self.signatures[function.name] = FunctionSignature(
                function.name,
                function.return_type,
                tuple(param.ctype for param in function.params),
                is_extern=not function.is_definition,
            )

    # -- scoping -----------------------------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _declare(self, name: str, ctype: CType) -> None:
        self._scopes[-1][name] = ctype

    def _lookup(self, name: str) -> CType:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise TypeCheckError(f"undeclared identifier {name!r}")

    # -- functions ---------------------------------------------------------------------------

    def _check_function(self, function: FunctionDecl) -> None:
        self._push_scope()
        self._current_return = function.return_type
        for param in function.params:
            if isinstance(param.ctype, (StructRef, StructType)):
                raise TypeCheckError(
                    f"{function.name}: struct parameters must be passed by pointer"
                )
            self._declare(param.name, param.ctype)
        self._check_block(function.body or [])
        self._pop_scope()

    def _check_block(self, body: List) -> None:
        self._push_scope()
        for statement in body:
            self._check_statement(statement)
        self._pop_scope()

    def _check_statement(self, statement) -> None:
        if isinstance(statement, Declaration):
            self._declare(statement.name, statement.ctype)
            if statement.init is not None:
                self._check_expr(statement.init)
        elif isinstance(statement, ExprStmt):
            self._check_expr(statement.expr)
        elif isinstance(statement, If):
            self._check_expr(statement.cond)
            self._check_block(statement.then_body)
            self._check_block(statement.else_body)
        elif isinstance(statement, While):
            self._check_expr(statement.cond)
            self._check_block(statement.body)
        elif isinstance(statement, Return):
            if statement.value is not None:
                self._check_expr(statement.value)
        elif isinstance(statement, Block):
            self._check_block(statement.body)
        else:  # pragma: no cover - defensive
            raise TypeCheckError(f"unknown statement {statement!r}")

    # -- expressions --------------------------------------------------------------------------

    def _resolve_struct(self, ctype: CType) -> StructLayout:
        if isinstance(ctype, StructRef):
            if ctype.name not in self.struct_layouts:
                raise TypeCheckError(f"unknown struct {ctype.name!r}")
            return self.struct_layouts[ctype.name]
        if isinstance(ctype, StructType):
            return self.struct_layouts[ctype.name]
        raise TypeCheckError(f"expected a struct type, got {ctype}")

    def _check_expr(self, expr: Expr) -> CType:
        ctype = self._infer(expr)
        expr.ctype = ctype
        return ctype

    def _infer(self, expr: Expr) -> CType:
        if isinstance(expr, IntLit):
            return IntType(32, True)
        if isinstance(expr, NullLit):
            return PointerType(VoidType())
        if isinstance(expr, SizeOf):
            return IntType(32, False)
        if isinstance(expr, Name):
            return self._lookup(expr.ident)
        if isinstance(expr, Unary):
            operand = self._check_expr(expr.operand)
            if expr.op == "*":
                if not isinstance(operand, PointerType):
                    raise TypeCheckError("cannot dereference a non-pointer")
                return operand.pointee
            if expr.op == "&":
                return PointerType(operand)
            return IntType(32, True)
        if isinstance(expr, Binary):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            if expr.op in ("+", "-"):
                if isinstance(left, PointerType) and not isinstance(right, PointerType):
                    return left
                if isinstance(right, PointerType) and expr.op == "+":
                    return right
                if isinstance(left, PointerType) and isinstance(right, PointerType):
                    return IntType(32, True)
                return IntType(32, True)
            return IntType(32, True)
        if isinstance(expr, Assign):
            target = self._check_expr(expr.target)
            self._check_expr(expr.value)
            if not self._is_lvalue(expr.target):
                raise TypeCheckError("assignment target is not an lvalue")
            return target
        if isinstance(expr, FieldAccess):
            obj = self._check_expr(expr.obj)
            if expr.arrow:
                if not isinstance(obj, PointerType):
                    raise TypeCheckError("'->' applied to a non-pointer")
                layout = self._resolve_struct(obj.pointee)
            else:
                layout = self._resolve_struct(obj)
            return layout.field_type(expr.field_name)
        if isinstance(expr, Index):
            base = self._check_expr(expr.base)
            self._check_expr(expr.index)
            if not isinstance(base, PointerType):
                raise TypeCheckError("indexing a non-pointer")
            return base.pointee
        if isinstance(expr, Call):
            signature = self.signatures.get(expr.func)
            if signature is None:
                raise TypeCheckError(f"call to undeclared function {expr.func!r}")
            for argument in expr.args:
                self._check_expr(argument)
            if not signature.variadic and len(expr.args) != len(signature.params):
                raise TypeCheckError(
                    f"{expr.func} expects {len(signature.params)} arguments,"
                    f" got {len(expr.args)}"
                )
            return signature.return_type
        if isinstance(expr, Cast):
            self._check_expr(expr.value)
            return expr.target
        raise TypeCheckError(f"unknown expression {expr!r}")

    def _is_lvalue(self, expr: Expr) -> bool:
        if isinstance(expr, Name):
            return True
        if isinstance(expr, Unary) and expr.op == "*":
            return True
        if isinstance(expr, (FieldAccess, Index)):
            return True
        return False


def typecheck(unit: TranslationUnit) -> CheckedUnit:
    return TypeChecker(unit).check()
