"""Recursive-descent parser for the mini-C frontend."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.ctype import CType, IntType, PointerType, StructRef, VoidType
from .ast import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Declaration,
    Expr,
    ExprStmt,
    FieldAccess,
    FunctionDecl,
    GlobalVar,
    If,
    Index,
    IntLit,
    Name,
    NullLit,
    Param,
    Return,
    SizeOf,
    StructDecl,
    TranslationUnit,
    Unary,
    While,
)
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (near {token.value!r})")
        self.token = token


_TYPE_STARTERS = {"int", "unsigned", "char", "void", "struct", "const"}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, value: str) -> bool:
        return self.peek().value == value

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            raise ParseError(f"expected {value!r}", self.peek())
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise ParseError("expected an identifier", token)
        return self.advance().value

    def at_type(self) -> bool:
        return self.peek().value in _TYPE_STARTERS

    # -- types -----------------------------------------------------------------------

    def parse_type(self) -> Tuple[CType, bool]:
        """Parse a type; returns (ctype, is_pointer_to_const)."""
        is_const = False
        if self.accept("const"):
            is_const = True
        token = self.peek()
        if token.value == "int":
            self.advance()
            base: CType = IntType(32, True)
        elif token.value == "unsigned":
            self.advance()
            self.accept("int")
            if self.check("char"):
                self.advance()
                base = IntType(8, False)
            else:
                base = IntType(32, False)
        elif token.value == "char":
            self.advance()
            base = IntType(8, True)
        elif token.value == "void":
            self.advance()
            base = VoidType()
        elif token.value == "struct":
            self.advance()
            name = self.expect_ident()
            base = StructRef(name)
        else:
            raise ParseError("expected a type", token)
        pointer_const = False
        while self.check("*"):
            self.advance()
            base = PointerType(base, const=is_const)
            pointer_const = is_const
            is_const = False
        return base, pointer_const

    # -- top level ----------------------------------------------------------------------

    def parse_unit(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self.peek().kind != "eof":
            if self.check("struct") and self.peek(2).value == "{":
                unit.structs.append(self.parse_struct_decl())
                continue
            self.accept("extern")
            ctype, is_const = self.parse_type()
            name = self.expect_ident()
            if self.check("("):
                unit.functions.append(self.parse_function(ctype, name))
            else:
                self.expect(";")
                unit.globals.append(GlobalVar(name, ctype))
        return unit

    def parse_struct_decl(self) -> StructDecl:
        self.expect("struct")
        name = self.expect_ident()
        self.expect("{")
        fields: List[Tuple[str, CType]] = []
        while not self.check("}"):
            ctype, _ = self.parse_type()
            field_name = self.expect_ident()
            self.expect(";")
            fields.append((field_name, ctype))
        self.expect("}")
        self.expect(";")
        return StructDecl(name, fields)

    def parse_function(self, return_type: CType, name: str) -> FunctionDecl:
        self.expect("(")
        params: List[Param] = []
        if not self.check(")"):
            if self.check("void") and self.peek(1).value == ")":
                self.advance()
            else:
                while True:
                    ctype, is_const = self.parse_type()
                    param_name = (
                        self.expect_ident() if self.peek().kind == "ident" else f"arg{len(params)}"
                    )
                    params.append(Param(param_name, ctype, is_const))
                    if not self.accept(","):
                        break
        self.expect(")")
        if self.accept(";"):
            return FunctionDecl(name, return_type, params, None)
        body = self.parse_block()
        return FunctionDecl(name, return_type, params, body)

    # -- statements -------------------------------------------------------------------------

    def parse_block(self) -> List:
        self.expect("{")
        body = []
        while not self.check("}"):
            body.append(self.parse_statement())
        self.expect("}")
        return body

    def parse_statement(self):
        if self.check("{"):
            return Block(self.parse_block())
        if self.check("if"):
            return self.parse_if()
        if self.check("while"):
            return self.parse_while()
        if self.check("return"):
            self.advance()
            value = None if self.check(";") else self.parse_expression()
            self.expect(";")
            return Return(value)
        if self.at_type():
            ctype, _ = self.parse_type()
            name = self.expect_ident()
            init = self.parse_expression() if self.accept("=") else None
            self.expect(";")
            return Declaration(name, ctype, init)
        expr = self.parse_expression()
        self.expect(";")
        return ExprStmt(expr)

    def parse_if(self) -> If:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self._statement_body()
        else_body = []
        if self.accept("else"):
            else_body = self._statement_body()
        return If(cond, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        return While(cond, self._statement_body())

    def _statement_body(self) -> List:
        if self.check("{"):
            return self.parse_block()
        return [self.parse_statement()]

    # -- expressions -------------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> Expr:
        left = self.parse_equality()
        if self.accept("="):
            value = self.parse_assignment()
            return Assign(left, value)
        return left

    def parse_equality(self) -> Expr:
        expr = self.parse_relational()
        while self.peek().value in ("==", "!="):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_relational())
        return expr

    def parse_relational(self) -> Expr:
        expr = self.parse_additive()
        while self.peek().value in ("<", ">", "<=", ">="):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> Expr:
        expr = self.parse_multiplicative()
        while self.peek().value in ("+", "-"):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> Expr:
        expr = self.parse_unary()
        while self.peek().value in ("*", "/", "%"):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.value in ("*", "&", "-", "!"):
            self.advance()
            return Unary(token.value, self.parse_unary())
        if token.value == "(" and self.peek(1).value in _TYPE_STARTERS:
            self.advance()
            ctype, _ = self.parse_type()
            self.expect(")")
            return Cast(ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("."):
                expr = FieldAccess(expr, self.expect_ident(), arrow=False)
            elif self.accept("->"):
                expr = FieldAccess(expr, self.expect_ident(), arrow=True)
            elif self.check("[") and not isinstance(expr, Call):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = Index(expr, index)
            elif self.check("(") and isinstance(expr, Name):
                self.advance()
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = Call(expr.ident, args)
            else:
                return expr

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            return IntLit(int(token.value, 0))
        if token.value == "NULL":
            self.advance()
            return NullLit()
        if token.value == "sizeof":
            self.advance()
            self.expect("(")
            ctype, _ = self.parse_type()
            self.expect(")")
            return SizeOf(ctype)
        if token.kind == "ident":
            self.advance()
            return Name(token.value)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError("expected an expression", token)


def parse_c(source: str) -> TranslationUnit:
    """Parse mini-C source text into a :class:`TranslationUnit`."""
    return Parser(source).parse_unit()
