"""The mini-C frontend: parse, type check, record ground truth, compile to the IR.

Typical use::

    from repro.frontend import compile_c

    result = compile_c(source_text)
    result.program        # repro.ir.Program (type-erased machine code)
    result.ground_truth   # declared types, for evaluation
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..core.ctype import CType, PointerType, StructType, VoidType
from ..ir.program import Program
from .ast import FunctionDecl, StructLayout, TranslationUnit
from .codegen import CodeGenerator, CodegenError, CodegenOptions
from .lexer import LexError, tokenize
from .parser import ParseError, parse_c
from .typecheck import (
    EXTERN_C_SIGNATURES,
    CheckedUnit,
    FunctionSignature,
    TypeCheckError,
    typecheck,
)


@dataclass
class FunctionGroundTruth:
    """Declared (source-level) typing of one function."""

    name: str
    #: (formal location, declared type) in stack order: stack0, stack4, ...
    params: List[Tuple[str, CType]] = dc_field(default_factory=list)
    param_names: List[str] = dc_field(default_factory=list)
    return_type: Optional[CType] = None
    #: per-parameter: was the parameter declared as a pointer-to-const?
    param_const: List[bool] = dc_field(default_factory=list)

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class GroundTruth:
    """Whole-program ground truth recorded before type erasure."""

    functions: Dict[str, FunctionGroundTruth] = dc_field(default_factory=dict)
    structs: Dict[str, StructType] = dc_field(default_factory=dict)
    globals: Dict[str, CType] = dc_field(default_factory=dict)

    def function(self, name: str) -> FunctionGroundTruth:
        return self.functions[name]


@dataclass
class CompilationResult:
    source: str
    unit: TranslationUnit
    checked: CheckedUnit
    program: Program
    ground_truth: GroundTruth


def compile_c(
    source: str, options: Optional[CodegenOptions] = None
) -> CompilationResult:
    """Compile mini-C source to type-erased machine code plus ground truth."""
    unit = parse_c(source)
    checked = typecheck(unit)
    program = CodeGenerator(checked, options).compile()
    truth = extract_ground_truth(checked)
    return CompilationResult(
        source=source, unit=unit, checked=checked, program=program, ground_truth=truth
    )


def extract_ground_truth(checked: CheckedUnit) -> GroundTruth:
    truth = GroundTruth()
    for name, layout in checked.struct_layouts.items():
        truth.structs[name] = layout.to_ctype()
    for name, ctype in checked.globals.items():
        truth.globals[f"g_{name}"] = ctype
    for function in checked.unit.functions:
        if not function.is_definition:
            continue
        entry = FunctionGroundTruth(name=function.name)
        for index, param in enumerate(function.params):
            declared = param.ctype
            if isinstance(declared, PointerType) and param.is_const:
                declared = PointerType(declared.pointee, const=True)
            entry.params.append((f"stack{4 * index}", declared))
            entry.param_names.append(param.name)
            entry.param_const.append(
                isinstance(param.ctype, PointerType) and param.ctype.const
            )
        if not isinstance(function.return_type, VoidType):
            entry.return_type = function.return_type
        truth.functions[function.name] = entry
    return truth


__all__ = [
    "CheckedUnit",
    "CodegenError",
    "CodegenOptions",
    "CompilationResult",
    "EXTERN_C_SIGNATURES",
    "FunctionGroundTruth",
    "FunctionSignature",
    "GroundTruth",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "compile_c",
    "extract_ground_truth",
    "parse_c",
    "tokenize",
    "typecheck",
]
