"""Code generation: mini-C to the machine-code IR, erasing all types.

The generated code follows the conventions of a 32-bit cdecl compiler:

* ``push ebp; mov ebp, esp; sub esp, N`` prologues, ``leave; ret`` epilogues;
* arguments pushed right-to-left, caller cleans the stack;
* parameters at ``[ebp+8+4i]``, locals at negative ``ebp`` offsets;
* expression temporaries spilled with ``push``/``pop``;
* ``xor eax, eax`` for zero/NULL constants (the semi-syntactic constant idiom
  of section 2.1) when :class:`CodegenOptions.xor_zero` is set;
* optional stack-slot reuse between locals of disjoint scopes
  (:class:`CodegenOptions.reuse_stack_slots`, the idiom of Figure 2).

No type information survives into the emitted instructions -- only sizes and
offsets -- which is precisely the situation machine-code type inference faces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple, Union

from ..core.ctype import CType, IntType, PointerType, StructRef, StructType, VoidType
from ..ir.instructions import (
    BinaryOp,
    Call as IRCall,
    Compare,
    Imm,
    Instruction,
    Jcc,
    Jmp,
    LabelPseudo,
    Lea,
    Leave,
    Mem,
    Mov,
    Pop,
    Push,
    Reg,
    Ret,
)
from ..ir.program import Procedure, Program
from .ast import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Declaration,
    Expr,
    ExprStmt,
    FieldAccess,
    FunctionDecl,
    If,
    Index,
    IntLit,
    Name,
    NullLit,
    Return,
    SizeOf,
    StructLayout,
    TranslationUnit,
    Unary,
    While,
    type_size,
)
from .typecheck import CheckedUnit, EXTERN_C_SIGNATURES

EAX = Reg("eax")
EBX = Reg("ebx")
ECX = Reg("ecx")
EBP = Reg("ebp")
ESP = Reg("esp")


@dataclass
class CodegenOptions:
    """Compiler behaviours that create the idioms of section 2."""

    xor_zero: bool = True
    reuse_stack_slots: bool = True


class CodegenError(ValueError):
    pass


@dataclass
class DirectMem:
    """An lvalue addressed directly through ebp or a global symbol."""

    mem: Mem


@dataclass
class RegMem:
    """An lvalue whose base address has been computed into eax."""

    offset: int
    size: int


Lvalue = Union[DirectMem, RegMem]


class FunctionCodegen:
    def __init__(
        self,
        function: FunctionDecl,
        checked: CheckedUnit,
        options: CodegenOptions,
    ) -> None:
        self.function = function
        self.checked = checked
        self.options = options
        self.instructions: List[Instruction] = []
        self._labels = itertools.count()
        self.param_offsets: Dict[str, int] = {}
        self.param_types: Dict[str, CType] = {}
        self.local_offsets: Dict[str, int] = {}
        self.local_types: Dict[str, CType] = {}
        self.frame_size = 0
        self.return_label = ".Lreturn"

    # -- small helpers -------------------------------------------------------------------

    def emit(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def new_label(self) -> str:
        return f".L{next(self._labels)}"

    def _size_of(self, ctype: Optional[CType]) -> int:
        if ctype is None:
            return 4
        size = type_size(ctype, self.checked.struct_layouts)
        return size if size in (1, 2, 4) else 4

    def _struct_layout(self, ctype: CType) -> StructLayout:
        if isinstance(ctype, StructRef):
            return self.checked.struct_layouts[ctype.name]
        if isinstance(ctype, StructType):
            return self.checked.struct_layouts[ctype.name]
        raise CodegenError(f"not a struct type: {ctype}")

    # -- frame layout ----------------------------------------------------------------------

    def _allocate_locals(self) -> None:
        for index, param in enumerate(self.function.params):
            self.param_offsets[param.name] = 8 + 4 * index
            self.param_types[param.name] = param.ctype

        def walk(statements: List, offset: int) -> int:
            """Assign offsets to declarations; returns the maximum frame extent."""
            deepest = offset
            for statement in statements:
                if isinstance(statement, Declaration):
                    size = type_size(statement.ctype, self.checked.struct_layouts)
                    size = (size + 3) // 4 * 4
                    offset += size
                    self.local_offsets[statement.name] = -offset
                    self.local_types[statement.name] = statement.ctype
                    deepest = max(deepest, offset)
                elif isinstance(statement, If):
                    if self.options.reuse_stack_slots:
                        # Locals of the two (disjoint) branches share stack slots.
                        then_extent = walk(statement.then_body, offset)
                        else_extent = walk(statement.else_body, offset)
                        deepest = max(deepest, then_extent, else_extent)
                    else:
                        then_extent = walk(statement.then_body, offset)
                        else_extent = walk(statement.else_body, then_extent)
                        deepest = max(deepest, else_extent)
                        offset = else_extent
                elif isinstance(statement, While):
                    extent = walk(statement.body, offset)
                    deepest = max(deepest, extent)
                    if not self.options.reuse_stack_slots:
                        offset = extent
                elif isinstance(statement, Block):
                    extent = walk(statement.body, offset)
                    deepest = max(deepest, extent)
                    if not self.options.reuse_stack_slots:
                        offset = extent
            return deepest

        self.frame_size = walk(self.function.body or [], 0)

    def _variable_lvalue(self, name: str, size: int) -> Lvalue:
        if name in self.local_offsets:
            return DirectMem(Mem("ebp", self.local_offsets[name], size))
        if name in self.param_offsets:
            return DirectMem(Mem("ebp", self.param_offsets[name], size))
        if name in self.checked.globals:
            return DirectMem(Mem(f"g_{name}", 0, size))
        raise CodegenError(f"unknown variable {name!r}")

    def _variable_type(self, name: str) -> Optional[CType]:
        if name in self.local_types:
            return self.local_types[name]
        if name in self.param_types:
            return self.param_types[name]
        return self.checked.globals.get(name)

    # -- lvalues ------------------------------------------------------------------------------

    def gen_lvalue(self, expr: Expr) -> Lvalue:
        size = self._size_of(getattr(expr, "ctype", None))
        if isinstance(expr, Name):
            return self._variable_lvalue(expr.ident, size)
        if isinstance(expr, Unary) and expr.op == "*":
            self.gen_expr(expr.operand)
            return RegMem(0, size)
        if isinstance(expr, FieldAccess):
            if expr.arrow:
                obj_type = expr.obj.ctype
                layout = self._struct_layout(obj_type.pointee)  # type: ignore[union-attr]
                self.gen_expr(expr.obj)
                return RegMem(layout.field_offset(expr.field_name), size)
            layout = self._struct_layout(expr.obj.ctype)
            inner = self.gen_lvalue(expr.obj)
            delta = layout.field_offset(expr.field_name)
            if isinstance(inner, DirectMem):
                mem = inner.mem
                return DirectMem(Mem(mem.base, mem.offset + delta, size, mem.index))
            return RegMem(inner.offset + delta, size)
        if isinstance(expr, Index):
            element = expr.base.ctype.pointee if isinstance(expr.base.ctype, PointerType) else None
            scale = type_size(element, self.checked.struct_layouts) if element else 4
            self.gen_expr(expr.index)
            if scale != 1:
                self.emit(BinaryOp("imul", EAX, Imm(scale)))
            self.emit(Push(EAX))
            self.gen_expr(expr.base)
            self.emit(Pop(EBX))
            self.emit(BinaryOp("add", EAX, EBX))
            return RegMem(0, self._size_of(element) if element else 4)
        raise CodegenError(f"expression is not an lvalue: {expr}")

    def _load_lvalue(self, lvalue: Lvalue) -> None:
        if isinstance(lvalue, DirectMem):
            self.emit(Mov(EAX, lvalue.mem))
        else:
            self.emit(Mov(EAX, Mem("eax", lvalue.offset, lvalue.size)))

    # -- expressions -----------------------------------------------------------------------------

    def gen_expr(self, expr: Expr) -> None:
        """Emit code leaving the expression value in eax."""
        if isinstance(expr, (IntLit, NullLit)):
            value = expr.value if isinstance(expr, IntLit) else 0
            if value == 0 and self.options.xor_zero:
                self.emit(BinaryOp("xor", EAX, EAX))
            else:
                self.emit(Mov(EAX, Imm(value)))
            return
        if isinstance(expr, SizeOf):
            self.emit(Mov(EAX, Imm(type_size(expr.target, self.checked.struct_layouts))))
            return
        if isinstance(expr, (Name, FieldAccess, Index)):
            self._load_lvalue(self.gen_lvalue(expr))
            return
        if isinstance(expr, Unary):
            self._gen_unary(expr)
            return
        if isinstance(expr, Binary):
            self._gen_binary(expr)
            return
        if isinstance(expr, Assign):
            self._gen_assign(expr)
            return
        if isinstance(expr, Call):
            self._gen_call(expr)
            return
        if isinstance(expr, Cast):
            self.gen_expr(expr.value)
            return
        raise CodegenError(f"cannot generate code for {expr!r}")

    def _gen_unary(self, expr: Unary) -> None:
        if expr.op == "*":
            self._load_lvalue(self.gen_lvalue(expr))
            return
        if expr.op == "&":
            target = self.gen_lvalue(expr.operand)
            if isinstance(target, DirectMem):
                if target.mem.base == "ebp":
                    self.emit(Lea(EAX, target.mem))
                else:
                    raise CodegenError("cannot take the address of a global in this subset")
            else:
                if target.offset:
                    self.emit(BinaryOp("add", EAX, Imm(target.offset)))
            return
        if expr.op == "-":
            self.gen_expr(expr.operand)
            self.emit(BinaryOp("imul", EAX, Imm(-1)))
            return
        if expr.op == "!":
            self.gen_expr(expr.operand)
            true_label, end_label = self.new_label(), self.new_label()
            self.emit(Compare("test", EAX, EAX))
            self.emit(Jcc("z", true_label))
            self.emit(Mov(EAX, Imm(0)))
            self.emit(Jmp(end_label))
            self.emit(LabelPseudo(true_label))
            self.emit(Mov(EAX, Imm(1)))
            self.emit(LabelPseudo(end_label))
            return
        raise CodegenError(f"unknown unary operator {expr.op!r}")

    def _gen_binary(self, expr: Binary) -> None:
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            self._gen_comparison_value(expr)
            return
        left_type, right_type = expr.left.ctype, expr.right.ctype
        scale_right = 1
        scale_left = 1
        if expr.op in ("+", "-") and isinstance(left_type, PointerType) and not isinstance(
            right_type, PointerType
        ):
            scale_right = type_size(left_type.pointee, self.checked.struct_layouts)
        if expr.op == "+" and isinstance(right_type, PointerType) and not isinstance(
            left_type, PointerType
        ):
            scale_left = type_size(right_type.pointee, self.checked.struct_layouts)

        self.gen_expr(expr.right)
        if scale_right != 1:
            self.emit(BinaryOp("imul", EAX, Imm(scale_right)))
        self.emit(Push(EAX))
        self.gen_expr(expr.left)
        if scale_left != 1:
            self.emit(BinaryOp("imul", EAX, Imm(scale_left)))
        self.emit(Pop(EBX))
        if expr.op == "+":
            self.emit(BinaryOp("add", EAX, EBX))
        elif expr.op == "-":
            self.emit(BinaryOp("sub", EAX, EBX))
        else:  # * / % -- integral results; exact semantics are irrelevant here
            self.emit(BinaryOp("imul", EAX, EBX))

    def _gen_comparison_value(self, expr: Binary) -> None:
        self.gen_expr(expr.right)
        self.emit(Push(EAX))
        self.gen_expr(expr.left)
        self.emit(Pop(EBX))
        self.emit(Compare("cmp", EAX, EBX))
        condition = {"==": "e", "!=": "ne", "<": "l", "<=": "le", ">": "g", ">=": "ge"}[expr.op]
        true_label, end_label = self.new_label(), self.new_label()
        self.emit(Jcc(condition, true_label))
        self.emit(Mov(EAX, Imm(0)))
        self.emit(Jmp(end_label))
        self.emit(LabelPseudo(true_label))
        self.emit(Mov(EAX, Imm(1)))
        self.emit(LabelPseudo(end_label))

    def _gen_assign(self, expr: Assign) -> None:
        target = expr.target
        size = self._size_of(target.ctype)
        if isinstance(target, Name) or (
            isinstance(target, FieldAccess) and not target.arrow
        ):
            lvalue = self.gen_lvalue(target)
            if isinstance(lvalue, DirectMem):
                self.gen_expr(expr.value)
                self.emit(Mov(lvalue.mem, EAX))
                return
        # General case: compute the address first, hold it on the stack.
        lvalue = self.gen_lvalue(target)
        if isinstance(lvalue, DirectMem):
            self.gen_expr(expr.value)
            self.emit(Mov(lvalue.mem, EAX))
            return
        self.emit(Push(EAX))
        self.gen_expr(expr.value)
        self.emit(Pop(EBX))
        self.emit(Mov(Mem("ebx", lvalue.offset, lvalue.size), EAX))

    def _gen_call(self, expr: Call) -> None:
        for argument in reversed(expr.args):
            self.gen_expr(argument)
            self.emit(Push(EAX))
        self.emit(IRCall(expr.func))
        if expr.args:
            self.emit(BinaryOp("add", ESP, Imm(4 * len(expr.args))))

    # -- conditions ----------------------------------------------------------------------------------

    _NEGATED = {"==": "ne", "!=": "e", "<": "ge", "<=": "g", ">": "le", ">=": "l"}

    def gen_condition(self, cond: Expr, false_label: str) -> None:
        """Emit code that jumps to ``false_label`` when the condition is false."""
        if isinstance(cond, Binary) and cond.op in self._NEGATED:
            self.gen_expr(cond.right)
            self.emit(Push(EAX))
            self.gen_expr(cond.left)
            self.emit(Pop(EBX))
            self.emit(Compare("cmp", EAX, EBX))
            self.emit(Jcc(self._NEGATED[cond.op], false_label))
            return
        if isinstance(cond, Unary) and cond.op == "!":
            self.gen_expr(cond.operand)
            self.emit(Compare("test", EAX, EAX))
            self.emit(Jcc("nz", false_label))
            return
        self.gen_expr(cond)
        self.emit(Compare("test", EAX, EAX))
        self.emit(Jcc("z", false_label))

    # -- statements -----------------------------------------------------------------------------------

    def gen_statement(self, statement) -> None:
        if isinstance(statement, Declaration):
            if statement.init is not None:
                size = self._size_of(statement.ctype)
                self.gen_expr(statement.init)
                self.emit(Mov(Mem("ebp", self.local_offsets[statement.name], size), EAX))
        elif isinstance(statement, ExprStmt):
            self.gen_expr(statement.expr)
        elif isinstance(statement, If):
            else_label = self.new_label()
            end_label = self.new_label() if statement.else_body else else_label
            self.gen_condition(statement.cond, else_label)
            for inner in statement.then_body:
                self.gen_statement(inner)
            if statement.else_body:
                self.emit(Jmp(end_label))
                self.emit(LabelPseudo(else_label))
                for inner in statement.else_body:
                    self.gen_statement(inner)
            self.emit(LabelPseudo(end_label))
        elif isinstance(statement, While):
            head_label, end_label = self.new_label(), self.new_label()
            self.emit(LabelPseudo(head_label))
            self.gen_condition(statement.cond, end_label)
            for inner in statement.body:
                self.gen_statement(inner)
            self.emit(Jmp(head_label))
            self.emit(LabelPseudo(end_label))
        elif isinstance(statement, Return):
            if statement.value is not None:
                self.gen_expr(statement.value)
            self.emit(Jmp(self.return_label))
        elif isinstance(statement, Block):
            for inner in statement.body:
                self.gen_statement(inner)
        else:  # pragma: no cover - defensive
            raise CodegenError(f"unknown statement {statement!r}")

    # -- whole function ------------------------------------------------------------------------------------

    def generate(self) -> Procedure:
        self._allocate_locals()
        self.emit(Push(EBP))
        self.emit(Mov(EBP, ESP))
        if self.frame_size:
            self.emit(BinaryOp("sub", ESP, Imm(self.frame_size)))
        for statement in self.function.body or []:
            self.gen_statement(statement)
        self.emit(LabelPseudo(self.return_label))
        self.emit(Leave())
        self.emit(Ret())
        return Procedure(self.function.name, self.instructions)


class CodeGenerator:
    def __init__(self, checked: CheckedUnit, options: Optional[CodegenOptions] = None) -> None:
        self.checked = checked
        self.options = options or CodegenOptions()

    def compile(self) -> Program:
        program = Program()
        for name, ctype in self.checked.globals.items():
            program.globals[f"g_{name}"] = type_size(ctype, self.checked.struct_layouts)
        defined = {f.name for f in self.checked.unit.functions if f.is_definition}
        for function in self.checked.unit.functions:
            if not function.is_definition:
                program.externs.add(function.name)
                continue
            generator = FunctionCodegen(function, self.checked, self.options)
            program.add_procedure(generator.generate())
        # Calls to modelled libc functions are externs as well.
        for procedure in program.procedures.values():
            for callee in procedure.direct_callees():
                if callee not in defined:
                    program.externs.add(callee)
        return program
