"""Abstract syntax and source-level types for the mini-C frontend.

The frontend exists to manufacture *realistic, type-erased machine code with
known ground truth*: the paper evaluates against DWARF/PDB debug information
from real compilers; we evaluate against the declared types that this
compiler records before erasing them during code generation.

The language is a small C subset: global struct declarations, global scalar
variables, functions with ``int``/``unsigned``/``char``/pointer/struct-pointer
parameters, locals (including local structs), assignments, ``if``/``while``/
``return``, pointer and field accesses, array indexing on pointers, casts,
``sizeof``, and calls (including the modelled libc externs).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.ctype import (
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructField,
    StructRef,
    StructType,
    TypedefType,
    UnknownType,
    VoidType,
)

# ---------------------------------------------------------------------------
# Source-level types.  We reuse the core C type model; the frontend adds a
# little structure around struct declaration and layout.
# ---------------------------------------------------------------------------

INT = IntType(32, True)
UINT = IntType(32, False)
CHAR = IntType(8, True)
VOID = VoidType()


@dataclass
class StructDecl:
    """A source-level struct declaration (before layout)."""

    name: str
    fields: List[Tuple[str, CType]] = dc_field(default_factory=list)

    def layout(self, struct_table: Dict[str, "StructLayout"]) -> "StructLayout":
        offset = 0
        placed: List[Tuple[str, int, CType]] = []
        for field_name, ctype in self.fields:
            size = type_size(ctype, struct_table)
            align = min(4, size) or 1
            if offset % align:
                offset += align - offset % align
            placed.append((field_name, offset, ctype))
            offset += size
        total = offset if offset % 4 == 0 else offset + (4 - offset % 4)
        return StructLayout(self.name, placed, max(total, 4))


@dataclass
class StructLayout:
    """A struct with resolved field offsets and total size."""

    name: str
    fields: List[Tuple[str, int, CType]]
    size: int

    def field_offset(self, name: str) -> int:
        for field_name, offset, _ in self.fields:
            if field_name == name:
                return offset
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_type(self, name: str) -> CType:
        for field_name, _, ctype in self.fields:
            if field_name == name:
                return ctype
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def to_ctype(self) -> StructType:
        return StructType(
            self.name,
            tuple(
                StructField(offset, ctype, field_name)
                for field_name, offset, ctype in self.fields
            ),
        )


def type_size(ctype: CType, struct_table: Optional[Dict[str, StructLayout]] = None) -> int:
    """Size of a value of ``ctype`` in bytes (pointers are 4 bytes)."""
    if isinstance(ctype, PointerType):
        return 4
    if isinstance(ctype, (StructRef, StructType)):
        if isinstance(ctype, StructRef) and struct_table and ctype.name in struct_table:
            return struct_table[ctype.name].size
        if isinstance(ctype, StructType):
            return max(4, (ctype.size_bits or 32) // 8)
        return 4
    if isinstance(ctype, TypedefType):
        return type_size(ctype.underlying, struct_table)
    if ctype.size_bits:
        return max(1, ctype.size_bits // 8)
    return 4


def is_pointer_type(ctype: CType) -> bool:
    return isinstance(ctype, PointerType)


def pointee_of(ctype: CType) -> CType:
    if isinstance(ctype, PointerType):
        return ctype.pointee
    return UnknownType()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class; ``ctype`` is filled in by the type checker."""

    def __post_init__(self) -> None:
        self.ctype: Optional[CType] = None


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class NullLit(Expr):
    pass


@dataclass
class SizeOf(Expr):
    target: CType


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str  # '*', '&', '-', '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % < > <= >= == !=
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr
    value: Expr


@dataclass
class FieldAccess(Expr):
    obj: Expr
    field_name: str
    arrow: bool  # True for '->', False for '.'


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    func: str
    args: List[Expr]


@dataclass
class Cast(Expr):
    target: CType
    value: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class Declaration(Stmt):
    name: str
    ctype: CType
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = dc_field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Block(Stmt):
    body: List[Stmt]


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    is_const: bool = False  # declared as a pointer-to-const


@dataclass
class FunctionDecl:
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[List[Stmt]] = None  # None for prototypes

    @property
    def is_definition(self) -> bool:
        return self.body is not None


@dataclass
class GlobalVar:
    name: str
    ctype: CType


@dataclass
class TranslationUnit:
    structs: List[StructDecl] = dc_field(default_factory=list)
    globals: List[GlobalVar] = dc_field(default_factory=list)
    functions: List[FunctionDecl] = dc_field(default_factory=list)

    def function(self, name: str) -> FunctionDecl:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)
