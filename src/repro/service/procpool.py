"""The process-pool solve backend: per-SCC solving on worker processes.

Retypd's per-SCC type schemes are independent summaries, so SCCs that share a
topological wave of the call-graph condensation can be solved on *processes*
rather than GIL-bound threads.  This module supplies everything the
``"processes"`` executor strategy of :class:`~repro.service.scheduler.
WaveScheduler` needs:

* **a pickle-free codec** -- solver inputs (constraints, formals, callsites,
  callee schemes/sketches) and outputs (SCC summaries, per-stage
  :class:`~repro.core.solver.SolveStats`) cross the process boundary as JSON
  text built from the established round-trips (``ConstraintSet.to_json``,
  ``TypeScheme.to_json``, ``Sketch.to_json``, ``serialize_summary``).  Worker
  processes never unpickle live solver objects;
* **warm workers** -- each worker builds its :class:`~repro.core.solver.
  Solver`, lattice and extern schemes once (from a JSON environment payload)
  and keeps its own handle on the shared :class:`~repro.service.store.
  SummaryStore` disk tier, so a summary another process already published is
  returned verbatim instead of re-solved, and cache hits in the parent never
  cross a process boundary at all (only missing SCCs are dispatched);
* **chunked dispatch** -- per-SCC tasks are tiny (median ~1 ms on the
  synthetic corpora), so one IPC message carries a *chunk* of SCCs from one
  wave, amortizing serialization and queue latency;
* **graceful degradation** -- a worker crash (or a broken pool) requeues the
  chunk's SCCs on the in-process path and counts them in the typed
  ``worker_failed`` stat; the pool is rebuilt lazily on next use.

The parent-facing entry points are :class:`ProcPool` (one long-lived pool per
:class:`~repro.service.AnalysisService`, keyed by its environment payload) and
:class:`ProcessWaveRunner` (one per ``solve_inputs`` call, carrying that
run's inputs/working-results context).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import ChainMap
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.constraints import (
    AddConstraint,
    ConstraintSet,
    SubConstraint,
    SubtypeConstraint,
)
from ..core.intern import StringTable
from ..core.lattice import TypeLattice
from ..core.schemes import TypeScheme
from ..core.sketches import Sketch
from ..core.solver import (
    Callsite,
    ProcedureResult,
    ProcedureTypingInput,
    SolveStats,
    Solver,
    SolverConfig,
    collect_caller_contributions,
)
from ..core.variables import parse_dtv
from ..obs.metrics import get_registry
from ..obs.trace import Tracer, get_tracer, tracing
from .store import (
    STORE_FORMAT,
    SummaryStore,
    deserialize_summary,
    environment_fingerprint,
    program_fingerprints,
    scc_summary_keys,
    serialize_summary,
    summarize_scc,
)

#: bump when the environment/task payload layout changes so a stale worker
#: (from a hot-reloaded parent) can never misinterpret a task.  v2 replaced
#: the nested-JSON task payloads with compact integer tables: one
#: string-intern table per task plus flat int arrays for constraints,
#: formals, callsites, scheme and sketch entries.
PROCPOOL_FORMAT = "retypd-procpool-v2"

#: multiprocessing start method; ``spawn`` is deliberate -- the parent may be
#: a threaded asyncio daemon, and forking a threaded process is undefined
#: behaviour territory.  Override via REPRO_PROCPOOL_START_METHOD for
#: experiments.
START_METHOD_ENV = "REPRO_PROCPOOL_START_METHOD"

#: test-only fault injection: a worker about to solve an SCC containing this
#: procedure hard-exits (crash) or raises (soft failure).  Used by the
#: worker-crash requeue tests; unset in production.
CRASH_ENV = "REPRO_PROCPOOL_TEST_CRASH"
FAIL_ENV = "REPRO_PROCPOOL_TEST_FAIL"


# ---------------------------------------------------------------------------
# Environment codec (parent -> worker, once per worker)
# ---------------------------------------------------------------------------


def encode_environment(
    lattice: TypeLattice,
    externs: Mapping[str, "object"],
    solver_config: SolverConfig,
    cache_dir: Optional[str],
) -> str:
    """Everything a worker needs to build its solver, as one JSON string.

    The payload doubles as the pool's identity: if the service's lattice,
    extern table, solver configuration or disk tier change between analyses,
    the encoded environment changes and the stale pool is torn down.
    """
    return json.dumps(
        {
            "format": PROCPOOL_FORMAT,
            "store_format": STORE_FORMAT,
            "lattice": lattice.to_json(),
            "externs": {
                name: {
                    "stack_params": sig.stack_params,
                    "has_return": sig.has_return,
                    "variadic": sig.variadic,
                    "constraints": list(sig.constraints),
                    "quantified": list(sig.quantified),
                }
                for name, sig in externs.items()
            },
            "solver": {
                "precise_bounds": solver_config.precise_bounds,
                "max_scheme_depth": solver_config.max_scheme_depth,
                "refine_parameters": solver_config.refine_parameters,
                "polymorphic": solver_config.polymorphic,
            },
            "cache_dir": cache_dir,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


# ---------------------------------------------------------------------------
# Task codec (parent -> worker, one chunk of SCCs per message)
# ---------------------------------------------------------------------------
#
# v2 layout: every task carries one string-intern table (``strings``) and all
# derived-type-variable / lattice-element / label occurrences are table ids in
# *flat int arrays* -- a constraint set is ``{"s": [lhs, rhs, lhs, rhs, ...],
# "a": [op, l, r, res, ...]}``, a sketch is ``{"n": [node, lower, upper, ...],
# "e": [src, label, dst, ...]}``.  The worker parses each distinct string at
# most once (``_TableReader`` memoizes per id) no matter how many constraint
# slots reference it, where the v1 nested-JSON codec re-parsed every
# occurrence and shipped every repeated variable spelled out.


class _TableReader:
    """Worker-side view of a task's string table: parse each id at most once."""

    __slots__ = ("strings", "_dtvs")

    def __init__(self, strings: Sequence[str]) -> None:
        self.strings = strings
        self._dtvs: List[Optional[object]] = [None] * len(strings)

    def text(self, sid: int) -> str:
        return self.strings[sid]

    def dtv(self, sid: int):
        dtv = self._dtvs[sid]
        if dtv is None:
            dtv = parse_dtv(self.strings[sid])
            self._dtvs[sid] = dtv
        return dtv


def encode_constraints(
    constraints: ConstraintSet, intern: Callable[[str], int]
) -> Dict[str, List[int]]:
    """A constraint set as flat id arrays (sorted, hence canonical)."""
    subtype: List[int] = []
    for c in sorted(constraints.subtype, key=str):
        subtype.append(intern(str(c.left)))
        subtype.append(intern(str(c.right)))
    additive: List[int] = []
    for c in sorted(constraints.additive, key=str):
        additive.append(0 if isinstance(c, AddConstraint) else 1)
        additive.append(intern(str(c.left)))
        additive.append(intern(str(c.right)))
        additive.append(intern(str(c.result)))
    return {"s": subtype, "a": additive}


def decode_constraints(
    entry: Mapping[str, Sequence[int]], reader: _TableReader
) -> ConstraintSet:
    """Inverse of :func:`encode_constraints`."""
    out = ConstraintSet()
    dtv = reader.dtv
    subtype = entry["s"]
    for i in range(0, len(subtype), 2):
        out.subtype.add(SubtypeConstraint(dtv(subtype[i]), dtv(subtype[i + 1])))
    additive = entry["a"]
    for i in range(0, len(additive), 4):
        ctor = AddConstraint if additive[i] == 0 else SubConstraint
        out.additive.add(
            ctor(dtv(additive[i + 1]), dtv(additive[i + 2]), dtv(additive[i + 3]))
        )
    return out


def _encode_sketch_entry(
    data: Mapping[str, object], intern: Callable[[str], int]
) -> Dict[str, List[int]]:
    """Flatten one ``Sketch.to_json`` dict, interning lattice/label strings."""
    nodes: List[int] = []
    for ident, lower, upper in data["nodes"]:
        nodes.append(ident)
        nodes.append(intern(lower))
        nodes.append(intern(upper))
    edges: List[int] = []
    for src, label_text, dst in data["edges"]:
        edges.append(src)
        edges.append(intern(label_text))
        edges.append(dst)
    return {"n": nodes, "e": edges}


def _decode_sketch_entry(
    entry: Mapping[str, Sequence[int]], reader: _TableReader, lattice: TypeLattice
) -> Sketch:
    text = reader.text
    nodes = entry["n"]
    edges = entry["e"]
    return Sketch.from_json(
        {
            "nodes": [
                [nodes[i], text(nodes[i + 1]), text(nodes[i + 2])]
                for i in range(0, len(nodes), 3)
            ],
            "edges": [
                [edges[i], text(edges[i + 1]), edges[i + 2]]
                for i in range(0, len(edges), 3)
            ],
        },
        lattice,
    )


def callee_capsule(result: ProcedureResult) -> Dict[str, object]:
    """The wave-cacheable object->strings step of encoding one callee.

    Sketch serialization (a BFS with sorted edges per node) is the expensive
    part of shipping a callee; ``working`` is fixed while a wave is in
    flight, so :class:`ProcessWaveRunner` computes this once per callee per
    wave and every chunk then only pays the cheap string-interning step in
    :func:`encode_callee`.
    """
    scheme = result.scheme
    return {
        "constraints": scheme.constraints,
        "quantified": sorted(scheme.quantified),
        "scheme_ins": [str(dtv) for dtv in scheme.formal_ins],
        "scheme_outs": [str(dtv) for dtv in scheme.formal_outs],
        "formal_ins": [
            (str(dtv), sketch.to_json())
            for dtv, sketch in result.formal_in_sketches.items()
        ],
        "formal_outs": [
            (str(dtv), sketch.to_json())
            for dtv, sketch in result.formal_out_sketches.items()
        ],
    }


def encode_callee(
    capsule: Mapping[str, object], intern: Callable[[str], int]
) -> Dict[str, object]:
    """One already-solved callee as table-ref arrays, from its capsule.

    Callsite instantiation reads the callee's *scheme*; REFINEPARAMETERS
    collection reads the *set* of formal in/out sketches.  Shapes are never
    shipped -- exactly the information discipline of the summary store.
    """
    return {
        "scheme": {
            "c": encode_constraints(capsule["constraints"], intern),
            "q": [intern(name) for name in capsule["quantified"]],
            "fi": [intern(text) for text in capsule["scheme_ins"]],
            "fo": [intern(text) for text in capsule["scheme_outs"]],
        },
        "formal_ins": [
            [intern(text), _encode_sketch_entry(data, intern)]
            for text, data in capsule["formal_ins"]
        ],
        "formal_outs": [
            [intern(text), _encode_sketch_entry(data, intern)]
            for text, data in capsule["formal_outs"]
        ],
    }


def decode_callee(
    name: str,
    entry: Mapping[str, object],
    reader: _TableReader,
    lattice: TypeLattice,
) -> ProcedureResult:
    """Inverse of :func:`encode_callee` (worker side)."""
    scheme_entry = entry["scheme"]
    scheme = TypeScheme(
        proc=name,
        constraints=decode_constraints(scheme_entry["c"], reader),
        quantified=frozenset(reader.text(sid) for sid in scheme_entry["q"]),
        formal_ins=tuple(reader.dtv(sid) for sid in scheme_entry["fi"]),
        formal_outs=tuple(reader.dtv(sid) for sid in scheme_entry["fo"]),
    )
    return ProcedureResult(
        name=name,
        scheme=scheme,
        formal_in_sketches={
            reader.dtv(sid): _decode_sketch_entry(data, reader, lattice)
            for sid, data in entry["formal_ins"]
        },
        formal_out_sketches={
            reader.dtv(sid): _decode_sketch_entry(data, reader, lattice)
            for sid, data in entry["formal_outs"]
        },
        shapes=None,
    )


def encode_input(
    proc: ProcedureTypingInput, intern: Callable[[str], int]
) -> Dict[str, object]:
    """One procedure's solver input as flat table-ref arrays."""
    callsites: List[int] = []
    for c in proc.callsites:
        callsites.append(intern(c.callee))
        callsites.append(intern(c.base))
    return {
        "c": encode_constraints(proc.constraints, intern),
        "fi": [intern(str(dtv)) for dtv in proc.formal_ins],
        "fo": [intern(str(dtv)) for dtv in proc.formal_outs],
        "cs": callsites,
    }


def decode_input(
    name: str, entry: Mapping[str, object], reader: _TableReader
) -> ProcedureTypingInput:
    """Inverse of :func:`encode_input` (worker side)."""
    callsites = entry["cs"]
    return ProcedureTypingInput(
        name=name,
        constraints=decode_constraints(entry["c"], reader),
        formal_ins=tuple(reader.dtv(sid) for sid in entry["fi"]),
        formal_outs=tuple(reader.dtv(sid) for sid in entry["fo"]),
        callsites=tuple(
            Callsite(reader.text(callsites[i]), reader.text(callsites[i + 1]))
            for i in range(0, len(callsites), 2)
        ),
    )


def encode_task(
    chunk: Sequence[Sequence[str]],
    inputs: Mapping[str, ProcedureTypingInput],
    working: Mapping[str, ProcedureResult],
    keys: Mapping[Tuple[str, ...], str],
    callee_cache: Optional[Dict[str, Dict[str, object]]] = None,
    trace: Optional[Mapping[str, object]] = None,
) -> str:
    """One worker task: a chunk of same-wave SCCs plus their callee context.

    The whole task shares one string-intern table; constraints, formals,
    callsites and callee schemes/sketches are flat int arrays referencing it.
    Callee results are deduplicated across the chunk (same-wave SCCs often
    share callees from earlier waves) and the summary-store key rides along so
    the worker can probe/publish the shared disk tier itself.  ``callee_cache``
    memoizes the object->strings :func:`callee_capsule` step across the chunks
    of one wave -- ``working`` is fixed while a wave is in flight, and a
    helper shared by every SCC of a wide wave would otherwise re-serialize its
    sketches once per chunk.  ``trace`` (a :meth:`Tracer.current_context`
    dict) asks the worker to record spans for this chunk, parented under the
    given span id; omitted when tracing is off so the payload carries no dead
    weight.
    """
    if callee_cache is None:
        callee_cache = {}
    table = StringTable()
    intern = table.intern
    sccs: List[Dict[str, object]] = []
    callees: Dict[str, Dict[str, object]] = {}
    for scc in chunk:
        scc_set = set(scc)
        scc_inputs: Dict[str, Dict[str, object]] = {}
        for name in scc:
            proc = inputs[name]
            scc_inputs[name] = encode_input(proc, intern)
            for callsite in proc.callsites:
                callee = callsite.callee
                if callee in scc_set or callee in callees or callee not in working:
                    continue
                capsule = callee_cache.get(callee)
                if capsule is None:
                    capsule = callee_capsule(working[callee])
                    callee_cache[callee] = capsule
                callees[callee] = encode_callee(capsule, intern)
        sccs.append(
            {
                "scc": list(scc),
                "key": keys.get(tuple(scc)),
                "inputs": scc_inputs,
            }
        )
    message: Dict[str, object] = {
        "format": PROCPOOL_FORMAT,
        "strings": table.to_list(),
        "sccs": sccs,
        "callees": callees,
    }
    if trace is not None:
        message["trace"] = dict(trace)
    return json.dumps(message, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# The worker (runs in the child processes)
# ---------------------------------------------------------------------------


class _WorkerState:
    """Everything one worker builds once and reuses for every task."""

    def __init__(self, env: Mapping[str, object]) -> None:
        from ..typegen.externs import ExternSignature, extern_schemes

        self.lattice = TypeLattice.from_json(env["lattice"])
        self.extern_table = {
            name: ExternSignature(
                name=name,
                stack_params=sig["stack_params"],
                has_return=sig["has_return"],
                variadic=sig["variadic"],
                constraints=tuple(sig["constraints"]),
                quantified=tuple(sig["quantified"]),
            )
            for name, sig in env["externs"].items()
        }
        config = SolverConfig(
            precise_bounds=env["solver"]["precise_bounds"],
            max_scheme_depth=env["solver"]["max_scheme_depth"],
            refine_parameters=env["solver"]["refine_parameters"],
            polymorphic=env["solver"]["polymorphic"],
        )
        self.solver = Solver(self.lattice, extern_schemes(self.extern_table), config)
        self.config = config
        self.refine = config.refine_parameters
        cache_dir = env.get("cache_dir")
        # Always keep a store: the disk tier (when configured) is shared with
        # every other process, and the small memory tier persists across this
        # worker's tasks -- corpus-mode chunks of cluster binaries reuse each
        # other's shared-library SCCs here without any parent round-trip.
        self.store: Optional[SummaryStore] = SummaryStore(
            capacity=256, cache_dir=cache_dir
        )


_STATE: Optional[_WorkerState] = None


def _init_worker(env_json: str) -> None:
    """Process-pool initializer: build the per-worker solver environment."""
    global _STATE
    env = json.loads(env_json)
    if env.get("format") != PROCPOOL_FORMAT:
        raise RuntimeError(
            f"procpool environment format {env.get('format')!r} != {PROCPOOL_FORMAT!r}"
        )
    _STATE = _WorkerState(env)


def _check_fault_injection(scc: Sequence[str]) -> None:
    """Test-only hooks: hard-crash or soft-fail when solving a marked SCC."""
    crash = os.environ.get(CRASH_ENV)
    if crash and crash in scc:
        os._exit(13)
    fail = os.environ.get(FAIL_ENV)
    if fail and fail in scc:
        raise RuntimeError(f"injected worker failure for {fail!r}")


def _worker_solve_chunk(task_json: str) -> str:
    """Solve one chunk of SCCs; returns the result message as JSON text.

    Runs entirely inside a worker process.  Per SCC: probe the shared disk
    tier by summary key (another process may have solved it already), else
    decode the inputs, solve, collect REFINEPARAMETERS contributions, publish
    to the disk tier, and ship the serialized summary back.
    """
    state = _STATE
    if state is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker used before initialization")
    codec_start = time.perf_counter()
    task = json.loads(task_json)
    if task.get("format") != PROCPOOL_FORMAT:
        raise RuntimeError(
            f"procpool task format {task.get('format')!r} != {PROCPOOL_FORMAT!r}"
        )
    if task.get("kind") == "programs":
        return _worker_analyze_programs(state, task)

    reader = _TableReader(task["strings"])
    callees: Dict[str, ProcedureResult] = {
        name: decode_callee(name, entry, reader, state.lattice)
        for name, entry in task["callees"].items()
    }
    codec_seconds = time.perf_counter() - codec_start

    # When the parent sent a trace context, record this chunk's spans on a
    # local tracer (same trace id, parented under the parent's wave span) and
    # ship them back for Tracer.adopt to stitch.  Installed as the process
    # tracer for the chunk so the solver's own stage spans nest underneath.
    trace_ctx = task.get("trace")
    tracer = Tracer(trace_id=trace_ctx["trace_id"]) if trace_ctx else None

    def solve_chunk() -> List[Dict[str, object]]:
        nonlocal codec_seconds
        results: List[Dict[str, object]] = []
        active = get_tracer()
        for item in task["sccs"]:
            scc: List[str] = item["scc"]
            key: Optional[str] = item.get("key")
            _check_fault_injection(scc)
            start = time.perf_counter()

            if key and state.store is not None:
                payload = state.store.get_payload(key)
                if payload is not None:
                    results.append(
                        {
                            "scc": scc,
                            "summary": payload,
                            "stats": SolveStats().to_json(),
                            "seconds": time.perf_counter() - start,
                            "from_disk": True,
                        }
                    )
                    continue

            decode_start = time.perf_counter()
            scc_inputs = {
                name: decode_input(name, entry, reader)
                for name, entry in item["inputs"].items()
            }
            codec_seconds += time.perf_counter() - decode_start
            stats = SolveStats()
            with active.span("procpool.solve_scc", scc=",".join(scc)):
                scc_results = state.solver.solve_scc(
                    scc, scc_inputs, callees, stats=stats
                )
                if state.refine:
                    merged = ChainMap(scc_results, callees)
                    contributions = {
                        name: collect_caller_contributions(
                            scc_inputs[name], scc_results[name], merged
                        )
                        for name in scc
                    }
                else:
                    contributions = {}
                payload = serialize_summary(summarize_scc(scc, scc_results, contributions))
            if key and state.store is not None:
                state.store.admit_payload(key, payload, write_disk=True)
            results.append(
                {
                    "scc": scc,
                    "summary": payload,
                    "stats": stats.to_json(),
                    "seconds": time.perf_counter() - start,
                    "from_disk": False,
                }
            )
        return results

    if tracer is not None:
        with tracing(tracer), tracer.attach(trace_ctx):
            results = solve_chunk()
    else:
        results = solve_chunk()

    # codec_seconds covers this chunk's decode side (task parse, string-table
    # reads, callee/input reconstruction); the reply's own json.dumps cannot
    # time itself and is counted by the parent's receive path instead.
    reply: Dict[str, object] = {
        "pid": os.getpid(),
        "results": results,
        "codec_seconds": codec_seconds,
    }
    if tracer is not None:
        reply["spans"] = tracer.spans()
    return json.dumps(reply, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Corpus mode: whole programs per task (parent -> worker)
# ---------------------------------------------------------------------------
#
# Small-program corpora defeat wave-level parallelism -- a dozen-function
# program has waves of two or three SCCs, so every wave round-trip costs more
# IPC than it buys solving.  Corpus mode instead ships *whole programs* (as
# their canonical assembly text) and each worker runs the full front half of
# the service pipeline -- parse, constraint generation, bottom-up SCC solving
# -- returning the per-SCC summary payloads plus the typing inputs in the v2
# integer codec.  The parent admits the payloads into its store and replays
# ``analyze`` per program with the shipped inputs: every SCC hits the warm
# store, so the parent pays only the decode + display boundary while the
# heavy lifting ran in parallel.


def encode_corpus_task(programs: Sequence[Tuple[str, str]]) -> str:
    """One corpus-mode task: ``(name, canonical asm text)`` per program."""
    return json.dumps(
        {
            "format": PROCPOOL_FORMAT,
            "kind": "programs",
            "programs": [[name, text] for name, text in programs],
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _worker_analyze_programs(state: "_WorkerState", task: Mapping[str, object]) -> str:
    """Corpus-mode worker body: full per-program solve, summaries shipped back."""
    from ..ir.asmparser import parse_program
    from ..ir.callgraph import CallGraph
    from ..typegen.abstract_interp import generate_program_constraints

    env_fp = environment_fingerprint(state.lattice, state.extern_table, state.config)
    table = StringTable()
    entries: List[Dict[str, object]] = []
    for name, text in task["programs"]:
        start = time.perf_counter()
        program = parse_program(text)
        inputs = generate_program_constraints(program, state.extern_table)
        callgraph = CallGraph.from_typing_inputs(inputs)
        sccs = callgraph.sccs_bottom_up()
        keys = scc_summary_keys(
            sccs, callgraph.edges, program_fingerprints(program), env_fp
        )
        stats = SolveStats()
        working: Dict[str, ProcedureResult] = {}
        hits = 0
        summaries: List[List[object]] = []
        for scc in sccs:
            key = keys[tuple(scc)]
            payload = state.store.get_payload(key) if state.store is not None else None
            if payload is not None:
                hits += 1
                summary = deserialize_summary(payload, state.lattice)
                working.update(
                    (pname, procedure.to_result())
                    for pname, procedure in summary.procedures.items()
                )
            else:
                _check_fault_injection(scc)
                scc_results = state.solver.solve_scc(scc, inputs, working, stats=stats)
                if state.refine:
                    merged = ChainMap(scc_results, working)
                    contributions = {
                        pname: collect_caller_contributions(
                            inputs[pname], scc_results[pname], merged
                        )
                        for pname in scc
                    }
                else:
                    contributions = {}
                working.update(scc_results)
                payload = serialize_summary(summarize_scc(scc, scc_results, contributions))
                if state.store is not None:
                    state.store.admit_payload(key, payload, write_disk=True)
            summaries.append([key, payload])
        codec_start = time.perf_counter()
        encoded_inputs = {
            pname: encode_input(proc, table.intern) for pname, proc in inputs.items()
        }
        codec_seconds = time.perf_counter() - codec_start
        entries.append(
            {
                "name": name,
                "summaries": summaries,
                "inputs": encoded_inputs,
                "stats": stats.to_json(),
                "cache_hits": hits,
                "cache_misses": len(sccs) - hits,
                "codec_seconds": codec_seconds,
                "seconds": time.perf_counter() - start,
            }
        )
    reply = {
        "pid": os.getpid(),
        "kind": "programs",
        "strings": table.to_list(),
        "programs": entries,
    }
    return json.dumps(reply, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# The pool (parent side, long-lived)
# ---------------------------------------------------------------------------


def _start_method() -> str:
    return os.environ.get(START_METHOD_ENV, "spawn")


class ProcPool:
    """A lazily-(re)built process pool bound to one solver environment.

    The pool outlives individual analyses -- worker warm-reuse is the whole
    point -- and is keyed by its environment payload: the owning service
    tears it down and builds a fresh one if the lattice/externs/config/disk
    tier ever change.  A broken pool (crashed worker under the ``spawn``
    executor machinery) is discarded and rebuilt on next use; the chunks in
    flight at the time are requeued by the caller.
    """

    def __init__(self, env_json: str, max_workers: int, chunks_per_worker: int = 2) -> None:
        if max_workers < 1:
            raise ValueError("procpool needs at least one worker")
        self.env_json = env_json
        self.max_workers = max_workers
        #: chunks per worker and wave; >1 gives the pool slack to rebalance
        #: when SCC solve times are skewed within a wave.
        self.chunks_per_worker = max(1, chunks_per_worker)
        self._pool: Optional[ProcessPoolExecutor] = None
        # One lock for pool build/teardown and the counters: several server
        # request threads share one pool, and an unsynchronized lazy build
        # would leak a whole executor (workers included).
        self._lock = threading.Lock()
        #: cumulative per-worker (by pid) SolveStats across the pool's life.
        self.worker_stats: Dict[int, SolveStats] = {}
        self.chunks_dispatched = 0
        self.chunks_failed = 0
        self.pools_built = 0

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                import multiprocessing

                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(_start_method()),
                    initializer=_init_worker,
                    initargs=(self.env_json,),
                )
                self.pools_built += 1
            return self._pool

    def _discard_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down (workers exit); safe to call repeatedly."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch --------------------------------------------------------------

    def submit_chunks(self, payloads: Sequence[str]) -> List[Optional[Dict[str, object]]]:
        """Run task payloads on the pool; ``None`` marks a failed chunk.

        Failures are contained per chunk: a worker exception yields ``None``
        for that chunk only, a dead worker (BrokenProcessPool) yields ``None``
        for every not-yet-finished chunk and discards the pool so the next
        wave gets a fresh one.  The caller requeues ``None`` chunks in-process.
        """
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_worker_solve_chunk, payload) for payload in payloads]
        except (OSError, RuntimeError, BrokenProcessPool):
            self._discard_pool()
            self._count(failed=len(payloads))
            return [None] * len(payloads)
        self._count(dispatched=len(payloads))
        replies: List[Optional[Dict[str, object]]] = []
        broken = False
        for future in futures:
            if broken:
                future.cancel()
                replies.append(None)
                self._count(failed=1)
                continue
            try:
                replies.append(json.loads(future.result()))
            except BrokenProcessPool:
                broken = True
                replies.append(None)
                self._count(failed=1)
            except Exception:
                replies.append(None)
                self._count(failed=1)
        if broken:
            self._discard_pool()
        return replies

    def _count(self, dispatched: int = 0, failed: int = 0) -> None:
        with self._lock:
            self.chunks_dispatched += dispatched
            self.chunks_failed += failed
        registry = get_registry()
        if dispatched:
            registry.counter("procpool_chunks_dispatched_total").inc(dispatched)
        if failed:
            registry.counter("procpool_chunks_failed_total").inc(failed)

    def record_worker_stats(self, pid: int, stats: SolveStats) -> None:
        with self._lock:
            self.worker_stats.setdefault(pid, SolveStats()).merge(stats)

    def snapshot(self) -> Dict[str, object]:
        """Pool-level counters for the server's ``stats`` verb."""
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "start_method": _start_method(),
                "pools_built": self.pools_built,
                "chunks_dispatched": self.chunks_dispatched,
                "chunks_failed": self.chunks_failed,
                "workers": {
                    str(pid): stats.to_json()
                    for pid, stats in sorted(self.worker_stats.items())
                },
            }


# ---------------------------------------------------------------------------
# The per-run wave runner (parent side, one per solve_inputs call)
# ---------------------------------------------------------------------------


class ProcessWaveRunner:
    """Adapts one analysis run's context to the scheduler's ``remote`` slot.

    Carries the run's typing inputs, working results and summary keys; the
    scheduler hands it whole waves and a local fallback.  Results come back in
    the wave's listed SCC order regardless of worker completion order, and the
    decoded triple+payload matches the local ``solve`` shape exactly, so the
    publish path cannot tell the backends apart.
    """

    def __init__(
        self,
        pool: ProcPool,
        inputs: Mapping[str, ProcedureTypingInput],
        working: Mapping[str, ProcedureResult],
        keys: Mapping[Tuple[str, ...], str],
        lattice: TypeLattice,
    ) -> None:
        self.pool = pool
        self.inputs = inputs
        self.working = working
        self.keys = keys
        self.lattice = lattice
        #: per-run aggregates (the pool keeps the cross-run totals).
        self.worker_stats: Dict[int, SolveStats] = {}
        self.worker_failed = 0
        self.requeued_sccs: List[str] = []
        self.disk_reused = 0
        #: wall seconds spent in the task/result codec: parent-side encode and
        #: decode plus the worker-reported chunk decode time.
        self.codec_seconds = 0.0

    def _decode_entry(self, entry: Mapping[str, object]):
        summary = deserialize_summary(entry["summary"], self.lattice)
        scc_results = {
            name: procedure.to_result() for name, procedure in summary.procedures.items()
        }
        contributions = {
            name: list(procedure.contributions)
            for name, procedure in summary.procedures.items()
        }
        stats = SolveStats.from_json(entry["stats"])
        if entry.get("from_disk"):
            self.disk_reused += 1
        return scc_results, contributions, stats, entry["summary"]

    def solve_wave(
        self,
        wave: Sequence[Sequence[str]],
        fallback: Callable[[Sequence[str]], object],
    ) -> List[Tuple[Sequence[str], object, float]]:
        """Solve one wave on the pool; returns ``(scc, result, seconds)`` rows.

        Chunks are interleaved round-robin so consecutive (often
        similarly-sized) SCCs spread across workers.  Any chunk that fails --
        worker crash, injected fault, undecodable reply -- is requeued SCC by
        SCC on the in-process ``fallback`` and counted in ``worker_failed``.
        """
        chunk_count = max(
            1, min(len(wave), self.pool.max_workers * self.pool.chunks_per_worker)
        )
        chunks = [list(wave[index::chunk_count]) for index in range(chunk_count)]
        chunks = [chunk for chunk in chunks if chunk]
        # `working` is fixed while a wave is in flight, so shared callees are
        # encoded once and reused across the wave's chunk payloads.
        callee_cache: Dict[str, Dict[str, object]] = {}
        tracer = get_tracer()
        # The active span here is the scheduler's wave span; ship its context
        # so worker-side solve spans stitch in underneath it.
        trace_ctx = tracer.current_context() if tracer.enabled else None
        encode_start = time.perf_counter()
        payloads = [
            encode_task(
                chunk, self.inputs, self.working, self.keys, callee_cache, trace=trace_ctx
            )
            for chunk in chunks
        ]
        self.codec_seconds += time.perf_counter() - encode_start
        replies = self.pool.submit_chunks(payloads)
        registry = get_registry()

        solved: Dict[Tuple[str, ...], Tuple[object, float]] = {}
        requeue: List[Sequence[str]] = []
        for chunk, reply in zip(chunks, replies):
            if reply is None:
                requeue.extend(chunk)
                continue
            if reply.get("spans"):
                tracer.adopt(reply["spans"])
            self.codec_seconds += float(reply.get("codec_seconds", 0.0))
            busy = sum(
                float(entry.get("seconds", 0.0)) for entry in reply.get("results", ())
            )
            if busy:
                registry.counter("procpool_worker_busy_seconds_total").inc(busy)
            pid = int(reply.get("pid", 0))
            entries = {tuple(entry["scc"]): entry for entry in reply.get("results", ())}
            for scc in chunk:
                entry = entries.get(tuple(scc))
                if entry is None:
                    requeue.append(scc)
                    continue
                decode_start = time.perf_counter()
                try:
                    triple = self._decode_entry(entry)
                except Exception:
                    requeue.append(scc)
                    continue
                finally:
                    self.codec_seconds += time.perf_counter() - decode_start
                stats = triple[2]
                self.worker_stats.setdefault(pid, SolveStats()).merge(stats)
                self.pool.record_worker_stats(pid, stats)
                solved[tuple(scc)] = (triple, float(entry.get("seconds", 0.0)))

        if requeue:
            registry.counter("procpool_sccs_requeued_total").inc(len(requeue))
        for scc in requeue:
            self.worker_failed += 1
            self.requeued_sccs.append(",".join(scc))
            start = time.perf_counter()
            result = fallback(scc)
            solved[tuple(scc)] = (result, time.perf_counter() - start)

        return [(scc, *solved[tuple(scc)]) for scc in wave]
