"""The analysis service layer: caching, incremental and parallel drivers.

This package turns the one-shot pipeline into a service suited to corpus-scale
workloads, without changing a single inferred type:

``repro.service.store``
    Content-addressed :class:`SummaryStore` of per-SCC type summaries
    (in-memory LRU + optional on-disk JSON tier).
``repro.service.incremental``
    :class:`AnalysisService` -- the driver the pipeline routes through -- and
    :class:`IncrementalSession` for re-analysis after edits.
``repro.service.scheduler``
    :class:`WaveScheduler` -- dispatches independent SCCs of one topological
    wave of the call-graph condensation through a pluggable executor strategy
    (``"serial"`` | ``"threads"`` | ``"processes"`` | ``"auto"``).
``repro.service.procpool``
    :class:`ProcPool` -- the process-parallel solve backend: warm worker
    processes, a pickle-free JSON codec for per-SCC solver inputs/outputs,
    shared-disk-tier reuse, and in-process requeue on worker crash.
``repro.service.batch``
    :func:`analyze_corpus` -- many programs against one shared store.

See ``docs/operations.md`` for how to choose and tune an executor.
"""

from .batch import CorpusReport, ProgramReport, analyze_corpus
from .incremental import AnalysisService, IncrementalSession, ServiceConfig
from .procpool import ProcPool, ProcessWaveRunner
from .scheduler import ScheduleStats, WaveScheduler, choose_executor
from .store import (
    DiskStoreBackend,
    ProcedureSummary,
    SCCSummary,
    SocketStoreBackend,
    StoreBackend,
    StoreStats,
    SummaryStore,
    make_backend,
    procedure_fingerprint,
    program_fingerprints,
    scc_summary_keys,
)

__all__ = [
    "AnalysisService",
    "CorpusReport",
    "DiskStoreBackend",
    "IncrementalSession",
    "ProcPool",
    "ProcedureSummary",
    "ProcessWaveRunner",
    "ProgramReport",
    "SCCSummary",
    "ScheduleStats",
    "ServiceConfig",
    "SocketStoreBackend",
    "StoreBackend",
    "StoreStats",
    "SummaryStore",
    "WaveScheduler",
    "analyze_corpus",
    "choose_executor",
    "make_backend",
    "procedure_fingerprint",
    "program_fingerprints",
    "scc_summary_keys",
]
