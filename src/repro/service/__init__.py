"""The analysis service layer: caching, incremental and parallel drivers.

This package turns the one-shot pipeline into a service suited to corpus-scale
workloads, without changing a single inferred type:

``repro.service.store``
    Content-addressed :class:`SummaryStore` of per-SCC type summaries
    (in-memory LRU + optional on-disk JSON tier).
``repro.service.incremental``
    :class:`AnalysisService` -- the driver the pipeline routes through -- and
    :class:`IncrementalSession` for re-analysis after edits.
``repro.service.scheduler``
    :class:`WaveScheduler` -- solves independent SCCs of one topological wave
    of the call-graph condensation concurrently.
``repro.service.batch``
    :func:`analyze_corpus` -- many programs against one shared store.
"""

from .batch import CorpusReport, ProgramReport, analyze_corpus
from .incremental import AnalysisService, IncrementalSession, ServiceConfig
from .scheduler import ScheduleStats, WaveScheduler
from .store import (
    ProcedureSummary,
    SCCSummary,
    StoreStats,
    SummaryStore,
    procedure_fingerprint,
    program_fingerprints,
    scc_summary_keys,
)

__all__ = [
    "AnalysisService",
    "CorpusReport",
    "IncrementalSession",
    "ProcedureSummary",
    "ProgramReport",
    "SCCSummary",
    "ScheduleStats",
    "ServiceConfig",
    "StoreStats",
    "SummaryStore",
    "WaveScheduler",
    "analyze_corpus",
    "procedure_fingerprint",
    "program_fingerprints",
    "scc_summary_keys",
]
