"""The analysis service driver: cached, incremental, wave-parallel solving.

:class:`AnalysisService` is the orchestrator the public pipeline routes
through.  One ``analyze`` call runs the same algorithm as the plain solver --
constraint generation, bottom-up per-SCC solving, REFINEPARAMETERS -- but
drives :meth:`Solver.solve_scc <repro.core.solver.Solver.solve_scc>` piecewise
so that three things become possible:

* **summary reuse** -- every solved SCC is published to a content-addressed
  :class:`~repro.service.store.SummaryStore`; any SCC whose key (procedure IR
  + transitive callee keys + environment) is already present is loaded instead
  of solved, exactly the separate-compilation reuse of function summaries;
* **incremental re-analysis** -- editing a procedure changes its SCC's key and
  the keys of its transitive callers, so precisely that invalidation cone is
  re-solved (:class:`IncrementalSession` reports the cone explicitly, computed
  top-down via ``CallGraph.callers``);
* **wave parallelism** -- SCCs that share a topological level of the
  condensation DAG are independent and are dispatched together through the
  :class:`~repro.service.scheduler.WaveScheduler`.

Warm-or-cold, serial-or-parallel, the service produces results string-equal to
a plain :func:`repro.analyze_program` run: the final-results dict is rebuilt in
bottom-up SCC order (struct naming in the display layer is order-sensitive)
and refinement contributions are re-applied in the solver's exact caller order.
"""

from __future__ import annotations

import threading
import time
from collections import ChainMap
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.lattice import TypeLattice, default_lattice
from ..core.solver import (
    ProcedureResult,
    ProcedureTypingInput,
    RefinementContribution,
    SolveStats,
    Solver,
    SolverConfig,
    apply_refinement,
    collect_caller_contributions,
)
from ..ir.callgraph import CallGraph
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..ir.asmparser import parse_program
from ..ir.cfg import cfg_node_count
from ..ir.program import Program
from ..typegen.abstract_interp import generate_program_constraints
from ..typegen.externs import (
    ExternSignature,
    ensure_lattice_tags,
    extern_schemes,
    standard_externs,
)
from .procpool import ProcPool, ProcessWaveRunner, encode_environment
from .scheduler import WaveScheduler, choose_executor
from .store import (
    SCCSummary,
    SummaryStore,
    environment_fingerprint,
    program_fingerprints,
    scc_summary_keys,
    summarize_scc,
)


@dataclass
class ServiceConfig:
    """Tunable knobs of the analysis service layer."""

    #: configuration forwarded to the core solver.
    solver: SolverConfig = dc_field(default_factory=SolverConfig)
    #: probe and populate the summary store (set False for one-shot analyses
    #: where serialization overhead buys nothing).
    use_cache: bool = True
    #: capacity (entries) of the store's in-memory LRU tier.
    cache_capacity: int = 4096
    #: optional directory for the store's persistent on-disk JSON tier.
    cache_dir: Optional[str] = None
    #: optional ``host:port`` of a fleet shared-store daemon; selects the
    #: socket-served persistent tier instead of the disk one (wins over
    #: ``cache_dir`` -- see :func:`repro.service.store.make_backend`).
    store_addr: Optional[str] = None
    #: legacy spelling of ``executor="threads"``; ignored when ``executor`` is
    #: set explicitly.
    parallel: bool = False
    #: worker-pool size for parallel wave solving (default: min(8, cpus)).
    max_workers: Optional[int] = None
    #: wave executor strategy: ``"serial"`` | ``"threads"`` | ``"processes"``
    #: | ``"auto"`` (picked per workload by :func:`~repro.service.scheduler.
    #: choose_executor`).  ``None`` derives from the legacy ``parallel`` flag.
    executor: Optional[str] = None
    #: chunks per worker per wave for the process backend (>1 lets the pool
    #: rebalance skewed waves at the cost of more IPC messages).
    procpool_chunks_per_worker: int = 2


class AnalysisService:
    """Batched/cached/incremental analysis over one shared summary store."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        lattice: Optional[TypeLattice] = None,
        externs: Optional[Mapping[str, ExternSignature]] = None,
        store: Optional[SummaryStore] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.lattice = ensure_lattice_tags(lattice or default_lattice())
        self.extern_table: Dict[str, ExternSignature] = (
            dict(externs) if externs is not None else standard_externs()
        )
        self.extern_schemes = extern_schemes(self.extern_table)
        self._owns_store = store is None
        if store is not None:
            self.store: Optional[SummaryStore] = store
        elif self.config.use_cache:
            self.store = SummaryStore(
                capacity=self.config.cache_capacity,
                cache_dir=self.config.cache_dir,
                store_addr=self.config.store_addr,
            )
        else:
            self.store = None
        self.scheduler = WaveScheduler(
            parallel=self.config.parallel,
            max_workers=self.config.max_workers,
            executor=self.config.executor,
        )
        #: lazily-built process pool (``executor="processes"``/``"auto"``),
        #: keyed by its environment payload and kept warm across analyses.
        self._procpool = None
        # Serializes pool build/teardown: the server drives one service from
        # several request threads, and racing lazy inits would leak a pool
        # (spawned workers and all) that close() could never reach.
        self._procpool_lock = threading.Lock()

    # -- executor / process-pool lifecycle -------------------------------------

    def _ensure_procpool(self):
        """The warm process pool for this service's current environment.

        Rebuilt (old workers torn down) whenever the encoded environment --
        lattice, extern table, solver config, disk tier -- changes, so workers
        can never solve under a stale environment.  Thread-safe.
        """
        env = encode_environment(
            self.lattice,
            self.extern_table,
            self.config.solver,
            self.store.cache_dir if self.store is not None else None,
        )
        with self._procpool_lock:
            if self._procpool is not None and self._procpool.env_json != env:
                self._procpool.close()
                self._procpool = None
            if self._procpool is None:
                self._procpool = ProcPool(
                    env,
                    max_workers=self.scheduler.max_workers,
                    chunks_per_worker=self.config.procpool_chunks_per_worker,
                )
            return self._procpool

    def procpool_snapshot(self) -> Dict[str, object]:
        """Pool counters and the cumulative per-worker SolveStats merge.

        Empty until the first process-backed analysis builds the pool; this
        is the public surface the server's ``stats`` verb serves.
        """
        with self._procpool_lock:
            return self._procpool.snapshot() if self._procpool is not None else {}

    def close(self) -> None:
        """Release the process pool (if any); the service stays usable.

        Safe to call repeatedly; the pool is rebuilt lazily on the next
        process-backend analysis.  Long-lived owners (the type-query server,
        corpus drivers) call this on shutdown so worker processes never
        outlive their parent's useful life.
        """
        with self._procpool_lock:
            if self._procpool is not None:
                self._procpool.close()
                self._procpool = None
        # A store this service built (socket backends hold a connection) is
        # released too; an injected store belongs to its creator.
        if self._owns_store and self.store is not None:
            self.store.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API ------------------------------------------------------------

    def analyze(
        self,
        source: Union[str, "Program"],
        inputs: Optional[Mapping[str, ProcedureTypingInput]] = None,
    ):
        """Analyze one program; returns :class:`repro.pipeline.ProgramTypes`.

        ``inputs`` optionally supplies precomputed typing inputs (skipping
        constraint generation); the corpus fan-out path uses it with inputs a
        worker generated and shipped back, paired with a store pre-warmed by
        that worker's summaries, so this call reduces to decode + display.
        """
        from ..pipeline import ProgramTypes, _function_types
        from ..core.display import TypeDisplay

        tracer = get_tracer()
        with tracer.span("service.analyze") as root:
            with tracer.span("service.parse"):
                program = parse_program(source) if isinstance(source, str) else source
            root.set("procedures", len(program.procedures))

            start = time.perf_counter()
            if inputs is None:
                with tracer.span("service.constraint_gen"):
                    inputs = generate_program_constraints(program, self.extern_table)
            else:
                # Re-impose program order: supplied inputs may arrive in wire
                # order (JSON objects are shipped with sorted keys) and the
                # display layer's struct numbering follows SCC enumeration
                # order, which follows this dict's order.
                inputs = {
                    name: inputs[name] for name in program.procedures if name in inputs
                }
            constraint_time = time.perf_counter() - start

            solve_start = time.perf_counter()
            with tracer.span("service.solve"):
                results, stats = self.solve_inputs(program, inputs)
            solve_time = time.perf_counter() - solve_start

        display = TypeDisplay(self.lattice)
        functions = {
            name: _function_types(name, inputs[name], result, display)
            for name, result in results.items()
        }
        stats.update(
            {
                "constraint_generation_seconds": constraint_time,
                "solve_seconds": solve_time,
                "total_seconds": constraint_time + solve_time,
                "instructions": program.instruction_count,
                "cfg_nodes": sum(cfg_node_count(proc) for proc in program),
            }
        )
        return ProgramTypes(
            program=program, functions=functions, display=display, stats=stats
        )

    # -- the driver ------------------------------------------------------------

    def solve_inputs(
        self,
        program: Program,
        inputs: Mapping[str, ProcedureTypingInput],
    ) -> Tuple[Dict[str, ProcedureResult], Dict[str, object]]:
        """Solve all procedures, reusing cached SCC summaries where possible.

        Returns (results in bottom-up SCC order, service statistics).
        """
        callgraph = CallGraph.from_typing_inputs(inputs)
        sccs = callgraph.sccs_bottom_up()
        waves = callgraph.scc_waves()
        solver = Solver(self.lattice, self.extern_schemes, self.config.solver)

        # Probe the store for every SCC (keys are content-transitive, so a hit
        # is valid regardless of what happens to other SCCs this run).
        cached: Dict[Tuple[str, ...], SCCSummary] = {}
        keys: Dict[Tuple[str, ...], str] = {}
        if self.store is not None and self.config.use_cache:
            # Recomputed per call (a few cheap hashes) so that mutating the
            # solver config, lattice or extern table between calls can never
            # serve summaries keyed under the old environment.
            environment = environment_fingerprint(
                self.lattice, self.extern_table, self.config.solver
            )
            fingerprints = program_fingerprints(program)
            keys = scc_summary_keys(sccs, callgraph.edges, fingerprints, environment)
            for scc in sccs:
                summary = self.store.get(keys[tuple(scc)], self.lattice)
                if summary is not None:
                    cached[tuple(scc)] = summary

        working: Dict[str, ProcedureResult] = {}
        contributions_of: Dict[str, List[RefinementContribution]] = {}
        for scc_key, summary in cached.items():
            for name in scc_key:
                procedure = summary.procedures[name]
                working[name] = procedure.to_result()
                contributions_of[name] = list(procedure.contributions)

        refine = self.config.solver.refine_parameters
        stage_stats = SolveStats()

        def solve(scc: Sequence[str]):
            # A fresh per-SCC stats record: SCCs of one wave may solve on
            # threads concurrently, so they must not mutate a shared record.
            # The trailing None slot is the serialized-summary payload, which
            # only the process backend fills in (its results arrive as JSON).
            scc_stats = SolveStats()
            scc_results = solver.solve_scc(scc, inputs, working, stats=scc_stats)
            if not refine:
                return scc_results, {}, scc_stats, None
            # Same-SCC callees shadow, earlier waves fall through; no copy.
            merged = ChainMap(scc_results, working)
            contributions = {
                name: collect_caller_contributions(inputs[name], scc_results[name], merged)
                for name in scc
            }
            return scc_results, contributions, scc_stats, None

        def publish(wave_results):
            for scc, (scc_results, contributions, scc_stats, payload) in wave_results:
                stage_stats.merge(scc_stats)
                working.update(scc_results)
                for name in scc:
                    contributions_of[name] = list(contributions.get(name, ()))
                if self.store is not None and self.config.use_cache:
                    if payload is not None:
                        # Worker-solved: the worker already published this
                        # payload to the shared disk tier, so only the memory
                        # tier needs admitting here.
                        self.store.admit_payload(
                            keys[tuple(scc)], payload, write_disk=False
                        )
                    else:
                        self.store.put(
                            keys[tuple(scc)],
                            summarize_scc(scc, scc_results, contributions),
                        )

        missing_waves = [
            [scc for scc in wave if tuple(scc) not in cached] for wave in waves
        ]
        missing_waves = [wave for wave in missing_waves if wave]

        executor = self.scheduler.executor
        if executor == "auto":
            executor = choose_executor(missing_waves)
        runner = None
        if executor == "processes":
            runner = ProcessWaveRunner(
                self._ensure_procpool(), inputs, working, keys, self.lattice
            )
        _, schedule_stats = self.scheduler.run(
            missing_waves, solve, publish, remote=runner, executor=executor
        )
        if runner is not None:
            stage_stats.worker_failed += runner.worker_failed
            stage_stats.codec_seconds += runner.codec_seconds

        registry = get_registry()
        registry.record_stage_stats(stage_stats.to_json())
        if cached:
            registry.counter("service_scc_cache_hits_total").inc(len(cached))
        misses = len(sccs) - len(cached)
        if misses:
            registry.counter("service_scc_cache_misses_total").inc(misses)

        # Deterministic final ordering: the display layer names structs in
        # conversion order, so results must surface bottom-up like the plain
        # solver builds them.
        results: Dict[str, ProcedureResult] = {}
        for scc in sccs:
            for name in scc:
                results[name] = working[name]

        if refine:
            ordered_contributions: List[RefinementContribution] = []
            for name in inputs:  # the solver's caller order
                ordered_contributions.extend(contributions_of.get(name, ()))
            apply_refinement(results, ordered_contributions)

        solved = [name for scc in sccs if tuple(scc) not in cached for name in scc]
        reused = [name for scc in sccs if tuple(scc) in cached for name in scc]
        stats: Dict[str, object] = {
            "constraints": sum(len(proc.constraints) for proc in inputs.values()),
            "procedures": len(inputs),
            "scc_count": len(sccs),
            "sccs_solved": len(sccs) - len(cached),
            "sccs_cached": len(cached),
            "cache_hits": len(cached),
            "cache_misses": len(sccs) - len(cached),
            "solved_procedures": sorted(solved),
            "cached_procedures": sorted(reused),
            "dag_wave_widths": [len(wave) for wave in waves],
            # Per-stage core timings, aggregated over the SCCs actually solved
            # this run (cache hits contribute nothing: no core work ran).
            "stage_seconds": stage_stats.to_json(),
        }
        stats.update(schedule_stats.as_stats())
        if runner is not None:
            # Per-worker (by pid) SolveStats merge for this run -- the record
            # the server's ``stats`` verb serves alongside the aggregate.
            stats["worker_stats"] = {
                str(pid): worker_stats.to_json()
                for pid, worker_stats in sorted(runner.worker_stats.items())
            }
            stats["worker_disk_reused"] = runner.disk_reused
        if self.store is not None:
            stats["store"] = self.store.stats.snapshot()
        if keys:
            # The content-transitive store key of every SCC this run, keyed by
            # the "|"-joined member list.  Cross-run consumers (the family
            # oracle's store-reuse assertion) use these to prove that an SCC
            # whose summary was admitted earlier is never solved again.
            stats["scc_store_keys"] = {
                "|".join(scc): keys[tuple(scc)] for scc in sccs
            }
        return results, stats


class IncrementalSession:
    """Re-analyze successive versions of one program against a shared store.

    On every call after the first, the session hashes all procedures, diffs
    against the previous version and computes the invalidation cone -- the
    changed procedures' SCCs plus all transitive callers, found top-down via
    :meth:`CallGraph.callers <repro.ir.callgraph.CallGraph.callers>` -- which
    it reports in ``stats["invalidated_procedures"]``.  The content-addressed
    store then re-solves exactly that cone (``stats["solved_procedures"]``)
    while every clean SCC is served from cache.
    """

    def __init__(self, service: Optional[AnalysisService] = None) -> None:
        self.service = service or AnalysisService()
        if self.service.store is None:
            raise ValueError("IncrementalSession requires a service with a summary store")
        self._previous: Optional[Dict[str, str]] = None

    def analyze(self, source: Union[str, Program]):
        """Analyze the (possibly edited) program, annotating invalidation stats."""
        program = parse_program(source) if isinstance(source, str) else source
        fingerprints = program_fingerprints(program)
        invalidated: Optional[Set[str]] = None
        if self._previous is not None:
            changed = {
                name
                for name, fingerprint in fingerprints.items()
                if self._previous.get(name) != fingerprint
            }
            # A deleted procedure invalidates its former callers: their IR is
            # unchanged but their callee table (and thus constraints) is not.
            deleted = set(self._previous) - set(fingerprints)
            if deleted:
                for name, procedure in program.procedures.items():
                    if deleted & set(procedure.direct_callees()):
                        changed.add(name)
            with get_tracer().span("service.invalidate", changed=len(changed)) as span:
                callgraph = CallGraph.from_program(program)
                invalidated = callgraph.transitive_callers(changed)
                span.set("invalidated", len(invalidated))
        self._previous = dict(fingerprints)

        types = self.service.analyze(program)
        if invalidated is not None:
            types.stats["invalidated_procedures"] = sorted(invalidated)
        return types
