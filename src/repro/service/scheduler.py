"""SCC-wave scheduling: solve independent SCCs of one wave concurrently.

The call-graph condensation is levelled into waves (:meth:`CallGraph.scc_waves
<repro.ir.callgraph.CallGraph.scc_waves>`): every SCC only depends on strictly
earlier waves, so all SCCs within one wave are data-independent and can be
solved in parallel.  The scheduler walks waves bottom-up; within a wave it
dispatches per-SCC work through a pluggable **executor strategy** and always
merges results in the wave's listed SCC order, so the outcome is deterministic
regardless of completion order.

Executor strategies (``executor=``):

``"serial"``
    One SCC at a time on the calling thread.  Zero overhead; the right choice
    for small programs and the default.
``"threads"``
    A ``concurrent.futures`` thread pool.  Because the solver is pure Python,
    the GIL serializes its CPU work -- threads only overlap the short
    C-implemented set/dict stretches, so the wall-clock win is modest.  This
    strategy exists for explicit opt-in (it keeps single-process semantics:
    shared objects, no codec, easy debugging), not as the performance path.
    The old claim in this file that "threads are the right executor here" was
    measured and retired; see ``docs/operations.md``.
``"processes"``
    The :mod:`~repro.service.procpool` backend: chunks of a wave are shipped
    to warm worker processes as JSON (pickle-free), solved in true parallel,
    and the summaries shipped back.  A crashed worker requeues its SCCs on
    the in-process path (typed ``worker_failed`` stat).  This is the strategy
    that actually scales with cores; it needs a ``remote`` runner supplied by
    the analysis service.
``"auto"``
    Resolved per run by :func:`choose_executor` from the workload size: wide
    waves on a multi-core host pick ``"processes"``, everything else
    ``"serial"`` (threads are never auto-picked -- on a GIL runtime they cost
    complexity without buying wall-clock).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..obs.trace import get_tracer

T = TypeVar("T")

#: the executor strategies the scheduler accepts.
EXECUTORS = ("serial", "threads", "processes", "auto")

#: ``auto`` picks processes only when at least this many SCCs could overlap
#: (sum over waves of ``width - 1``): below it, chunk codec + IPC overhead on
#: millisecond-sized SCC solves eats the multi-core win.
AUTO_PROCESS_THRESHOLD = 16


def choose_executor(
    waves: Sequence[Sequence[Sequence[str]]],
    cpu_count: Optional[int] = None,
) -> str:
    """Resolve the ``"auto"`` strategy for one workload.

    The decision is workload-sized: ``processes`` when the condensation has
    enough same-wave SCCs to keep several cores busy (and the host has
    several), ``serial`` otherwise.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpus < 2:
        return "serial"
    overlap = sum(max(0, len(wave) - 1) for wave in waves)
    return "processes" if overlap >= AUTO_PROCESS_THRESHOLD else "serial"


@dataclass
class ScheduleStats:
    """What the scheduler observed while draining the waves."""

    wave_widths: List[int] = dc_field(default_factory=list)
    scc_seconds: List[Tuple[str, float]] = dc_field(default_factory=list)
    parallel: bool = False
    #: the executor strategy actually used (post-``auto`` resolution).
    executor: str = "serial"
    #: SCCs requeued in-process after their worker died or misbehaved.
    worker_failed: int = 0
    requeued_sccs: List[str] = dc_field(default_factory=list)

    @property
    def wave_count(self) -> int:
        return len(self.wave_widths)

    @property
    def max_wave_width(self) -> int:
        return max(self.wave_widths, default=0)

    def as_stats(self) -> Dict[str, object]:
        widths = self.wave_widths
        return {
            "wave_count": self.wave_count,
            "wave_widths": list(widths),
            "max_wave_width": self.max_wave_width,
            "mean_wave_width": (sum(widths) / len(widths)) if widths else 0.0,
            "scc_seconds": list(self.scc_seconds),
            "parallel": self.parallel,
            "executor": self.executor,
            "worker_failed": self.worker_failed,
            "requeued_sccs": list(self.requeued_sccs),
        }


class WaveScheduler:
    """Run a per-SCC function over levelled waves under an executor strategy.

    ``executor`` picks the strategy (see the module docstring); the legacy
    ``parallel=True`` spelling maps to ``"threads"``.  The ``"processes"``
    strategy additionally needs a ``remote`` runner passed to :meth:`run`
    (the service builds a :class:`~repro.service.procpool.ProcessWaveRunner`
    per analysis); without one it degrades to serial.
    """

    def __init__(
        self,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> None:
        if executor is None:
            executor = "threads" if parallel else "serial"
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r} (expected one of {EXECUTORS})"
            )
        self.executor = executor
        self.parallel = executor in ("threads", "processes")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def run(
        self,
        waves: Sequence[Sequence[Sequence[str]]],
        solve: Callable[[Sequence[str]], T],
        after_wave: Optional[Callable[[List[Tuple[Sequence[str], T]]], None]] = None,
        remote: Optional[object] = None,
        executor: Optional[str] = None,
    ) -> Tuple[List[Tuple[Sequence[str], T]], ScheduleStats]:
        """Drain the waves bottom-up.

        ``solve`` is called once per SCC (and is the in-process fallback for
        requeued SCCs under the process strategy); ``after_wave`` (if given)
        receives the wave's ``(scc, result)`` pairs -- in listed order -- once
        the whole wave has completed, which is where the driver publishes
        callee summaries before the next wave starts.  ``executor`` overrides
        the constructor strategy for this run (the service resolves ``"auto"``
        per workload); ``remote`` is the process-backend runner.  Returns all
        ``(scc, result)`` pairs in deterministic bottom-up order plus
        scheduling statistics.
        """
        mode = executor or self.executor
        if mode == "auto":
            mode = choose_executor(waves)
        if mode == "processes" and remote is None:
            mode = "serial"
        if mode == "threads" and self.max_workers <= 1:
            # A one-thread pool is serial execution; report it honestly.
            mode = "serial"
        use_threads = mode == "threads"
        stats = ScheduleStats(parallel=mode in ("threads", "processes"), executor=mode)
        all_results: List[Tuple[Sequence[str], T]] = []
        # One pool for the whole run: deep call graphs have many narrow waves
        # and must not pay thread spawn/join per wave.
        pool = ThreadPoolExecutor(max_workers=self.max_workers) if use_threads else None
        tracer = get_tracer()
        try:
            for index, wave in enumerate(waves):
                stats.wave_widths.append(len(wave))
                timed: List[Tuple[Sequence[str], T, float]]
                with tracer.span(
                    "scheduler.wave", index=index, width=len(wave), executor=mode
                ):
                    if mode == "processes" and len(wave) > 1:
                        # Single-SCC waves stay in-process: IPC without overlap
                        # is pure overhead.
                        timed = remote.solve_wave(wave, solve)
                    elif pool is not None and len(wave) > 1:
                        # Per-SCC work runs on pool threads; hand each one the
                        # wave span's context so its spans parent correctly.
                        context = tracer.current_context()
                        futures = [
                            pool.submit(_timed_call, solve, scc, tracer, context)
                            for scc in wave
                        ]
                        timed = [
                            (scc, *future.result()) for scc, future in zip(wave, futures)
                        ]
                    else:
                        timed = [(scc, *_timed_call(solve, scc)) for scc in wave]
                wave_results: List[Tuple[Sequence[str], T]] = []
                for scc, result, seconds in timed:
                    stats.scc_seconds.append((",".join(scc), seconds))
                    wave_results.append((scc, result))
                if after_wave is not None:
                    after_wave(wave_results)
                all_results.extend(wave_results)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if remote is not None and mode == "processes":
            stats.worker_failed = getattr(remote, "worker_failed", 0)
            stats.requeued_sccs = list(getattr(remote, "requeued_sccs", ()))
        return all_results, stats


def _timed_call(
    solve: Callable[[Sequence[str]], T],
    scc: Sequence[str],
    tracer=None,
    context=None,
) -> Tuple[T, float]:
    start = time.perf_counter()
    if tracer is not None and context is not None:
        # Running on a pool thread: adopt the dispatching wave span as parent.
        with tracer.attach(context):
            result = solve(scc)
    else:
        result = solve(scc)
    return result, time.perf_counter() - start
