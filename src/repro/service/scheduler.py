"""SCC-wave scheduling: solve independent SCCs of one wave concurrently.

The call-graph condensation is levelled into waves (:meth:`CallGraph.scc_waves
<repro.ir.callgraph.CallGraph.scc_waves>`): every SCC only depends on strictly
earlier waves, so all SCCs within one wave are data-independent and can be
solved in parallel.  The scheduler walks waves bottom-up; within a wave it
dispatches per-SCC work either serially or on a ``concurrent.futures`` thread
pool, and always merges results in the wave's listed SCC order so the outcome
is deterministic regardless of completion order.

Threads (not processes) are the right executor here: solver inputs and results
are plain Python objects that would be expensive to pickle, per-SCC work drops
into C-implemented set/dict operations often enough for some overlap, and the
serial fallback keeps single-core behaviour unchanged.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class ScheduleStats:
    """What the scheduler observed while draining the waves."""

    wave_widths: List[int] = dc_field(default_factory=list)
    scc_seconds: List[Tuple[str, float]] = dc_field(default_factory=list)
    parallel: bool = False

    @property
    def wave_count(self) -> int:
        return len(self.wave_widths)

    @property
    def max_wave_width(self) -> int:
        return max(self.wave_widths, default=0)

    def as_stats(self) -> Dict[str, object]:
        widths = self.wave_widths
        return {
            "wave_count": self.wave_count,
            "wave_widths": list(widths),
            "max_wave_width": self.max_wave_width,
            "mean_wave_width": (sum(widths) / len(widths)) if widths else 0.0,
            "scc_seconds": list(self.scc_seconds),
            "parallel": self.parallel,
        }


class WaveScheduler:
    """Run a per-SCC function over levelled waves, optionally in parallel."""

    def __init__(self, parallel: bool = False, max_workers: Optional[int] = None) -> None:
        self.parallel = parallel
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def run(
        self,
        waves: Sequence[Sequence[Sequence[str]]],
        solve: Callable[[Sequence[str]], T],
        after_wave: Optional[Callable[[List[Tuple[Sequence[str], T]]], None]] = None,
    ) -> Tuple[List[Tuple[Sequence[str], T]], ScheduleStats]:
        """Drain the waves bottom-up.

        ``solve`` is called once per SCC; SCCs of one wave may run
        concurrently, and ``after_wave`` (if given) receives the wave's
        ``(scc, result)`` pairs -- in listed order -- once the whole wave has
        completed, which is where the driver publishes callee summaries before
        the next wave starts.  Returns all ``(scc, result)`` pairs in
        deterministic bottom-up order plus scheduling statistics.
        """
        use_parallel = self.parallel and self.max_workers > 1
        stats = ScheduleStats(parallel=use_parallel)
        all_results: List[Tuple[Sequence[str], T]] = []
        # One pool for the whole run: deep call graphs have many narrow waves
        # and must not pay thread spawn/join per wave.
        pool = ThreadPoolExecutor(max_workers=self.max_workers) if use_parallel else None
        try:
            for wave in waves:
                stats.wave_widths.append(len(wave))
                timed: List[Tuple[Sequence[str], T, float]]
                if pool is not None and len(wave) > 1:
                    futures = [pool.submit(_timed_call, solve, scc) for scc in wave]
                    timed = [
                        (scc, *future.result()) for scc, future in zip(wave, futures)
                    ]
                else:
                    timed = [(scc, *_timed_call(solve, scc)) for scc in wave]
                wave_results: List[Tuple[Sequence[str], T]] = []
                for scc, result, seconds in timed:
                    stats.scc_seconds.append((",".join(scc), seconds))
                    wave_results.append((scc, result))
                if after_wave is not None:
                    after_wave(wave_results)
                all_results.extend(wave_results)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return all_results, stats


def _timed_call(solve: Callable[[Sequence[str]], T], scc: Sequence[str]) -> Tuple[T, float]:
    start = time.perf_counter()
    result = solve(scc)
    return result, time.perf_counter() - start
