"""Batched corpus analysis: many programs, one shared summary store.

The evaluation corpora of the paper are dominated by *clusters* of binaries
that statically link the same library code (coreutils, vpx, putty -- Figure
10).  Analyzing them against one shared :class:`~repro.service.store.
SummaryStore` means every shared procedure is solved once for the whole
corpus: its SCC key is identical across binaries, so every member after the
first gets the summary for free.  :func:`analyze_corpus` is the entry point
(also exported as ``repro.analyze_corpus``) and reports per-program statistics
-- cache hits, wave widths, wall time -- so the reuse is measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.lattice import TypeLattice
from ..ir.program import Program
from ..typegen.externs import ExternSignature
from .incremental import AnalysisService, ServiceConfig
from .store import SummaryStore

#: A corpus is a name -> program mapping or an iterable of (name, program)
#: pairs; programs may be assembly text or parsed IR.
CorpusInput = Union[
    Mapping[str, Union[str, Program]],
    Iterable[Tuple[str, Union[str, Program]]],
]


@dataclass
class ProgramReport:
    """Per-program outcome of a corpus run."""

    name: str
    types: object  # repro.pipeline.ProgramTypes
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    wave_widths: List[int] = dc_field(default_factory=list)

    @property
    def procedures(self) -> int:
        return int(self.types.stats.get("procedures", 0))

    @property
    def max_wave_width(self) -> int:
        return max(self.wave_widths, default=0)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class CorpusReport:
    """Everything a corpus run produced, plus aggregate statistics."""

    reports: Dict[str, ProgramReport]
    store_stats: Dict[str, float] = dc_field(default_factory=dict)

    def __getitem__(self, name: str) -> ProgramReport:
        return self.reports[name]

    def __iter__(self):
        return iter(self.reports.values())

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.reports.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(report.cache_hits for report in self.reports.values())

    @property
    def total_cache_misses(self) -> int:
        return sum(report.cache_misses for report in self.reports.values())

    @property
    def hit_rate(self) -> float:
        total = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / total if total else 0.0

    def summary(self) -> str:
        """An aligned text table of the per-program statistics."""
        header = f"{'program':<24} {'procs':>6} {'hits':>6} {'misses':>7} {'waves':>6} {'max_w':>6} {'seconds':>8}"
        lines = [header, "-" * len(header)]
        for report in self.reports.values():
            lines.append(
                f"{report.name:<24} {report.procedures:>6} {report.cache_hits:>6} "
                f"{report.cache_misses:>7} {len(report.wave_widths):>6} "
                f"{report.max_wave_width:>6} {report.seconds:>8.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'TOTAL':<24} {'':>6} {self.total_cache_hits:>6} {self.total_cache_misses:>7} "
            f"{'':>6} {'':>6} {self.total_seconds:>8.3f}   "
            f"(hit rate {self.hit_rate:.0%})"
        )
        return "\n".join(lines)


def analyze_corpus(
    programs: CorpusInput,
    service: Optional[AnalysisService] = None,
    config: Optional[ServiceConfig] = None,
    lattice: Optional[TypeLattice] = None,
    externs: Optional[Mapping[str, ExternSignature]] = None,
    store: Optional[SummaryStore] = None,
) -> CorpusReport:
    """Analyze a corpus of programs against one shared summary store.

    Pass an existing ``service`` (or ``store``) to warm-start from previous
    runs; otherwise a fresh service (with an in-memory store) is created, so
    reuse still happens *within* the corpus -- cluster members sharing
    statically-linked code hit the cache for every shared SCC.
    """
    owned = service is None
    if service is None:
        service = AnalysisService(
            config=config, lattice=lattice, externs=externs, store=store
        )
    items = programs.items() if isinstance(programs, Mapping) else programs

    reports: Dict[str, ProgramReport] = {}
    try:
        for name, source in items:
            start = time.perf_counter()
            types = service.analyze(source)
            elapsed = time.perf_counter() - start
            reports[name] = ProgramReport(
                name=name,
                types=types,
                seconds=elapsed,
                cache_hits=int(types.stats.get("cache_hits", 0)),
                cache_misses=int(types.stats.get("cache_misses", 0)),
                wave_widths=list(types.stats.get("dag_wave_widths", ())),
            )
    finally:
        if owned:
            # A corpus-local service keeps its process pool warm across the
            # members above, then releases the workers with the service.
            service.close()
    store_stats = service.store.stats.snapshot() if service.store is not None else {}
    return CorpusReport(reports=reports, store_stats=store_stats)
