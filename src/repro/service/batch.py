"""Batched corpus analysis: many programs, one shared summary store.

The evaluation corpora of the paper are dominated by *clusters* of binaries
that statically link the same library code (coreutils, vpx, putty -- Figure
10).  Analyzing them against one shared :class:`~repro.service.store.
SummaryStore` means every shared procedure is solved once for the whole
corpus: its SCC key is identical across binaries, so every member after the
first gets the summary for free.  :func:`analyze_corpus` is the entry point
(also exported as ``repro.analyze_corpus``) and reports per-program statistics
-- cache hits, wave widths, wall time -- so the reuse is measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.lattice import TypeLattice
from ..ir.program import Program
from ..typegen.externs import ExternSignature
from .incremental import AnalysisService, ServiceConfig
from .store import SummaryStore

#: A corpus is a name -> program mapping or an iterable of (name, program)
#: pairs; programs may be assembly text or parsed IR.
CorpusInput = Union[
    Mapping[str, Union[str, Program]],
    Iterable[Tuple[str, Union[str, Program]]],
]


@dataclass
class ProgramReport:
    """Per-program outcome of a corpus run."""

    name: str
    types: object  # repro.pipeline.ProgramTypes
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    wave_widths: List[int] = dc_field(default_factory=list)

    @property
    def procedures(self) -> int:
        return int(self.types.stats.get("procedures", 0))

    @property
    def max_wave_width(self) -> int:
        return max(self.wave_widths, default=0)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class CorpusReport:
    """Everything a corpus run produced, plus aggregate statistics."""

    reports: Dict[str, ProgramReport]
    store_stats: Dict[str, float] = dc_field(default_factory=dict)

    def __getitem__(self, name: str) -> ProgramReport:
        return self.reports[name]

    def __iter__(self):
        return iter(self.reports.values())

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.reports.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(report.cache_hits for report in self.reports.values())

    @property
    def total_cache_misses(self) -> int:
        return sum(report.cache_misses for report in self.reports.values())

    @property
    def hit_rate(self) -> float:
        total = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / total if total else 0.0

    def summary(self) -> str:
        """An aligned text table of the per-program statistics."""
        header = f"{'program':<24} {'procs':>6} {'hits':>6} {'misses':>7} {'waves':>6} {'max_w':>6} {'seconds':>8}"
        lines = [header, "-" * len(header)]
        for report in self.reports.values():
            lines.append(
                f"{report.name:<24} {report.procedures:>6} {report.cache_hits:>6} "
                f"{report.cache_misses:>7} {len(report.wave_widths):>6} "
                f"{report.max_wave_width:>6} {report.seconds:>8.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'TOTAL':<24} {'':>6} {self.total_cache_hits:>6} {self.total_cache_misses:>7} "
            f"{'':>6} {'':>6} {self.total_seconds:>8.3f}   "
            f"(hit rate {self.hit_rate:.0%})"
        )
        return "\n".join(lines)


def analyze_corpus(
    programs: CorpusInput,
    service: Optional[AnalysisService] = None,
    config: Optional[ServiceConfig] = None,
    lattice: Optional[TypeLattice] = None,
    externs: Optional[Mapping[str, ExternSignature]] = None,
    store: Optional[SummaryStore] = None,
) -> CorpusReport:
    """Analyze a corpus of programs against one shared summary store.

    Pass an existing ``service`` (or ``store``) to warm-start from previous
    runs; otherwise a fresh service (with an in-memory store) is created, so
    reuse still happens *within* the corpus -- cluster members sharing
    statically-linked code hit the cache for every shared SCC.
    """
    owned = service is None
    if service is None:
        service = AnalysisService(
            config=config, lattice=lattice, externs=externs, store=store
        )
    items = list(programs.items() if isinstance(programs, Mapping) else programs)

    reports: Dict[str, ProgramReport] = {}
    try:
        prewarmed = (
            _prewarm_corpus(service, items) if _use_corpus_fanout(service, items) else {}
        )
        for name, source in items:
            start = time.perf_counter()
            warmed = prewarmed.get(name)
            if warmed is not None:
                types = service.analyze(source, inputs=warmed.inputs)
                types.stats["cache_hits"] = warmed.cache_hits
                types.stats["cache_misses"] = warmed.cache_misses
                types.stats["stage_seconds"] = warmed.stage_stats
                elapsed = warmed.seconds + (time.perf_counter() - start)
            else:
                types = service.analyze(source)
                elapsed = time.perf_counter() - start
            reports[name] = ProgramReport(
                name=name,
                types=types,
                seconds=elapsed,
                cache_hits=int(types.stats.get("cache_hits", 0)),
                cache_misses=int(types.stats.get("cache_misses", 0)),
                wave_widths=list(types.stats.get("dag_wave_widths", ())),
            )
    finally:
        if owned:
            # A corpus-local service keeps its process pool warm across the
            # members above, then releases the workers with the service.
            service.close()
    store_stats = service.store.stats.snapshot() if service.store is not None else {}
    return CorpusReport(reports=reports, store_stats=store_stats)


@dataclass
class _PrewarmedProgram:
    """What corpus fan-out brings back for one program (see ``_prewarm_corpus``)."""

    inputs: Dict[str, object]  # name -> ProcedureTypingInput, worker-generated
    cache_hits: int
    cache_misses: int
    stage_stats: Dict[str, object]  # worker SolveStats.to_json()
    seconds: float  # worker wall-clock for this program


def _use_corpus_fanout(service: AnalysisService, items: List[Tuple[str, object]]) -> bool:
    """Corpus fan-out needs the process backend and a probe-able store.

    Wave-level parallelism is the wrong grain for corpora of small programs
    (a dozen-function program has two-SCC waves, so IPC dominates); program-
    level fan-out is the wrong grain for a single huge binary.  ``analyze``
    keeps the per-wave process backend; this path takes over exactly when a
    multi-program corpus runs under ``executor="processes"`` with the summary
    cache on (the parent rebuild relies on admitting worker summaries).
    """
    return (
        len(items) > 1
        and service.scheduler.executor == "processes"
        and service.config.use_cache
        and service.store is not None
    )


def _prewarm_corpus(
    service: AnalysisService, items: List[Tuple[str, object]]
) -> Dict[str, _PrewarmedProgram]:
    """Fan the corpus out over the process pool; returns per-program context.

    Workers run parse + constraint generation + bottom-up SCC solving for
    whole programs and ship back (a) every SCC's summary payload, admitted
    here into the service's store, and (b) the typing inputs in the integer
    codec.  Programs whose chunk failed (worker crash, undecodable reply) are
    simply absent from the result and fall back to the in-process path.
    """
    from .procpool import _TableReader, decode_input, encode_corpus_task

    pool = service._ensure_procpool()
    chunk_count = max(
        1, min(len(items), pool.max_workers * pool.chunks_per_worker)
    )
    chunks = [items[index::chunk_count] for index in range(chunk_count)]
    payloads = [
        encode_corpus_task(
            [
                (name, source if isinstance(source, str) else str(source))
                for name, source in chunk
            ]
        )
        for chunk in chunks
    ]
    replies = pool.submit_chunks(payloads)

    prewarmed: Dict[str, _PrewarmedProgram] = {}
    for reply in replies:
        if reply is None or reply.get("kind") != "programs":
            continue
        reader = _TableReader(reply["strings"])
        for entry in reply.get("programs", ()):
            try:
                inputs = {
                    pname: decode_input(pname, encoded, reader)
                    for pname, encoded in entry["inputs"].items()
                }
                for key, payload in entry["summaries"]:
                    service.store.admit_payload(key, payload, write_disk=False)
            except Exception:
                continue  # parent re-analyzes this program in process
            prewarmed[entry["name"]] = _PrewarmedProgram(
                inputs=inputs,
                cache_hits=int(entry.get("cache_hits", 0)),
                cache_misses=int(entry.get("cache_misses", 0)),
                stage_stats=dict(entry.get("stats", {})),
                seconds=float(entry.get("seconds", 0.0)),
            )
    return prewarmed
