"""The summary store: a content-addressed cache of per-SCC type summaries.

The unit of caching is one call-graph SCC, because that is the unit the solver
processes atomically (section 4.2): every procedure in an SCC is typed against
the *schemes* of the procedures below it, so an SCC's result is a pure function
of

* the IR of its member procedures,
* the summaries of every callee SCC (recursively -- the key is transitive),
* the lattice, the extern table and the solver configuration.

Hashing all of that into the cache key makes invalidation automatic: editing a
procedure changes its SCC's key and, transitively, the key of every caller SCC,
which is exactly the re-analysis cone of the incremental driver.  Two different
programs that share identically-compiled procedures (the statically-linked
clusters of Figure 10) produce identical keys and share summaries.

The store itself is two-tiered: a bounded in-memory LRU of raw JSON payloads
(already serialized, so cached entries are immune to the refinement pass
mutating live sketches) and an optional on-disk JSON tier for persistence
across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.lattice import TypeLattice
from ..core.schemes import TypeScheme
from ..core.sketches import Sketch
from ..core.solver import ProcedureResult, RefinementContribution, SolverConfig
from ..core.variables import DerivedTypeVariable, parse_dtv
from ..ir.program import Procedure, Program
from ..obs.metrics import get_registry
from ..typegen.externs import ExternSignature


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

#: bump when the summary payload layout changes so stale disk tiers never load.
STORE_FORMAT = "retypd-summary-v1"


def stable_hash(*parts: object) -> str:
    """SHA-256 of a tuple of JSON-able parts, stable across processes."""
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def procedure_fingerprint(procedure: Procedure) -> str:
    """Content hash of one procedure's IR (its canonical textual form)."""
    return hashlib.sha256(str(procedure).encode("utf-8")).hexdigest()


def program_fingerprints(program: Program) -> Dict[str, str]:
    """Content hash of every procedure in a program."""
    return {name: procedure_fingerprint(proc) for name, proc in program.procedures.items()}


def externs_fingerprint(externs: Mapping[str, ExternSignature]) -> str:
    """Stable hash of the extern table (signatures affect generated constraints)."""
    return stable_hash(
        sorted(
            (
                sig.name,
                sig.stack_params,
                sig.has_return,
                sig.variadic,
                list(sig.constraints),
                list(sig.quantified),
            )
            for sig in externs.values()
        )
    )


def solver_config_fingerprint(config: SolverConfig) -> str:
    return stable_hash(
        config.precise_bounds,
        config.max_scheme_depth,
        config.refine_parameters,
        config.polymorphic,
    )


def environment_fingerprint(
    lattice: TypeLattice,
    externs: Mapping[str, ExternSignature],
    config: SolverConfig,
) -> str:
    """Everything outside the procedures themselves that solving depends on.

    Deliberately program-independent: constraint generation reads only the
    extern *signature table* (never the program's declared extern set), so two
    programs sharing identically-compiled procedures share summaries even when
    their declaration headers differ.
    """
    return stable_hash(
        STORE_FORMAT,
        lattice.fingerprint(),
        externs_fingerprint(externs),
        solver_config_fingerprint(config),
    )


def scc_summary_keys(
    sccs_bottom_up: Sequence[Sequence[str]],
    edges: Mapping[str, Set[str]],
    fingerprints: Mapping[str, str],
    environment: str,
) -> Dict[Tuple[str, ...], str]:
    """Cache key per SCC, computed bottom-up over the condensation DAG.

    A key hashes the member fingerprints together with the *keys* of all
    callee SCCs, so it transitively covers every procedure the summary was
    derived from (separate-compilation discipline: identical content, under
    an identical environment, yields an identical summary).
    """
    keys: Dict[Tuple[str, ...], str] = {}
    key_of_member: Dict[str, str] = {}
    for scc in sccs_bottom_up:
        members = set(scc)
        callee_keys = sorted(
            {
                key_of_member[callee]
                for name in scc
                for callee in edges.get(name, ())
                if callee not in members and callee in key_of_member
            }
        )
        key = stable_hash(
            sorted(fingerprints[name] for name in scc), callee_keys, environment
        )
        keys[tuple(scc)] = key
        for name in scc:
            key_of_member[name] = key
    return keys


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


@dataclass
class ProcedureSummary:
    """The reusable result of typing one procedure: scheme + formal sketches.

    ``contributions`` carries the REFINEPARAMETERS inputs this procedure (as a
    *caller*) feeds to its callees' formals; refinement is re-applied as pure
    sketch arithmetic on every run, so cached and freshly-solved procedures
    compose into exactly the results a cold whole-program run would produce.
    """

    name: str
    scheme: TypeScheme
    formal_ins: Dict[DerivedTypeVariable, Sketch]
    formal_outs: Dict[DerivedTypeVariable, Sketch]
    contributions: List[RefinementContribution] = dc_field(default_factory=list)

    def to_result(self) -> ProcedureResult:
        """Materialize a solver result (shapes are not preserved by caching)."""
        return ProcedureResult(
            name=self.name,
            scheme=self.scheme,
            formal_in_sketches=dict(self.formal_ins),
            formal_out_sketches=dict(self.formal_outs),
            shapes=None,
        )


@dataclass
class SCCSummary:
    """Summaries for every member of one solved SCC."""

    members: Tuple[str, ...]
    procedures: Dict[str, ProcedureSummary]


def summarize_scc(
    scc: Sequence[str],
    results: Mapping[str, ProcedureResult],
    contributions: Mapping[str, List[RefinementContribution]],
) -> SCCSummary:
    """Package freshly-solved SCC results (pre-refinement) for the store."""
    out: Dict[str, ProcedureSummary] = {}
    for name in scc:
        result = results[name]
        out[name] = ProcedureSummary(
            name=name,
            scheme=result.scheme,
            formal_ins=dict(result.formal_in_sketches),
            formal_outs=dict(result.formal_out_sketches),
            contributions=list(contributions.get(name, ())),
        )
    return SCCSummary(members=tuple(scc), procedures=out)


def serialize_summary(summary: SCCSummary) -> Dict[str, object]:
    """SCC summary -> JSON-able payload (see the round-trip tests)."""
    return {
        "format": STORE_FORMAT,
        "members": list(summary.members),
        "procedures": {
            name: {
                "scheme": proc.scheme.to_json(),
                "formal_ins": [
                    [str(dtv), sketch.to_json()] for dtv, sketch in proc.formal_ins.items()
                ],
                "formal_outs": [
                    [str(dtv), sketch.to_json()] for dtv, sketch in proc.formal_outs.items()
                ],
                "contributions": [
                    {
                        "caller": c.caller,
                        "callee": c.callee,
                        "formal": str(c.formal),
                        "kind": c.kind,
                        "sketch": c.sketch.to_json(),
                    }
                    for c in proc.contributions
                ],
            }
            for name, proc in summary.procedures.items()
        },
    }


def deserialize_summary(payload: Mapping[str, object], lattice: TypeLattice) -> SCCSummary:
    """JSON payload -> SCC summary (inverse of :func:`serialize_summary`)."""
    procedures: Dict[str, ProcedureSummary] = {}
    for name, entry in payload["procedures"].items():
        procedures[name] = ProcedureSummary(
            name=name,
            scheme=TypeScheme.from_json(entry["scheme"]),
            formal_ins={
                parse_dtv(text): Sketch.from_json(data, lattice)
                for text, data in entry["formal_ins"]
            },
            formal_outs={
                parse_dtv(text): Sketch.from_json(data, lattice)
                for text, data in entry["formal_outs"]
            },
            contributions=[
                RefinementContribution(
                    caller=c["caller"],
                    callee=c["callee"],
                    formal=parse_dtv(c["formal"]),
                    kind=c["kind"],
                    sketch=Sketch.from_json(c["sketch"], lattice),
                )
                for c in entry["contributions"]
            ],
        )
    return SCCSummary(members=tuple(payload["members"]), procedures=procedures)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class StoreStats:
    """Hit/miss accounting for one store (cumulative across programs)."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "hit_rate": self.hit_rate,
        }


class SummaryStore:
    """Two-tier (LRU memory + optional JSON disk) summary cache.

    The store holds raw JSON payloads, not live objects: entries are serialized
    on :meth:`put` and deserialized on every :meth:`get`, which both keeps the
    memory tier compact and guarantees cached summaries cannot be corrupted by
    later in-place refinement of the sketches handed out.

    The disk tier is safe to share: writes land in a uniquely-named temp file
    and are published with an atomic ``os.replace``, so concurrent writers
    (threads of one process, or several processes pointed at one directory)
    can never expose a truncated entry, and a killed writer leaves only a
    stray ``*.tmp`` behind.  Entries that are nevertheless unreadable --
    hand-edited, disk-damaged, or written by an incompatible version -- are
    quarantined (renamed to ``*.corrupt``) rather than raised, and count as
    ordinary misses.
    """

    def __init__(self, capacity: int = 4096, cache_dir: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("summary store capacity must be at least 1")
        self.capacity = capacity
        self.cache_dir = cache_dir
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = StoreStats()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # -- raw payload tier ------------------------------------------------------

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move an unreadable entry aside so it is never re-parsed (or re-hit)."""
        with self._lock:
            self.stats.quarantined += 1
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            # Racing reader already moved it, or the directory is read-only;
            # either way the entry stays a miss.
            pass

    def _read_disk(self, key: str) -> Optional[Dict[str, object]]:
        path = self._disk_path(key)
        # Two attempts before quarantining: a corrupt first read can race a
        # concurrent writer atomically replacing the entry with a good copy,
        # and quarantining *that* would discard valid cache data.
        for attempt in (0, 1):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                return None
            except OSError:
                # Transient I/O pressure (EMFILE, EIO, EACCES): a miss, not
                # evidence of corruption -- leave the entry alone.
                return None
            except ValueError:
                continue  # unparseable JSON: retry once, then quarantine
            if isinstance(payload, dict) and payload.get("format") == STORE_FORMAT:
                return payload
            # Parseable but alien (wrong tool or store format): also corrupt
            # for our purposes, subject to the same retry.
        self._quarantine(path)
        return None

    def _get_payload(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
        if self.cache_dir:
            payload = self._read_disk(key)
            if payload is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                self._admit(key, payload, write_disk=False)
                return payload
        return None

    def _admit(self, key: str, payload: Dict[str, object], write_disk: bool) -> None:
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
        if write_disk and self.cache_dir:
            self._write_disk(key, payload)

    def _write_disk(self, key: str, payload: Dict[str, object]) -> None:
        """Publish one entry atomically; cache-write failures never propagate."""
        path = self._disk_path(key)
        tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- public API ------------------------------------------------------------

    def get(self, key: str, lattice: TypeLattice) -> Optional[SCCSummary]:
        """Look a summary up by content key, recording a hit or a miss."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return deserialize_summary(payload, lattice)

    def get_payload(self, key: str) -> Optional[Dict[str, object]]:
        """Look up the *raw JSON payload* of a summary, recording hit/miss.

        This is the transfer format of the process-pool backend: a worker that
        finds the key in the shared disk tier returns the payload verbatim, so
        a hit never pays deserialize-then-reserialize on its way to the parent.
        """
        payload = self._get_payload(key)
        with self._lock:
            if payload is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        registry = get_registry()
        if payload is None:
            registry.counter("store_misses_total").inc()
        else:
            registry.counter("store_hits_total").inc()
        return payload

    def put(self, key: str, summary: SCCSummary) -> None:
        """Serialize and admit a freshly-solved SCC summary."""
        self.admit_payload(key, serialize_summary(summary), write_disk=True)

    def admit_payload(
        self, key: str, payload: Dict[str, object], write_disk: bool = True
    ) -> None:
        """Admit an already-serialized summary payload.

        ``write_disk=False`` skips the disk tier: the process-pool parent uses
        it for summaries its workers solved, because the worker already
        published the entry to the shared directory and a second atomic write
        would only burn I/O.
        """
        with self._lock:
            self.stats.puts += 1
        self._admit(key, payload, write_disk=write_disk)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return bool(self.cache_dir) and os.path.exists(self._disk_path(key))

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (the disk tier, if any, is left untouched)."""
        with self._lock:
            self._memory.clear()
