"""The summary store: a content-addressed cache of per-SCC type summaries.

The unit of caching is one call-graph SCC, because that is the unit the solver
processes atomically (section 4.2): every procedure in an SCC is typed against
the *schemes* of the procedures below it, so an SCC's result is a pure function
of

* the IR of its member procedures,
* the summaries of every callee SCC (recursively -- the key is transitive),
* the lattice, the extern table and the solver configuration.

Hashing all of that into the cache key makes invalidation automatic: editing a
procedure changes its SCC's key and, transitively, the key of every caller SCC,
which is exactly the re-analysis cone of the incremental driver.  Two different
programs that share identically-compiled procedures (the statically-linked
clusters of Figure 10) produce identical keys and share summaries.

The store itself is two-tiered: a bounded in-memory LRU of raw JSON payloads
(already serialized, so cached entries are immune to the refinement pass
mutating live sketches) and an optional on-disk JSON tier for persistence
across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket as socket_module
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.lattice import TypeLattice
from ..core.schemes import TypeScheme
from ..core.sketches import Sketch
from ..core.solver import ProcedureResult, RefinementContribution, SolverConfig
from ..core.variables import DerivedTypeVariable, parse_dtv
from ..ir.program import Procedure, Program
from ..obs.metrics import get_registry
from ..typegen.externs import ExternSignature


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

#: bump when the summary payload layout changes so stale disk tiers never load.
STORE_FORMAT = "retypd-summary-v1"


def stable_hash(*parts: object) -> str:
    """SHA-256 of a tuple of JSON-able parts, stable across processes."""
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def procedure_fingerprint(procedure: Procedure) -> str:
    """Content hash of one procedure's IR (its canonical textual form)."""
    return hashlib.sha256(str(procedure).encode("utf-8")).hexdigest()


def program_fingerprints(program: Program) -> Dict[str, str]:
    """Content hash of every procedure in a program."""
    return {name: procedure_fingerprint(proc) for name, proc in program.procedures.items()}


def externs_fingerprint(externs: Mapping[str, ExternSignature]) -> str:
    """Stable hash of the extern table (signatures affect generated constraints)."""
    return stable_hash(
        sorted(
            (
                sig.name,
                sig.stack_params,
                sig.has_return,
                sig.variadic,
                list(sig.constraints),
                list(sig.quantified),
            )
            for sig in externs.values()
        )
    )


def solver_config_fingerprint(config: SolverConfig) -> str:
    return stable_hash(
        config.precise_bounds,
        config.max_scheme_depth,
        config.refine_parameters,
        config.polymorphic,
    )


def environment_fingerprint(
    lattice: TypeLattice,
    externs: Mapping[str, ExternSignature],
    config: SolverConfig,
) -> str:
    """Everything outside the procedures themselves that solving depends on.

    Deliberately program-independent: constraint generation reads only the
    extern *signature table* (never the program's declared extern set), so two
    programs sharing identically-compiled procedures share summaries even when
    their declaration headers differ.
    """
    return stable_hash(
        STORE_FORMAT,
        lattice.fingerprint(),
        externs_fingerprint(externs),
        solver_config_fingerprint(config),
    )


def scc_summary_keys(
    sccs_bottom_up: Sequence[Sequence[str]],
    edges: Mapping[str, Set[str]],
    fingerprints: Mapping[str, str],
    environment: str,
) -> Dict[Tuple[str, ...], str]:
    """Cache key per SCC, computed bottom-up over the condensation DAG.

    A key hashes the member fingerprints together with the *keys* of all
    callee SCCs, so it transitively covers every procedure the summary was
    derived from (separate-compilation discipline: identical content, under
    an identical environment, yields an identical summary).
    """
    keys: Dict[Tuple[str, ...], str] = {}
    key_of_member: Dict[str, str] = {}
    for scc in sccs_bottom_up:
        members = set(scc)
        callee_keys = sorted(
            {
                key_of_member[callee]
                for name in scc
                for callee in edges.get(name, ())
                if callee not in members and callee in key_of_member
            }
        )
        key = stable_hash(
            sorted(fingerprints[name] for name in scc), callee_keys, environment
        )
        keys[tuple(scc)] = key
        for name in scc:
            key_of_member[name] = key
    return keys


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


@dataclass
class ProcedureSummary:
    """The reusable result of typing one procedure: scheme + formal sketches.

    ``contributions`` carries the REFINEPARAMETERS inputs this procedure (as a
    *caller*) feeds to its callees' formals; refinement is re-applied as pure
    sketch arithmetic on every run, so cached and freshly-solved procedures
    compose into exactly the results a cold whole-program run would produce.
    """

    name: str
    scheme: TypeScheme
    formal_ins: Dict[DerivedTypeVariable, Sketch]
    formal_outs: Dict[DerivedTypeVariable, Sketch]
    contributions: List[RefinementContribution] = dc_field(default_factory=list)

    def to_result(self) -> ProcedureResult:
        """Materialize a solver result (shapes are not preserved by caching)."""
        return ProcedureResult(
            name=self.name,
            scheme=self.scheme,
            formal_in_sketches=dict(self.formal_ins),
            formal_out_sketches=dict(self.formal_outs),
            shapes=None,
        )


@dataclass
class SCCSummary:
    """Summaries for every member of one solved SCC."""

    members: Tuple[str, ...]
    procedures: Dict[str, ProcedureSummary]


def summarize_scc(
    scc: Sequence[str],
    results: Mapping[str, ProcedureResult],
    contributions: Mapping[str, List[RefinementContribution]],
) -> SCCSummary:
    """Package freshly-solved SCC results (pre-refinement) for the store."""
    out: Dict[str, ProcedureSummary] = {}
    for name in scc:
        result = results[name]
        out[name] = ProcedureSummary(
            name=name,
            scheme=result.scheme,
            formal_ins=dict(result.formal_in_sketches),
            formal_outs=dict(result.formal_out_sketches),
            contributions=list(contributions.get(name, ())),
        )
    return SCCSummary(members=tuple(scc), procedures=out)


def serialize_summary(summary: SCCSummary) -> Dict[str, object]:
    """SCC summary -> JSON-able payload (see the round-trip tests)."""
    return {
        "format": STORE_FORMAT,
        "members": list(summary.members),
        "procedures": {
            name: {
                "scheme": proc.scheme.to_json(),
                "formal_ins": [
                    [str(dtv), sketch.to_json()] for dtv, sketch in proc.formal_ins.items()
                ],
                "formal_outs": [
                    [str(dtv), sketch.to_json()] for dtv, sketch in proc.formal_outs.items()
                ],
                "contributions": [
                    {
                        "caller": c.caller,
                        "callee": c.callee,
                        "formal": str(c.formal),
                        "kind": c.kind,
                        "sketch": c.sketch.to_json(),
                    }
                    for c in proc.contributions
                ],
            }
            for name, proc in summary.procedures.items()
        },
    }


def deserialize_summary(payload: Mapping[str, object], lattice: TypeLattice) -> SCCSummary:
    """JSON payload -> SCC summary (inverse of :func:`serialize_summary`)."""
    procedures: Dict[str, ProcedureSummary] = {}
    for name, entry in payload["procedures"].items():
        procedures[name] = ProcedureSummary(
            name=name,
            scheme=TypeScheme.from_json(entry["scheme"]),
            formal_ins={
                parse_dtv(text): Sketch.from_json(data, lattice)
                for text, data in entry["formal_ins"]
            },
            formal_outs={
                parse_dtv(text): Sketch.from_json(data, lattice)
                for text, data in entry["formal_outs"]
            },
            contributions=[
                RefinementContribution(
                    caller=c["caller"],
                    callee=c["callee"],
                    formal=parse_dtv(c["formal"]),
                    kind=c["kind"],
                    sketch=Sketch.from_json(c["sketch"], lattice),
                )
                for c in entry["contributions"]
            ],
        )
    return SCCSummary(members=tuple(payload["members"]), procedures=procedures)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


@dataclass
class StoreStats:
    """Hit/miss accounting for one store (cumulative across programs)."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    remote_errors: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "remote_errors": self.remote_errors,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "hit_rate": self.hit_rate,
        }


# ---------------------------------------------------------------------------
# Pluggable persistent tiers
# ---------------------------------------------------------------------------


class StoreBackend:
    """One persistent tier of a :class:`SummaryStore`.

    A backend moves raw JSON payloads (already format-stamped, see
    ``STORE_FORMAT``) in and out of somewhere durable or shared: a local
    directory (:class:`DiskStoreBackend`), a fleet-shared store daemon over a
    socket (:class:`SocketStoreBackend`), or nothing at all -- the in-memory
    LRU tier lives in the facade itself, and a store without a backend is
    memory-only.

    The contract every implementation honours:

    * ``get``/``put``/``contains`` never raise on backend trouble -- a broken
      tier degrades to misses (counted on ``stats``), it does not fail the
      analysis that was merely trying to reuse work;
    * payloads are opaque dicts; backends neither parse nor mutate them;
    * implementations are thread-safe (the server drives one store from many
      executor threads).

    ``stats`` is the :class:`StoreStats` the backend reports internal events
    on (quarantines, remote errors); the owning :class:`SummaryStore` rebinds
    it to its own record so one snapshot covers both layers.
    """

    #: discriminator surfaced by ``SummaryStore.backend_kind`` and snapshots.
    kind = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def put(self, key: str, payload: Dict[str, object]) -> None:
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; further calls degrade to misses."""

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind}


class DiskStoreBackend(StoreBackend):
    """The on-disk JSON tier: two-level fan-out, atomic publishes, quarantine.

    Writes land in a uniquely-named temp file and are published with an atomic
    ``os.replace``, so concurrent writers (threads of one process, or several
    processes pointed at one directory) can never expose a truncated entry,
    and a killed writer leaves only a stray ``*.tmp`` behind.  Entries that
    are nevertheless unreadable -- hand-edited, disk-damaged, or written by an
    incompatible version -- are quarantined (renamed to ``*.corrupt``) rather
    than raised, and count as ordinary misses.
    """

    kind = "disk"

    def __init__(self, cache_dir: str) -> None:
        super().__init__()
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        os.makedirs(cache_dir, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move an unreadable entry aside so it is never re-parsed (or re-hit)."""
        with self._lock:
            self.stats.quarantined += 1
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            # Racing reader already moved it, or the directory is read-only;
            # either way the entry stays a miss.
            pass

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.path(key)
        # Two attempts before quarantining: a corrupt first read can race a
        # concurrent writer atomically replacing the entry with a good copy,
        # and quarantining *that* would discard valid cache data.
        for attempt in (0, 1):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                return None
            except OSError:
                # Transient I/O pressure (EMFILE, EIO, EACCES): a miss, not
                # evidence of corruption -- leave the entry alone.
                return None
            except ValueError:
                continue  # unparseable JSON: retry once, then quarantine
            if isinstance(payload, dict) and payload.get("format") == STORE_FORMAT:
                return payload
            # Parseable but alien (wrong tool or store format): also corrupt
            # for our purposes, subject to the same retry.
        self._quarantine(path)
        return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Publish one entry atomically; cache-write failures never propagate."""
        path = self.path(key)
        tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def contains(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "cache_dir": self.cache_dir}


#: wire name the store daemon announces; clients refuse to pool with others.
STORE_SERVER_NAME = "repro-summary-store"


class SocketStoreBackend(StoreBackend):
    """Client tier for the fleet's shared store daemon.

    Speaks the newline-JSON store protocol of
    :class:`repro.fleet.storeserver.SummaryStoreServer` over one persistent
    TCP connection (a lock serializes requests; replies arrive in order).
    Every failure mode -- daemon down, connection reset, garbage reply --
    degrades to a miss and bumps ``stats.remote_errors``; a reconnect is
    attempted once per operation, so a restarted daemon is picked back up
    without any intervention.
    """

    kind = "socket"

    def __init__(
        self,
        address: str,
        timeout: float = 10.0,
        connect_retries: int = 0,
        connect_delay: float = 0.2,
    ) -> None:
        super().__init__()
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"store address must look like 'host:port', got {address!r}"
            )
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._file = None
        self._sock: Optional[socket_module.socket] = None
        self._closed = False
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            try:
                self._connect()
                break
            except OSError as exc:
                last_error = exc
                if attempt == connect_retries:
                    raise
                time.sleep(connect_delay)
        assert self._file is not None, last_error

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> None:
        sock = socket_module.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        file = sock.makefile("rwb")
        # Handshake: refuse to pool with a daemon speaking another format --
        # a version-skewed store must read as empty, never as corrupt.
        file.write(_store_line({"op": "ping"}))
        file.flush()
        reply = json.loads(file.readline().decode("utf-8"))
        if (
            reply.get("server") != STORE_SERVER_NAME
            or reply.get("format") != STORE_FORMAT
        ):
            file.close()
            sock.close()
            raise OSError(
                f"{self.host}:{self.port} is not a {STORE_FORMAT} store daemon: {reply!r}"
            )
        self._sock, self._file = sock, file

    def _reset(self) -> None:
        for closer in (self._file, self._sock):
            try:
                if closer is not None:
                    closer.close()
            except OSError:
                pass
        self._file = self._sock = None

    def _roundtrip(self, message: Dict[str, object]) -> Optional[Dict[str, object]]:
        """One request/reply; retries once on a fresh connection, never raises."""
        if self._closed:
            return None
        with self._lock:
            for attempt in (0, 1):
                try:
                    if self._file is None:
                        self._connect()
                    self._file.write(_store_line(message))
                    self._file.flush()
                    line = self._file.readline()
                    if not line:
                        raise OSError("store daemon closed the connection")
                    reply = json.loads(line.decode("utf-8"))
                    if not isinstance(reply, dict) or not reply.get("ok"):
                        raise OSError(f"store daemon error reply: {reply!r}")
                    return reply
                except (OSError, ValueError):
                    self._reset()
                    if attempt == 1:
                        self.stats.remote_errors += 1
                        return None
        return None

    def get(self, key: str) -> Optional[Dict[str, object]]:
        reply = self._roundtrip({"op": "get", "key": key})
        if reply is None:
            return None
        payload = reply.get("payload")
        if isinstance(payload, dict) and payload.get("format") == STORE_FORMAT:
            return payload
        return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        self._roundtrip({"op": "put", "key": key, "payload": payload})

    def contains(self, key: str) -> bool:
        reply = self._roundtrip({"op": "contains", "key": key})
        return bool(reply and reply.get("contains"))

    def remote_stats(self) -> Dict[str, object]:
        """The daemon's own store snapshot (empty when unreachable)."""
        reply = self._roundtrip({"op": "stats"})
        if reply is None:
            return {}
        return {k: v for k, v in reply.items() if k != "ok"}

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._reset()

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "address": self.address}


def _store_line(message: Mapping[str, object]) -> bytes:
    """One store-protocol message -> one UTF-8 JSON line."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def make_backend(
    cache_dir: Optional[str] = None,
    store_addr: Optional[str] = None,
    connect_retries: int = 25,
) -> Optional[StoreBackend]:
    """The persistent tier for one configuration (``None`` = memory only).

    ``store_addr`` wins over ``cache_dir``: a fleet shard pointed at the
    shared daemon must never shadow it with a private directory, or warm
    hits would stop crossing shards.
    """
    if store_addr:
        return SocketStoreBackend(store_addr, connect_retries=connect_retries)
    if cache_dir:
        return DiskStoreBackend(cache_dir)
    return None


class SummaryStore:
    """Two-tier summary cache: LRU memory plus a pluggable persistent backend.

    The store holds raw JSON payloads, not live objects: entries are serialized
    on :meth:`put` and deserialized on every :meth:`get`, which both keeps the
    memory tier compact and guarantees cached summaries cannot be corrupted by
    later in-place refinement of the sketches handed out.

    The persistent tier is a :class:`StoreBackend`: ``cache_dir`` selects the
    on-disk JSON tier (:class:`DiskStoreBackend`, today's default),
    ``store_addr`` the fleet's socket-served shared store
    (:class:`SocketStoreBackend`), and an explicit ``backend`` plugs anything
    else in.  A backend hit is promoted into the memory tier, so the remote
    round-trip (or disk read) is paid once per key per process.
    """

    def __init__(
        self,
        capacity: int = 4096,
        cache_dir: Optional[str] = None,
        store_addr: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("summary store capacity must be at least 1")
        self.capacity = capacity
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = StoreStats()
        if backend is None:
            backend = make_backend(cache_dir=cache_dir, store_addr=store_addr)
        self.backend = backend
        if backend is not None:
            # One shared record: backend-internal events (quarantines, remote
            # errors) land on the same stats the facade snapshots.
            backend.stats = self.stats
        #: the disk tier's directory (``None`` for memory-only and socket
        #: stores); the procpool env codec ships this to workers.
        self.cache_dir = (
            backend.cache_dir if isinstance(backend, DiskStoreBackend) else None
        )

    @property
    def backend_kind(self) -> str:
        """``"memory"`` when no persistent tier, else the backend's kind."""
        return self.backend.kind if self.backend is not None else "memory"

    # -- raw payload tier ------------------------------------------------------

    def _disk_path(self, key: str) -> str:
        assert isinstance(self.backend, DiskStoreBackend), "no disk tier configured"
        return self.backend.path(key)

    def _get_payload(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
        if self.backend is not None:
            payload = self.backend.get(key)
            if payload is not None:
                with self._lock:
                    if self.backend.kind == "socket":
                        self.stats.remote_hits += 1
                    else:
                        self.stats.disk_hits += 1
                self._admit(key, payload, write_disk=False)
                return payload
        return None

    def _admit(self, key: str, payload: Dict[str, object], write_disk: bool) -> None:
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
        if write_disk and self.backend is not None:
            self.backend.put(key, payload)

    # -- public API ------------------------------------------------------------

    def get(self, key: str, lattice: TypeLattice) -> Optional[SCCSummary]:
        """Look a summary up by content key, recording a hit or a miss."""
        payload = self.get_payload(key)
        if payload is None:
            return None
        return deserialize_summary(payload, lattice)

    def get_payload(self, key: str) -> Optional[Dict[str, object]]:
        """Look up the *raw JSON payload* of a summary, recording hit/miss.

        This is the transfer format of the process-pool backend: a worker that
        finds the key in the shared disk tier returns the payload verbatim, so
        a hit never pays deserialize-then-reserialize on its way to the parent.
        """
        payload = self._get_payload(key)
        with self._lock:
            if payload is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        registry = get_registry()
        if payload is None:
            registry.counter("store_misses_total").inc()
        else:
            registry.counter("store_hits_total").inc()
        return payload

    def put(self, key: str, summary: SCCSummary) -> None:
        """Serialize and admit a freshly-solved SCC summary."""
        self.admit_payload(key, serialize_summary(summary), write_disk=True)

    def admit_payload(
        self, key: str, payload: Dict[str, object], write_disk: bool = True
    ) -> None:
        """Admit an already-serialized summary payload.

        ``write_disk=False`` skips the disk tier: the process-pool parent uses
        it for summaries its workers solved, because the worker already
        published the entry to the shared directory and a second atomic write
        would only burn I/O.
        """
        with self._lock:
            self.stats.puts += 1
        self._admit(key, payload, write_disk=write_disk)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.backend is not None and self.backend.contains(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (the persistent tier, if any, is left untouched)."""
        with self._lock:
            self._memory.clear()

    def close(self) -> None:
        """Release the persistent tier's resources (socket stores hold a
        connection); the memory tier keeps serving."""
        if self.backend is not None:
            self.backend.close()
