"""The end-to-end analysis pipeline: assembly text (or an IR program) to C types.

This is the user-facing entry point of the reproduction::

    from repro import analyze_program

    types = analyze_program(asm_text)
    print(types.signature("close_last"))
    print(types.scheme("close_last"))

Internally it mirrors the architecture of section 4: IR recovery (already done
if a :class:`~repro.ir.program.Program` is passed), constraint generation per
procedure, bottom-up type-scheme inference over call-graph SCCs, sketch
solving, and the final heuristic conversion to C types.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .core.ctype import FunctionType, PointerType, StructType, render_function
from .core.display import TypeDisplay
from .core.labels import InLabel, Variance
from .core.lattice import TypeLattice, default_lattice
from .core.schemes import TypeScheme
from .core.solver import ProcedureResult, ProcedureTypingInput, Solver, SolverConfig
from .core.variables import DerivedTypeVariable
from .ir.asmparser import parse_program
from .ir.cfg import cfg_node_count
from .ir.program import Program
from .typegen.externs import ExternSignature, ensure_lattice_tags, extern_schemes, standard_externs
from .typegen.abstract_interp import generate_program_constraints


@dataclass
class FunctionTypes:
    """The inferred typing of one procedure."""

    name: str
    function_type: FunctionType
    param_names: List[str]
    param_locations: List[str]
    result: ProcedureResult

    @property
    def scheme(self) -> TypeScheme:
        return self.result.scheme

    def signature(self) -> str:
        return render_function(self.name, self.function_type, self.param_names)

    def param_type(self, index: int):
        return self.function_type.params[index]

    @property
    def return_type(self):
        return self.function_type.ret


@dataclass
class ProgramTypes:
    """Whole-program inference results."""

    program: Program
    functions: Dict[str, FunctionTypes]
    display: TypeDisplay
    stats: Dict[str, float] = dc_field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> FunctionTypes:
        return self.functions[name]

    def signature(self, name: str) -> str:
        return self.functions[name].signature()

    def scheme(self, name: str) -> TypeScheme:
        return self.functions[name].scheme

    def struct_definitions(self) -> Dict[str, StructType]:
        return self.display.struct_definitions()

    def report(self) -> str:
        """A human-readable summary of every inferred signature."""
        lines = []
        for name in sorted(self.functions):
            lines.append(self.signature(name))
        if self.display.struct_definitions():
            lines.append("")
            for struct_name, struct in sorted(self.display.struct_definitions().items()):
                lines.append(f"{struct};")
        return "\n".join(lines)


def analyze_program(
    source: Union[str, Program],
    lattice: Optional[TypeLattice] = None,
    externs: Optional[Mapping[str, ExternSignature]] = None,
    config: Optional[SolverConfig] = None,
) -> ProgramTypes:
    """Run the whole Retypd pipeline on assembly text or an IR program."""
    program = parse_program(source) if isinstance(source, str) else source
    lattice = lattice or default_lattice()
    ensure_lattice_tags(lattice)
    extern_table = dict(externs) if externs is not None else standard_externs()

    start = time.perf_counter()
    inputs = generate_program_constraints(program, extern_table)
    constraint_time = time.perf_counter() - start

    solver = Solver(lattice, extern_schemes(extern_table), config)
    solve_start = time.perf_counter()
    results = solver.solve_program(inputs)
    solve_time = time.perf_counter() - solve_start

    display = TypeDisplay(lattice)
    functions: Dict[str, FunctionTypes] = {}
    for name, result in results.items():
        functions[name] = _function_types(name, inputs[name], result, display)

    stats = dict(solver.stats)
    stats.update(
        {
            "constraint_generation_seconds": constraint_time,
            "solve_seconds": solve_time,
            "total_seconds": constraint_time + solve_time,
            "instructions": program.instruction_count,
            "cfg_nodes": sum(cfg_node_count(proc) for proc in program),
        }
    )
    return ProgramTypes(program=program, functions=functions, display=display, stats=stats)


def _function_types(
    name: str,
    typing_input: ProcedureTypingInput,
    result: ProcedureResult,
    display: TypeDisplay,
) -> FunctionTypes:
    in_sketches = []
    param_locations = []
    for dtv in typing_input.formal_ins:
        label = dtv.labels[0]
        location = label.location if isinstance(label, InLabel) else str(label)
        sketch = result.formal_in_sketches.get(dtv)
        if sketch is None and result.shapes is not None and result.shapes.lookup(dtv) is not None:
            sketch = result.shapes.sketch_for(dtv)
        if sketch is None:
            continue
        in_sketches.append((location, sketch))
        param_locations.append(location)
    out_sketches = []
    for dtv in typing_input.formal_outs:
        sketch = result.formal_out_sketches.get(dtv)
        if sketch is not None:
            out_sketches.append(("eax", sketch))
    function_type, param_names = display.function_type(in_sketches, out_sketches)
    return FunctionTypes(
        name=name,
        function_type=function_type,
        param_names=param_names,
        param_locations=param_locations,
        result=result,
    )
