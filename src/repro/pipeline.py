"""The end-to-end analysis pipeline: assembly text (or an IR program) to C types.

This is the user-facing entry point of the reproduction::

    from repro import analyze_program

    types = analyze_program(asm_text)
    print(types.signature("close_last"))
    print(types.scheme("close_last"))

Internally it mirrors the architecture of section 4: IR recovery (already done
if a :class:`~repro.ir.program.Program` is passed), constraint generation per
procedure, bottom-up type-scheme inference over call-graph SCCs, sketch
solving, and the final heuristic conversion to C types.

Since the service layer landed, :func:`analyze_program` routes through
:class:`repro.service.AnalysisService`: the call-graph condensation is
levelled into SCC waves, each SCC is solved piecewise via
:meth:`Solver.solve_scc <repro.core.solver.Solver.solve_scc>`, and -- when a
:class:`~repro.service.ServiceConfig` enables it -- per-SCC summaries are
cached in a content-addressed store, re-analysis after an edit re-solves only
the invalidation cone, and independent SCCs solve in parallel.  The default
configuration (no cache, serial) reproduces the historical single-shot
behaviour exactly.  For many programs at once, see
:func:`repro.analyze_corpus`; for repeated re-analysis of an edited program,
see :class:`repro.service.IncrementalSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Union

from .core.ctype import FunctionType, StructType, render_function
from .core.display import TypeDisplay
from .core.labels import InLabel, OutLabel
from .core.lattice import TypeLattice
from .core.schemes import TypeScheme
from .core.solver import ProcedureResult, ProcedureTypingInput, SolverConfig
from .ir.program import Program
from .typegen.externs import ExternSignature


@dataclass
class FunctionTypes:
    """The inferred typing of one procedure."""

    name: str
    function_type: FunctionType
    param_names: List[str]
    param_locations: List[str]
    result: ProcedureResult

    @property
    def scheme(self) -> TypeScheme:
        return self.result.scheme

    def signature(self) -> str:
        return render_function(self.name, self.function_type, self.param_names)

    def param_type(self, index: int):
        return self.function_type.params[index]

    @property
    def return_type(self):
        return self.function_type.ret


@dataclass
class ProgramTypes:
    """Whole-program inference results."""

    program: Program
    functions: Dict[str, FunctionTypes]
    display: TypeDisplay
    stats: Dict[str, float] = dc_field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> FunctionTypes:
        return self.functions[name]

    def signature(self, name: str) -> str:
        return self.functions[name].signature()

    def scheme(self, name: str) -> TypeScheme:
        return self.functions[name].scheme

    def struct_definitions(self) -> Dict[str, StructType]:
        return self.display.struct_definitions()

    def report(self) -> str:
        """A human-readable summary of every inferred signature."""
        lines = []
        for name in sorted(self.functions):
            lines.append(self.signature(name))
        if self.display.struct_definitions():
            lines.append("")
            for struct_name, struct in sorted(self.display.struct_definitions().items()):
                lines.append(f"{struct};")
        return "\n".join(lines)


def analyze_program(
    source: Union[str, Program],
    lattice: Optional[TypeLattice] = None,
    externs: Optional[Mapping[str, ExternSignature]] = None,
    config: Optional[SolverConfig] = None,
    service: Optional[object] = None,
) -> ProgramTypes:
    """Run the whole Retypd pipeline on assembly text or an IR program.

    ``service`` may be a :class:`repro.service.ServiceConfig` (a service is
    built from it) or a ready :class:`repro.service.AnalysisService` (its
    summary store is then shared across calls, enabling warm re-analysis).
    By default a one-shot service -- no cache, serial scheduling -- is used,
    which matches the historical behaviour of this function.
    """
    from dataclasses import replace

    from .service.incremental import AnalysisService, ServiceConfig

    if isinstance(service, AnalysisService):
        if config is not None and service.config.solver is not config:
            raise ValueError("pass the solver config inside the service, not separately")
        if lattice is not None or externs is not None:
            raise ValueError(
                "a ready AnalysisService carries its own lattice and externs; "
                "pass them to the service constructor instead"
            )
        return service.analyze(source)
    if isinstance(service, ServiceConfig):
        service_config = replace(service, solver=config) if config is not None else service
    else:
        service_config = ServiceConfig(solver=config or SolverConfig(), use_cache=False)
    return AnalysisService(service_config, lattice=lattice, externs=externs).analyze(source)


def _function_types(
    name: str,
    typing_input: ProcedureTypingInput,
    result: ProcedureResult,
    display: TypeDisplay,
) -> FunctionTypes:
    in_sketches = []
    param_locations = []
    for dtv in typing_input.formal_ins:
        label = dtv.labels[0]
        location = label.location if isinstance(label, InLabel) else str(label)
        sketch = result.formal_in_sketches.get(dtv)
        if sketch is None and result.shapes is not None and result.shapes.lookup(dtv) is not None:
            sketch = result.shapes.sketch_for(dtv)
        if sketch is None:
            continue
        in_sketches.append((location, sketch))
        param_locations.append(location)
    out_sketches = []
    for dtv in typing_input.formal_outs:
        sketch = result.formal_out_sketches.get(dtv)
        if sketch is not None:
            out_label = next(
                (label for label in dtv.labels if isinstance(label, OutLabel)), None
            )
            location = out_label.location if out_label is not None else str(dtv)
            out_sketches.append((location, sketch))
    function_type, param_names = display.function_type(in_sketches, out_sketches)
    return FunctionTypes(
        name=name,
        function_type=function_type,
        param_names=param_names,
        param_locations=param_locations,
        result=result,
    )
