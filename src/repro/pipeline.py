"""The end-to-end analysis pipeline: assembly text (or an IR program) to C types.

This is the user-facing entry point of the reproduction::

    from repro import analyze_program

    types = analyze_program(asm_text)
    print(types.signature("close_last"))
    print(types.scheme("close_last"))

Internally it mirrors the architecture of section 4: IR recovery (already done
if a :class:`~repro.ir.program.Program` is passed), constraint generation per
procedure, bottom-up type-scheme inference over call-graph SCCs, sketch
solving, and the final heuristic conversion to C types.

Since the service layer landed, :func:`analyze_program` routes through
:class:`repro.service.AnalysisService`: the call-graph condensation is
levelled into SCC waves, each SCC is solved piecewise via
:meth:`Solver.solve_scc <repro.core.solver.Solver.solve_scc>`, and -- when a
:class:`~repro.service.ServiceConfig` enables it -- per-SCC summaries are
cached in a content-addressed store, re-analysis after an edit re-solves only
the invalidation cone, and independent SCCs solve in parallel.  The default
configuration (no cache, serial) reproduces the historical single-shot
behaviour exactly.  For many programs at once, see
:func:`repro.analyze_corpus`; for repeated re-analysis of an edited program,
see :class:`repro.service.IncrementalSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Union

from .core.ctype import (
    ArrayType,
    CType,
    FunctionType,
    PointerType,
    StructRef,
    StructType,
    TypedefType,
    UnionType,
    ctype_to_json,
    render_function,
)
from .core.display import TypeDisplay, location_sort_key
from .core.labels import InLabel, OutLabel
from .core.lattice import TypeLattice
from .core.schemes import TypeScheme
from .core.solver import ProcedureResult, ProcedureTypingInput, SolverConfig
from .ir.program import Program
from .typegen.externs import ExternSignature


@dataclass
class FunctionTypes:
    """The inferred typing of one procedure.

    Bundles the displayed C view (``function_type``, ``param_names``) with
    the underlying solver output (``result``: type scheme, formal sketches,
    shapes).  Instances are obtained from :class:`ProgramTypes`, never built
    directly.
    """

    name: str
    function_type: FunctionType
    param_names: List[str]
    param_locations: List[str]
    result: ProcedureResult

    @property
    def scheme(self) -> TypeScheme:
        """The procedure's polymorphic type scheme (Definition 3.4)."""
        return self.result.scheme

    def signature(self) -> str:
        """The rendered C declaration, e.g. ``int get_x(const int * arg_stack0);``."""
        return render_function(self.name, self.function_type, self.param_names)

    def param_type(self, index: int):
        """The displayed C type of the ``index``-th parameter."""
        return self.function_type.params[index]

    @property
    def return_type(self):
        """The displayed C return type (``void`` when nothing is returned)."""
        return self.function_type.ret

    def to_json(self) -> Dict[str, object]:
        """A JSON-able, per-procedure payload for remote queries.

        Everything a client needs about one procedure: the rendered C
        signature, the displayed C types (parameters in display order plus the
        return type), the polymorphic type scheme, and the formal sketches --
        each using the established JSON round-trips (:func:`~repro.core.ctype.
        ctype_to_json`, :meth:`TypeScheme.to_json <repro.core.schemes.
        TypeScheme.to_json>`, :meth:`Sketch.to_json <repro.core.sketches.
        Sketch.to_json>`).  Struct *definitions* live program-wide; see
        :meth:`ProgramTypes.procedure_structs`.
        """
        locations = sorted(self.param_locations, key=location_sort_key)
        return {
            "name": self.name,
            "signature": self.signature(),
            "params": [
                {
                    "name": pname,
                    "location": location,
                    "type": ctype_to_json(ptype),
                    "c": str(ptype),
                }
                for pname, location, ptype in zip(
                    self.param_names, locations, self.function_type.params
                )
            ],
            "return": {
                "type": ctype_to_json(self.function_type.ret),
                "c": str(self.function_type.ret),
            },
            "scheme": self.scheme.to_json(),
            "scheme_text": str(self.scheme),
            "formal_ins": [
                [str(dtv), sketch.to_json()]
                for dtv, sketch in self.result.formal_in_sketches.items()
            ],
            "formal_outs": [
                [str(dtv), sketch.to_json()]
                for dtv, sketch in self.result.formal_out_sketches.items()
            ],
        }


def _json_safe(value):
    """Coerce a stats-ish value to something ``json.dumps`` accepts as-is."""
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [_json_safe(entry) for entry in items]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def _referenced_struct_names(ctype: CType, out: set) -> None:
    """Collect the names of every struct a displayed type mentions."""
    if isinstance(ctype, (StructRef, StructType)):
        if ctype.name:
            out.add(ctype.name)
        if isinstance(ctype, StructType):
            for field_ in ctype.fields:
                _referenced_struct_names(field_.ctype, out)
    elif isinstance(ctype, PointerType):
        _referenced_struct_names(ctype.pointee, out)
    elif isinstance(ctype, TypedefType):
        _referenced_struct_names(ctype.underlying, out)
    elif isinstance(ctype, UnionType):
        for member in ctype.members:
            _referenced_struct_names(member, out)
    elif isinstance(ctype, FunctionType):
        for param in ctype.params:
            _referenced_struct_names(param, out)
        _referenced_struct_names(ctype.ret, out)
    elif isinstance(ctype, ArrayType):
        _referenced_struct_names(ctype.element, out)


@dataclass
class ProgramTypes:
    """Whole-program inference results -- what :func:`analyze_program` returns.

    Addressable by procedure name (``types["main"]``, ``"main" in types``);
    ``stats`` carries solver/service accounting (cache hits, wave widths,
    per-stage timings -- see :attr:`stage_seconds` and docs/operations.md).
    """

    program: Program
    functions: Dict[str, FunctionTypes]
    display: TypeDisplay
    stats: Dict[str, float] = dc_field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> FunctionTypes:
        return self.functions[name]

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage core solver timings for this analysis.

        The :class:`~repro.core.solver.SolveStats` record (graph build,
        saturation, simplification queries, sketch construction) aggregated by
        the service over every SCC it actually solved; empty until a solve has
        run, all-zero when the whole program was served from the summary
        cache.  The server's ``stats`` verb returns this same record for a
        ``program_id``.
        """
        stage = self.stats.get("stage_seconds", {})
        return dict(stage) if isinstance(stage, dict) else {}

    def signature(self, name: str) -> str:
        """The rendered C declaration of procedure ``name``."""
        return self.functions[name].signature()

    def scheme(self, name: str) -> TypeScheme:
        """The polymorphic type scheme of procedure ``name``."""
        return self.functions[name].scheme

    def struct_definitions(self) -> Dict[str, StructType]:
        """Every struct layout the display layer recovered, by generated name."""
        return self.display.struct_definitions()

    def procedure_structs(self, name: str) -> Dict[str, StructType]:
        """The struct definitions reachable from one procedure's displayed type.

        This is the "struct layout" a remote ``query`` returns: starting from
        the function type, every named struct it mentions plus -- transitively
        -- every struct those definitions mention, so recursive layouts
        (``struct_0 *next``) always arrive with their definitions.
        """
        referenced: set = set()
        _referenced_struct_names(self.functions[name].function_type, referenced)
        definitions = self.display.struct_definitions()
        out: Dict[str, StructType] = {}
        worklist = sorted(referenced)
        while worklist:
            struct_name = worklist.pop()
            if struct_name in out or struct_name not in definitions:
                continue
            struct = definitions[struct_name]
            out[struct_name] = struct
            nested: set = set()
            _referenced_struct_names(struct, nested)
            worklist.extend(sorted(nested - set(out)))
        return out

    def to_json(self) -> Dict[str, object]:
        """A JSON-able payload of the whole analysis, addressable by procedure.

        The shape served by the type-query server's ``analyze``/``query``
        verbs and printed by ``python -m repro analyze --json``: per-procedure
        payloads (:meth:`FunctionTypes.to_json`), the program-wide struct
        table, the plain-text report and the solver statistics.
        """
        return {
            "functions": {name: fn.to_json() for name, fn in self.functions.items()},
            "structs": {
                name: {"type": ctype_to_json(struct), "c": f"{struct};"}
                for name, struct in sorted(self.display.struct_definitions().items())
            },
            "report": self.report(),
            "stats": _json_safe(self.stats),
        }

    def report(self) -> str:
        """A human-readable summary of every inferred signature."""
        lines = []
        for name in sorted(self.functions):
            lines.append(self.signature(name))
        if self.display.struct_definitions():
            lines.append("")
            for struct_name, struct in sorted(self.display.struct_definitions().items()):
                lines.append(f"{struct};")
        return "\n".join(lines)


def analyze_program(
    source: Union[str, Program],
    lattice: Optional[TypeLattice] = None,
    externs: Optional[Mapping[str, ExternSignature]] = None,
    config: Optional[SolverConfig] = None,
    service: Optional[object] = None,
) -> ProgramTypes:
    """Run the whole Retypd pipeline on assembly text or an IR program.

    ``service`` may be a :class:`repro.service.ServiceConfig` (a service is
    built from it) or a ready :class:`repro.service.AnalysisService` (its
    summary store is then shared across calls, enabling warm re-analysis).
    By default a one-shot service -- no cache, serial scheduling -- is used,
    which matches the historical behaviour of this function.
    """
    from dataclasses import replace

    from .service.incremental import AnalysisService, ServiceConfig

    if isinstance(service, AnalysisService):
        if config is not None and service.config.solver is not config:
            raise ValueError("pass the solver config inside the service, not separately")
        if lattice is not None or externs is not None:
            raise ValueError(
                "a ready AnalysisService carries its own lattice and externs; "
                "pass them to the service constructor instead"
            )
        return service.analyze(source)
    if isinstance(service, ServiceConfig):
        service_config = replace(service, solver=config) if config is not None else service
    else:
        service_config = ServiceConfig(solver=config or SolverConfig(), use_cache=False)
    return AnalysisService(service_config, lattice=lattice, externs=externs).analyze(source)


def _function_types(
    name: str,
    typing_input: ProcedureTypingInput,
    result: ProcedureResult,
    display: TypeDisplay,
) -> FunctionTypes:
    in_sketches = []
    param_locations = []
    for dtv in typing_input.formal_ins:
        label = dtv.labels[0]
        location = label.location if isinstance(label, InLabel) else str(label)
        sketch = result.formal_in_sketches.get(dtv)
        if sketch is None and result.shapes is not None and result.shapes.lookup(dtv) is not None:
            sketch = result.shapes.sketch_for(dtv)
        if sketch is None:
            continue
        in_sketches.append((location, sketch))
        param_locations.append(location)
    out_sketches = []
    for dtv in typing_input.formal_outs:
        sketch = result.formal_out_sketches.get(dtv)
        if sketch is not None:
            out_label = next(
                (label for label in dtv.labels if isinstance(label, OutLabel)), None
            )
            location = out_label.location if out_label is not None else str(dtv)
            out_sketches.append((location, sketch))
    function_type, param_names = display.function_type(in_sketches, out_sketches)
    return FunctionTypes(
        name=name,
        function_type=function_type,
        param_names=param_names,
        param_locations=param_locations,
        result=result,
    )
