"""Reaching-definitions analysis for registers and stack slots.

Constraint generation (Appendix A) regains flow sensitivity by pairing the
type abstract interpretation with reaching definitions: every definition site
of a register or stack slot gets its own type variable, and a use generates
constraints from all reaching definitions (Example A.2).  This module computes
those reaching-definition sets at instruction granularity.

Tracked locations:

* every general-purpose register except ``esp``/``ebp`` (which are handled by
  the stack analysis), and
* every resolvable stack frame slot, identified by its offset relative to the
  entry ``esp``.

A definition is a pair ``(location, index)`` where ``index`` is the defining
instruction's position, or ``ENTRY`` (-1) for the value live on entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .cfg import predecessors, successors
from .instructions import (
    WORD_SIZE,
    BinaryOp,
    Call,
    Compare,
    Imm,
    Instruction,
    Lea,
    Leave,
    Mem,
    Mov,
    Pop,
    Push,
    Reg,
    Ret,
)
from .program import Procedure
from .stackanalysis import StackState, analyze_stack, frame_offset

ENTRY = -1

#: A tracked location: a register name or a stack frame offset.
Location = Union[str, int]
Definition = Tuple[Location, int]

_TRACKED_REGISTERS = ("eax", "ebx", "ecx", "edx", "esi", "edi")


@dataclass
class ReachingDefinitions:
    """Result of the analysis: reaching-definition sets before each instruction."""

    procedure: Procedure
    stack_states: Dict[int, StackState]
    before: Dict[int, Dict[Location, FrozenSet[int]]]

    def reaching(self, index: int, location: Location) -> FrozenSet[int]:
        """Definition sites of ``location`` reaching instruction ``index``."""
        return self.before.get(index, {}).get(location, frozenset({ENTRY}))

    def state(self, index: int) -> StackState:
        return self.stack_states.get(index, StackState(None, None))

    def slot_for(self, index: int, memory: Mem) -> Optional[int]:
        """Frame offset addressed by a memory operand at ``index`` (or None)."""
        return frame_offset(memory, self.state(index))


def definitions_of(
    instruction: Instruction, index: int, state: StackState
) -> Set[Location]:
    """Locations written by an instruction."""
    defs: Set[Location] = set()
    for register in instruction.register_defs():
        if register in _TRACKED_REGISTERS:
            defs.add(register)
    if isinstance(instruction, Mov) and isinstance(instruction.dst, Mem):
        offset = frame_offset(instruction.dst, state)
        if offset is not None:
            defs.add(offset)
    if isinstance(instruction, Push):
        if state.esp is not None:
            defs.add(state.esp - WORD_SIZE)
    return defs


def uses_of(
    instruction: Instruction, index: int, state: StackState
) -> Set[Location]:
    """Locations read by an instruction (registers and stack slots)."""
    uses: Set[Location] = set()
    for register in instruction.register_uses():
        if register in _TRACKED_REGISTERS:
            uses.add(register)
    for operand in _memory_operands_read(instruction):
        offset = frame_offset(operand, state)
        if offset is not None:
            uses.add(offset)
    return uses


def _memory_operands_read(instruction: Instruction) -> List[Mem]:
    read: List[Mem] = []
    if isinstance(instruction, Mov) and isinstance(instruction.src, Mem):
        read.append(instruction.src)
    if isinstance(instruction, Push) and isinstance(instruction.src, Mem):
        read.append(instruction.src)
    if isinstance(instruction, BinaryOp) and isinstance(instruction.src, Mem):
        read.append(instruction.src)
    if isinstance(instruction, Compare):
        for operand in (instruction.left, instruction.right):
            if isinstance(operand, Mem):
                read.append(operand)
    return read


def analyze_reaching_definitions(procedure: Procedure) -> ReachingDefinitions:
    """Forward may-analysis computing reaching definitions before each instruction."""
    stack_states = analyze_stack(procedure)
    succ_map = successors(procedure)
    count = len(procedure.instructions)

    before: Dict[int, Dict[Location, FrozenSet[int]]] = {}
    if count == 0:
        return ReachingDefinitions(procedure, stack_states, before)

    entry_env: Dict[Location, FrozenSet[int]] = {}
    before[0] = entry_env

    worklist: List[int] = [0]
    while worklist:
        index = worklist.pop()
        env = before.get(index, {})
        state = stack_states.get(index, StackState(None, None))
        instruction = procedure.instructions[index]
        out_env = dict(env)
        for location in definitions_of(instruction, index, state):
            out_env[location] = frozenset({index})
        for succ in succ_map.get(index, []):
            existing = before.get(succ)
            merged = _merge(existing, out_env)
            if existing is None or merged != existing:
                before[succ] = merged
                worklist.append(succ)
    return ReachingDefinitions(procedure, stack_states, before)


def _merge(
    existing: Optional[Dict[Location, FrozenSet[int]]],
    incoming: Dict[Location, FrozenSet[int]],
) -> Dict[Location, FrozenSet[int]]:
    if existing is None:
        return dict(incoming)
    merged = dict(existing)
    for location, defs in incoming.items():
        merged[location] = merged.get(location, frozenset()) | defs
    for location in existing:
        if location not in incoming:
            # The other path may leave the location at its entry value.
            merged[location] = merged[location] | frozenset({ENTRY})
    for location in incoming:
        if location not in existing:
            merged[location] = merged[location] | frozenset({ENTRY})
    return merged
