"""Formal-in / formal-out discovery and calling-convention locators (Appendix A.4).

Earlier analysis phases are responsible for delineating each procedure's
formal-in and formal-out locations; this module plays that role for the IR
substrate:

* **stack arguments** -- frame slots at offsets >= 4 (relative to the entry
  ``esp``) that are read with the entry definition reaching the read;
* **register arguments** -- caller-set registers read before being written
  (excluding the callee-save ``push reg`` idiom, which merely spills the
  caller's value);
* **return value** -- ``eax`` when a definition of it reaches some ``ret``.

The same module knows where a *caller* materializes actuals: the ``j``-th cdecl
argument of a call sits ``4*j`` bytes above ``esp`` at the call instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .dataflow import ENTRY, ReachingDefinitions, analyze_reaching_definitions, uses_of
from .instructions import WORD_SIZE, Call, Instruction, Push, Ret
from .program import Procedure


#: registers that may carry arguments when a register-parameter convention is used
REGISTER_PARAM_CANDIDATES = ("ecx", "edx", "ebx", "esi", "edi")


@dataclass
class ProcedureInterface:
    """Discovered input/output locations of a procedure."""

    name: str
    #: stack argument frame offsets (4 = first argument), sorted
    stack_args: Tuple[int, ...] = ()
    #: register parameters (subset of REGISTER_PARAM_CANDIDATES), sorted
    register_args: Tuple[str, ...] = ()
    has_return: bool = False

    @property
    def input_locations(self) -> List[str]:
        """Formal-in location names, stack arguments first (by offset)."""
        locations = [f"stack{offset - WORD_SIZE}" for offset in self.stack_args]
        locations.extend(self.register_args)
        return locations

    @property
    def output_locations(self) -> List[str]:
        return ["eax"] if self.has_return else []

    @property
    def arity(self) -> int:
        return len(self.stack_args) + len(self.register_args)


def discover_interface(
    procedure: Procedure, reaching: Optional[ReachingDefinitions] = None
) -> ProcedureInterface:
    """Compute the procedure's interface from its dataflow facts."""
    if reaching is None:
        reaching = analyze_reaching_definitions(procedure)

    stack_args: Set[int] = set()
    register_args: Set[str] = set()
    has_return = False

    for index, instruction in enumerate(procedure.instructions):
        state = reaching.state(index)
        for location in uses_of(instruction, index, state):
            defs = reaching.reaching(index, location)
            if ENTRY not in defs:
                continue
            if isinstance(location, int):
                if location >= WORD_SIZE:
                    stack_args.add(location)
            elif location in REGISTER_PARAM_CANDIDATES:
                # The callee-save idiom (push reg ... pop reg) is not a use of a
                # parameter; require a non-push use of the entry value.
                if not isinstance(instruction, Push):
                    register_args.add(location)
        if isinstance(instruction, Ret):
            eax_defs = reaching.reaching(index, "eax")
            if any(definition != ENTRY for definition in eax_defs):
                has_return = True

    return ProcedureInterface(
        name=procedure.name,
        stack_args=tuple(sorted(stack_args)),
        register_args=tuple(sorted(register_args)),
        has_return=has_return,
    )


def actual_argument_offsets(arity: int, esp_at_call: int) -> List[int]:
    """Frame offsets (caller frame) of the ``arity`` stack actuals of a call."""
    return [esp_at_call + WORD_SIZE * j for j in range(arity)]


def formal_location_for_actual_index(index: int) -> str:
    """Location name of the callee formal matching the caller's ``index``-th push."""
    return f"stack{WORD_SIZE * index}"
