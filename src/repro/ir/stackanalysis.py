"""Stack-pointer tracking (the "affine relations between esp and ebp" of section 6.1).

Retypd deliberately avoids full points-to analysis; the only memory facts it
needs are which accesses address the current activation record.  This module
computes, for every instruction of a procedure, the offset of ``esp`` and
``ebp`` relative to the value of ``esp`` on procedure entry (0 = the return
address slot).  Stack memory operands can then be resolved to *frame offsets*:

* offsets ``>= 4``  : incoming arguments (``4`` is the first cdecl argument);
* offset ``0``      : the return address;
* offsets ``< 0``   : locals and outgoing argument slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cfg import successors
from .instructions import (
    WORD_SIZE,
    BinaryOp,
    Call,
    Imm,
    Instruction,
    Leave,
    Mem,
    Mov,
    Pop,
    Push,
    Reg,
)
from .program import Procedure


@dataclass(frozen=True)
class StackState:
    """Offsets of esp and ebp relative to the entry esp; ``None`` = unknown."""

    esp: Optional[int] = 0
    ebp: Optional[int] = None

    def merge(self, other: "StackState") -> "StackState":
        esp = self.esp if self.esp == other.esp else None
        ebp = self.ebp if self.ebp == other.ebp else None
        return StackState(esp, ebp)


def analyze_stack(procedure: Procedure) -> Dict[int, StackState]:
    """State *before* each instruction index."""
    succ_map = successors(procedure)
    states: Dict[int, StackState] = {}
    if not procedure.instructions:
        return states
    worklist: List[int] = [0]
    states[0] = StackState(esp=0, ebp=None)
    while worklist:
        index = worklist.pop()
        state = states[index]
        after = transfer(procedure.instructions[index], state)
        for succ in succ_map.get(index, []):
            merged = after if succ not in states else states[succ].merge(after)
            if succ not in states or merged != states[succ]:
                states[succ] = merged
                worklist.append(succ)
    return states


def transfer(instruction: Instruction, state: StackState) -> StackState:
    esp, ebp = state.esp, state.ebp
    if isinstance(instruction, Push):
        esp = esp - WORD_SIZE if esp is not None else None
    elif isinstance(instruction, Pop):
        if instruction.dst.name == "ebp":
            ebp = None
        if instruction.dst.name == "esp":
            esp = None
        else:
            esp = esp + WORD_SIZE if esp is not None else None
    elif isinstance(instruction, Leave):
        esp = ebp + WORD_SIZE if ebp is not None else None
        ebp = None
    elif isinstance(instruction, Mov):
        if isinstance(instruction.dst, Reg) and instruction.dst.name == "ebp":
            if isinstance(instruction.src, Reg) and instruction.src.name == "esp":
                ebp = esp
            else:
                ebp = None
        elif isinstance(instruction.dst, Reg) and instruction.dst.name == "esp":
            if isinstance(instruction.src, Reg) and instruction.src.name == "ebp":
                esp = ebp
            else:
                esp = None
    elif isinstance(instruction, BinaryOp) and instruction.dst.name == "esp":
        if isinstance(instruction.src, Imm) and esp is not None:
            if instruction.op == "add":
                esp = esp + instruction.src.value
            elif instruction.op == "sub":
                esp = esp - instruction.src.value
            else:
                esp = None
        else:
            esp = None
    elif isinstance(instruction, BinaryOp) and instruction.dst.name == "ebp":
        ebp = None
    elif isinstance(instruction, Call):
        pass  # net esp change of a cdecl call is zero from the caller's view
    return StackState(esp, ebp)


def frame_offset(memory: Mem, state: StackState) -> Optional[int]:
    """Offset of a stack memory operand relative to the entry esp, if resolvable."""
    if memory.index is not None:
        return None
    if memory.base == "esp":
        return state.esp + memory.offset if state.esp is not None else None
    if memory.base == "ebp":
        return state.ebp + memory.offset if state.ebp is not None else None
    return None


def is_argument_offset(offset: int) -> bool:
    return offset >= WORD_SIZE


def argument_location(offset: int) -> str:
    """Formal-in location name for an argument frame offset (4 -> ``stack0``)."""
    return f"stack{offset - WORD_SIZE}"
