"""Programs and procedures of the machine-code IR."""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .instructions import Call, Instruction, Jcc, Jmp, LabelPseudo, Reg, Ret


@dataclass
class Procedure:
    """A named procedure: a flat list of instructions with internal labels resolved."""

    name: str
    instructions: List[Instruction] = dc_field(default_factory=list)
    #: label name -> index into ``instructions`` of the labelled instruction
    labels: Dict[str, int] = dc_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.labels:
            self.labels = self._compute_labels()

    def _compute_labels(self) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        for index, instruction in enumerate(self.instructions):
            if isinstance(instruction, LabelPseudo):
                # The label points at the next real instruction.
                labels[instruction.name] = index
        return labels

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def size(self) -> int:
        """Number of real (non-label) instructions."""
        return sum(
            1 for instruction in self.instructions if not isinstance(instruction, LabelPseudo)
        )

    def label_target(self, label: str) -> Optional[int]:
        return self.labels.get(label)

    def direct_callees(self) -> List[str]:
        return [
            instruction.target
            for instruction in self.instructions
            if isinstance(instruction, Call) and isinstance(instruction.target, str)
        ]

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        for instruction in self.instructions:
            if isinstance(instruction, LabelPseudo):
                lines.append(f"{instruction.name}:")
            else:
                lines.append(f"    {instruction}")
        return "\n".join(lines)


@dataclass
class Program:
    """A collection of procedures plus declared externals and global variables."""

    procedures: Dict[str, Procedure] = dc_field(default_factory=dict)
    externs: Set[str] = dc_field(default_factory=set)
    globals: Dict[str, int] = dc_field(default_factory=dict)  # name -> size in bytes

    def add_procedure(self, procedure: Procedure) -> None:
        self.procedures[procedure.name] = procedure

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    def __contains__(self, name: str) -> bool:
        return name in self.procedures

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self.procedures.values())

    @property
    def instruction_count(self) -> int:
        return sum(proc.size for proc in self.procedures.values())

    def call_edges(self) -> Dict[str, Set[str]]:
        """Direct call graph edges restricted to procedures defined in the program."""
        edges: Dict[str, Set[str]] = {name: set() for name in self.procedures}
        for name, proc in self.procedures.items():
            for callee in proc.direct_callees():
                if callee in self.procedures:
                    edges[name].add(callee)
        return edges

    def undefined_callees(self) -> Set[str]:
        """Callees that are neither defined nor declared extern."""
        missing: Set[str] = set()
        for proc in self.procedures.values():
            for callee in proc.direct_callees():
                if callee not in self.procedures and callee not in self.externs:
                    missing.add(callee)
        return missing

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.externs):
            parts.append(f".extern {name}")
        for name, size in sorted(self.globals.items()):
            parts.append(f".global_var {name} {size}")
        for proc in self.procedures.values():
            parts.append("")
            parts.append(str(proc))
        return "\n".join(parts)
