"""A parser for the textual assembly syntax of the IR.

Syntax overview::

    .extern malloc              ; declare an external function
    .global_var counter 4       ; declare a global variable (name, size in bytes)

    close_last:                 ; a top-level label starts a new procedure
        mov edx, [esp+4]
    .loop:                      ; labels starting with '.' are procedure-local
        mov eax, [edx]
        test eax, eax
        jnz .loop_body
        mov eax, [edx+4]
        mov [esp+4], eax
        call close
        ret
    .loop_body:
        mov edx, eax
        jmp .loop

Memory operands accept ``[reg]``, ``[reg+imm]``, ``[reg-imm]``, ``[reg+reg2]``,
``[global]`` and ``[global+imm]``; a ``byte``/``word``/``qword`` prefix selects
the access size (default 4 bytes).  Comments start with ``;`` or ``#``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import (
    REGISTERS,
    BinaryOp,
    Call,
    Compare,
    Imm,
    Instruction,
    Jcc,
    Jmp,
    LabelPseudo,
    Lea,
    Leave,
    Mem,
    Mov,
    Nop,
    Operand,
    Pop,
    Push,
    Reg,
    Ret,
)
from .program import Procedure, Program


class AsmSyntaxError(ValueError):
    """Raised when the assembly text cannot be parsed."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number
        self.line = line


_SIZE_PREFIXES = {"byte": 1, "word": 2, "dword": 4, "qword": 8}
_BINARY_OPS = {"add", "sub", "and", "or", "xor", "imul", "shl", "shr", "sar"}
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$@]*):$")


def parse_program(text: str) -> Program:
    """Parse a whole assembly module into a :class:`Program`."""
    program = Program()
    current_name: Optional[str] = None
    current_instructions: List[Instruction] = []

    def flush() -> None:
        nonlocal current_name, current_instructions
        if current_name is not None:
            program.add_procedure(Procedure(current_name, current_instructions))
        current_name = None
        current_instructions = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith(".extern"):
            parts = line.split()
            if len(parts) < 2:
                raise AsmSyntaxError("missing extern name", line_number, raw_line)
            for name in parts[1:]:
                program.externs.add(name.rstrip(","))
            continue
        if line.startswith(".global_var"):
            parts = line.split()
            if len(parts) < 2:
                raise AsmSyntaxError("missing global name", line_number, raw_line)
            size = int(parts[2]) if len(parts) > 2 else 4
            program.globals[parts[1]] = size
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name.startswith("."):
                if current_name is None:
                    raise AsmSyntaxError("local label outside procedure", line_number, raw_line)
                current_instructions.append(LabelPseudo(name))
            else:
                flush()
                current_name = name
            continue
        if current_name is None:
            raise AsmSyntaxError("instruction outside procedure", line_number, raw_line)
        try:
            current_instructions.append(parse_instruction(line))
        except ValueError as error:
            raise AsmSyntaxError(str(error), line_number, raw_line) from error
    flush()
    return program


def parse_procedure(name: str, text: str) -> Procedure:
    """Parse the body of a single procedure (no directives)."""
    program = parse_program(f"{name}:\n{text}")
    return program.procedure(name)


def parse_instruction(line: str) -> Instruction:
    """Parse a single instruction line."""
    line = _strip_comment(line).strip()
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    rest = rest.strip()

    if mnemonic == "nop":
        return Nop()
    if mnemonic == "ret":
        return Ret()
    if mnemonic == "leave":
        return Leave()
    if mnemonic == "jmp":
        return Jmp(rest)
    if mnemonic.startswith("j") and len(mnemonic) > 1:
        return Jcc(mnemonic[1:], rest)
    if mnemonic == "call":
        target = rest.strip()
        if target in REGISTERS:
            return Call(Reg(target))
        return Call(target)
    if mnemonic == "push":
        return Push(parse_operand(rest))
    if mnemonic == "pop":
        operand = parse_operand(rest)
        if not isinstance(operand, Reg):
            raise ValueError("pop destination must be a register")
        return Pop(operand)

    operands = _split_operands(rest)
    if mnemonic == "mov":
        _expect(operands, 2, "mov")
        return Mov(parse_operand(operands[0]), parse_operand(operands[1]))
    if mnemonic == "lea":
        _expect(operands, 2, "lea")
        dst = parse_operand(operands[0])
        src = parse_operand(operands[1])
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            raise ValueError("lea expects a register destination and memory source")
        return Lea(dst, src)
    if mnemonic in _BINARY_OPS:
        _expect(operands, 2, mnemonic)
        dst = parse_operand(operands[0])
        if not isinstance(dst, Reg):
            raise ValueError(f"{mnemonic} destination must be a register")
        return BinaryOp(mnemonic, dst, parse_operand(operands[1]))
    if mnemonic in ("cmp", "test"):
        _expect(operands, 2, mnemonic)
        return Compare(mnemonic, parse_operand(operands[0]), parse_operand(operands[1]))
    raise ValueError(f"unknown mnemonic {mnemonic!r}")


def parse_operand(text: str) -> Operand:
    """Parse a register, immediate or memory operand."""
    text = text.strip()
    size = 4
    for prefix, prefix_size in _SIZE_PREFIXES.items():
        if text.startswith(prefix + " "):
            size = prefix_size
            text = text[len(prefix):].strip()
            break
    if text.startswith("["):
        if not text.endswith("]"):
            raise ValueError(f"unterminated memory operand {text!r}")
        return _parse_memory(text[1:-1], size)
    if text in REGISTERS:
        return Reg(text)
    try:
        return Imm(int(text, 0))
    except ValueError:
        raise ValueError(f"cannot parse operand {text!r}") from None


def _parse_memory(inner: str, size: int) -> Mem:
    inner = inner.replace(" ", "")
    # Normalize "a-b" to "a+-b" so we can split on '+'.
    inner = re.sub(r"(?<=[\w\]])-", "+-", inner)
    parts = [part for part in inner.split("+") if part]
    base: Optional[str] = None
    index: Optional[str] = None
    offset = 0
    for part in parts:
        if part in REGISTERS:
            if base is None:
                base = part
            elif index is None:
                index = part
            else:
                raise ValueError(f"too many registers in memory operand [{inner}]")
            continue
        try:
            offset += int(part, 0)
        except ValueError:
            # A symbol: a global variable or named stack slot.
            if base is None:
                base = part
            else:
                raise ValueError(f"cannot parse memory operand part {part!r}") from None
    return Mem(base=base, offset=offset, size=size, index=index)


def _split_operands(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _expect(operands: List[str], count: int, mnemonic: str) -> None:
    if len(operands) != count:
        raise ValueError(f"{mnemonic} expects {count} operands, got {len(operands)}")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index != -1:
            line = line[:index]
    return line
