"""Call graphs, their strongly-connected components, and SCC waves.

Type schemes are inferred bottom-up over the SCCs of the call graph (section
4.2); this module wraps the program's direct-call edges and the Tarjan SCC
computation shared with the core solver.  It also levels the SCC condensation
DAG into *waves*: every SCC in wave ``k`` only calls into SCCs of waves
``< k``, so all SCCs within one wave can be solved concurrently (the unit of
parallelism used by :mod:`repro.service.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Set, Tuple

from ..core.solver import ProcedureTypingInput, call_edges, tarjan_sccs
from .program import Program


@dataclass
class CallGraph:
    """Direct call graph over the procedures defined in a program."""

    edges: Dict[str, Set[str]] = dc_field(default_factory=dict)

    @classmethod
    def from_program(cls, program: Program) -> "CallGraph":
        return cls(program.call_edges())

    @classmethod
    def from_typing_inputs(
        cls, procedures: Mapping[str, ProcedureTypingInput]
    ) -> "CallGraph":
        """Call graph read off the callsites of generated typing inputs."""
        return cls(call_edges(procedures))

    def callees(self, name: str) -> Set[str]:
        return set(self.edges.get(name, ()))

    def callers(self, name: str) -> Set[str]:
        return {caller for caller, callees in self.edges.items() if name in callees}

    def transitive_callers(self, names: Set[str]) -> Set[str]:
        """``names`` plus every procedure that can reach one of them by calls.

        This is the invalidation cone of the incremental driver: when a
        procedure changes, its own SCC and all transitive callers must be
        re-solved, while everything below is reusable by content hash.
        """
        reverse: Dict[str, Set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        dirty = set(names)
        worklist = list(names)
        while worklist:
            current = worklist.pop()
            for caller in reverse.get(current, ()):
                if caller not in dirty:
                    dirty.add(caller)
                    worklist.append(caller)
        return dirty

    def sccs_bottom_up(self) -> List[List[str]]:
        """SCCs in callee-first order (the order type schemes are inferred in)."""
        return tarjan_sccs(self.edges)

    def sccs_top_down(self) -> List[List[str]]:
        """SCCs in caller-first order (the order sketches are specialized in)."""
        return list(reversed(self.sccs_bottom_up()))

    def scc_of(self) -> Dict[str, Tuple[str, ...]]:
        """Map every procedure to (the canonical tuple of) its SCC."""
        out: Dict[str, Tuple[str, ...]] = {}
        for scc in self.sccs_bottom_up():
            key = tuple(scc)
            for name in scc:
                out[name] = key
        return out

    def scc_waves(self) -> List[List[List[str]]]:
        """Topological levelling of the SCC condensation DAG.

        Returns a list of waves; each wave is a list of SCCs (in bottom-up
        discovery order, so the result is deterministic), and every SCC only
        calls into SCCs of strictly earlier waves.  Wave 0 holds the leaf
        SCCs; independent subtrees share waves, which is where the service
        scheduler finds its parallelism.
        """
        sccs = self.sccs_bottom_up()
        index_of: Dict[str, int] = {}
        for index, scc in enumerate(sccs):
            for name in scc:
                index_of[name] = index
        depth: List[int] = [0] * len(sccs)
        for index, scc in enumerate(sccs):
            members = set(scc)
            callee_depths = [
                depth[index_of[callee]]
                for name in scc
                for callee in self.edges.get(name, ())
                if callee not in members and callee in index_of
            ]
            # Bottom-up order guarantees callees were assigned depths already.
            depth[index] = 1 + max(callee_depths) if callee_depths else 0
        waves: List[List[List[str]]] = [[] for _ in range(max(depth, default=-1) + 1)]
        for index, scc in enumerate(sccs):
            waves[depth[index]].append(list(scc))
        return waves

    def __len__(self) -> int:
        return len(self.edges)
