"""Call graphs and their strongly-connected components.

Type schemes are inferred bottom-up over the SCCs of the call graph (section
4.2); this module wraps the program's direct-call edges and the Tarjan SCC
computation shared with the core solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Set

from ..core.solver import tarjan_sccs
from .program import Program


@dataclass
class CallGraph:
    """Direct call graph over the procedures defined in a program."""

    edges: Dict[str, Set[str]] = dc_field(default_factory=dict)

    @classmethod
    def from_program(cls, program: Program) -> "CallGraph":
        return cls(program.call_edges())

    def callees(self, name: str) -> Set[str]:
        return set(self.edges.get(name, ()))

    def callers(self, name: str) -> Set[str]:
        return {caller for caller, callees in self.edges.items() if name in callees}

    def sccs_bottom_up(self) -> List[List[str]]:
        """SCCs in callee-first order (the order type schemes are inferred in)."""
        return tarjan_sccs(self.edges)

    def sccs_top_down(self) -> List[List[str]]:
        """SCCs in caller-first order (the order sketches are specialized in)."""
        return list(reversed(self.sccs_bottom_up()))

    def __len__(self) -> int:
        return len(self.edges)
