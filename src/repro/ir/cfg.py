"""Control-flow graphs over procedures.

Two granularities are provided:

* an instruction-level successor map (used by the dataflow analyses), and
* basic blocks (used by the evaluation harness to report program sizes in
  "CFG nodes", the unit of Figures 11/12).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set, Tuple

from .instructions import Instruction, Jcc, Jmp, LabelPseudo, Ret
from .program import Procedure


def successors(procedure: Procedure) -> Dict[int, List[int]]:
    """Instruction-index successor map (labels are transparent pseudo-instructions)."""
    result: Dict[int, List[int]] = {}
    count = len(procedure.instructions)
    for index, instruction in enumerate(procedure.instructions):
        succs: List[int] = []
        if isinstance(instruction, Ret):
            pass
        elif isinstance(instruction, Jmp):
            target = procedure.label_target(instruction.target)
            if target is not None:
                succs.append(target)
        elif isinstance(instruction, Jcc):
            if index + 1 < count:
                succs.append(index + 1)
            target = procedure.label_target(instruction.target)
            if target is not None:
                succs.append(target)
        else:
            if index + 1 < count:
                succs.append(index + 1)
        result[index] = succs
    return result


def predecessors(procedure: Procedure) -> Dict[int, List[int]]:
    preds: Dict[int, List[int]] = {i: [] for i in range(len(procedure.instructions))}
    for index, succs in successors(procedure).items():
        for succ in succs:
            preds[succ].append(index)
    return preds


@dataclass
class BasicBlock:
    start: int
    end: int  # inclusive index of the last instruction
    successors: List[int] = dc_field(default_factory=list)  # start indices of successor blocks

    def __len__(self) -> int:
        return self.end - self.start + 1


@dataclass
class ControlFlowGraph:
    procedure: Procedure
    blocks: Dict[int, BasicBlock] = dc_field(default_factory=dict)

    @property
    def entry(self) -> int:
        return 0

    def __len__(self) -> int:
        return len(self.blocks)


def build_cfg(procedure: Procedure) -> ControlFlowGraph:
    """Partition a procedure into basic blocks."""
    count = len(procedure.instructions)
    if count == 0:
        return ControlFlowGraph(procedure, {0: BasicBlock(0, 0)})
    succ_map = successors(procedure)

    leaders: Set[int] = {0}
    for index, instruction in enumerate(procedure.instructions):
        if isinstance(instruction, (Jmp, Jcc, Ret)):
            if index + 1 < count:
                leaders.add(index + 1)
            for succ in succ_map[index]:
                leaders.add(succ)
        if isinstance(instruction, LabelPseudo):
            leaders.add(index)

    ordered = sorted(leaders)
    blocks: Dict[int, BasicBlock] = {}
    for position, start in enumerate(ordered):
        end = (ordered[position + 1] - 1) if position + 1 < len(ordered) else count - 1
        blocks[start] = BasicBlock(start, end)

    starts = set(blocks)
    for block in blocks.values():
        last = block.end
        for succ in succ_map.get(last, []):
            # Find the block containing the successor instruction (it is a leader).
            if succ in starts:
                block.successors.append(succ)
            else:
                candidates = [s for s in starts if s <= succ]
                if candidates:
                    block.successors.append(max(candidates))
    return ControlFlowGraph(procedure, blocks)


def cfg_node_count(procedure: Procedure) -> int:
    """Number of basic blocks; the program-size unit used in Figures 11 and 12."""
    return len(build_cfg(procedure))
