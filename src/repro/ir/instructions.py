"""The machine-code instruction set of the IR substrate.

The reproduction targets a small, 32-bit, x86-flavoured register machine.  It
is deliberately *not* a byte-accurate x86 model: the paper's algorithm consumes
a recovered IR (CodeSurfer's), so what matters is that the substrate exhibits
the idioms that make machine-code type inference hard -- untyped registers,
stack slots, memory operands with base+offset addressing, cdecl-style calls,
flag-only computations, ``xor reg, reg`` constants -- while staying simple
enough to analyze exactly.

Registers: ``eax ebx ecx edx esi edi ebp esp`` (all 32-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union


REGISTERS = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")
WORD_SIZE = 4  # bytes
CONDITION_CODES = ("z", "nz", "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns")


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A machine register."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in REGISTERS:
            raise ValueError(f"unknown register {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + offset]`` of ``size`` bytes.

    ``base`` is a register name, a global symbol name, or ``None`` for an
    absolute address (rare; only produced by hand-written tests).
    """

    base: Optional[str] = None
    offset: int = 0
    size: int = WORD_SIZE
    index: Optional[str] = None  # optional index register (no scale)

    @property
    def is_register_based(self) -> bool:
        return self.base in REGISTERS

    @property
    def is_global(self) -> bool:
        return self.base is not None and self.base not in REGISTERS

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base)
        if self.index is not None:
            parts.append(self.index)
        if self.offset or not parts:
            parts.append(str(self.offset) if not parts or self.offset >= 0 else str(self.offset))
        inner = "+".join(parts).replace("+-", "-")
        prefix = {1: "byte ", 2: "word ", 4: "", 8: "qword "}.get(self.size, "")
        return f"{prefix}[{inner}]"


Operand = Union[Reg, Imm, Mem]


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instruction:
    """Base class.  ``defs``/``uses`` list the registers written/read."""

    def register_defs(self) -> Set[str]:
        return set()

    def register_uses(self) -> Set[str]:
        return set()

    def is_terminator(self) -> bool:
        return False

    def _mem_uses(self, operand: Operand) -> Set[str]:
        uses: Set[str] = set()
        if isinstance(operand, Mem):
            if operand.base in REGISTERS:
                uses.add(operand.base)
            if operand.index in REGISTERS:
                uses.add(operand.index)
        elif isinstance(operand, Reg):
            uses.add(operand.name)
        return uses


@dataclass(frozen=True)
class LabelPseudo(Instruction):
    """A label marking a jump target (pseudo-instruction)."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Mov(Instruction):
    dst: Operand
    src: Operand

    def register_defs(self) -> Set[str]:
        return {self.dst.name} if isinstance(self.dst, Reg) else set()

    def register_uses(self) -> Set[str]:
        uses = self._mem_uses(self.src)
        if isinstance(self.dst, Mem):
            uses |= self._mem_uses(self.dst)
        return uses

    def __str__(self) -> str:
        return f"mov {self.dst}, {self.src}"


@dataclass(frozen=True)
class Lea(Instruction):
    """Load effective address: ``dst := &[mem]`` (pointer arithmetic, no access)."""

    dst: Reg
    src: Mem

    def register_defs(self) -> Set[str]:
        return {self.dst.name}

    def register_uses(self) -> Set[str]:
        return self._mem_uses(self.src)

    def __str__(self) -> str:
        return f"lea {self.dst}, {self.src}"


@dataclass(frozen=True)
class BinaryOp(Instruction):
    """Two-operand arithmetic/logic: ``dst := dst op src``."""

    op: str  # add, sub, and, or, xor, imul, shl, shr
    dst: Reg
    src: Operand

    def register_defs(self) -> Set[str]:
        return {self.dst.name}

    def register_uses(self) -> Set[str]:
        uses = {self.dst.name} | self._mem_uses(self.src)
        if self.op == "xor" and isinstance(self.src, Reg) and self.src.name == self.dst.name:
            # xor reg, reg zeroes the register without reading it semantically.
            return set()
        return uses

    def __str__(self) -> str:
        return f"{self.op} {self.dst}, {self.src}"


@dataclass(frozen=True)
class Compare(Instruction):
    """cmp/test: sets flags only."""

    op: str  # cmp or test
    left: Operand
    right: Operand

    def register_uses(self) -> Set[str]:
        return self._mem_uses(self.left) | self._mem_uses(self.right)

    def __str__(self) -> str:
        return f"{self.op} {self.left}, {self.right}"


@dataclass(frozen=True)
class Push(Instruction):
    src: Operand

    def register_defs(self) -> Set[str]:
        return {"esp"}

    def register_uses(self) -> Set[str]:
        return {"esp"} | self._mem_uses(self.src)

    def __str__(self) -> str:
        return f"push {self.src}"


@dataclass(frozen=True)
class Pop(Instruction):
    dst: Reg

    def register_defs(self) -> Set[str]:
        return {self.dst.name, "esp"}

    def register_uses(self) -> Set[str]:
        return {"esp"}

    def __str__(self) -> str:
        return f"pop {self.dst}"


@dataclass(frozen=True)
class Call(Instruction):
    """Direct call to a named procedure (indirect calls use a register target)."""

    target: Union[str, Reg]

    def register_defs(self) -> Set[str]:
        # Caller-saved registers are clobbered; eax carries the return value.
        return {"eax", "ecx", "edx"}

    def register_uses(self) -> Set[str]:
        return {self.target.name} if isinstance(self.target, Reg) else set()

    def __str__(self) -> str:
        return f"call {self.target}"


@dataclass(frozen=True)
class Ret(Instruction):
    def is_terminator(self) -> bool:
        return True

    def register_uses(self) -> Set[str]:
        return {"eax"}

    def __str__(self) -> str:
        return "ret"


@dataclass(frozen=True)
class Jmp(Instruction):
    target: str

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"jmp {self.target}"


@dataclass(frozen=True)
class Jcc(Instruction):
    cond: str
    target: str

    def __str__(self) -> str:
        return f"j{self.cond} {self.target}"


@dataclass(frozen=True)
class Leave(Instruction):
    """``mov esp, ebp; pop ebp``."""

    def register_defs(self) -> Set[str]:
        return {"esp", "ebp"}

    def register_uses(self) -> Set[str]:
        return {"ebp"}

    def __str__(self) -> str:
        return "leave"


@dataclass(frozen=True)
class Nop(Instruction):
    def __str__(self) -> str:
        return "nop"


def is_zeroing_idiom(instruction: Instruction) -> bool:
    """``xor reg, reg`` / ``sub reg, reg``: a constant zero, not a typed value (section 2.1)."""
    return (
        isinstance(instruction, BinaryOp)
        and instruction.op in ("xor", "sub")
        and isinstance(instruction.src, Reg)
        and instruction.src.name == instruction.dst.name
    )
