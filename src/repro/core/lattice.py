"""The auxiliary lattice Lambda of atomic types and semantic tags (section 3.5).

Retypd parameterizes type inference by an uninterpreted lattice whose elements
are "type constants": symbolic C type names, API typedefs and user-defined
semantic classes such as ``#FileDescriptor``.  Sketch nodes are decorated with
lattice elements; covariant nodes accumulate joins of lower bounds and
contravariant nodes meets of upper bounds.

The implementation is a finite lattice given by an explicit Hasse diagram
(``parents`` maps an element to its immediate supertypes).  Joins and meets are
computed from ancestor/descendant sets; when a pair of elements has no unique
least upper bound the join falls back to the top element (and dually for meet),
which keeps the structure a (bounded) lattice.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

TOP = "TOP"
BOTTOM = "BOTTOM"


class TypeLattice:
    """A finite bounded lattice of atomic type names.

    Parameters
    ----------
    parents:
        Mapping from element name to the names of its immediate supertypes.
        ``TOP`` and ``BOTTOM`` are added automatically: any element without
        declared parents gets ``TOP`` as parent, and ``BOTTOM`` is below
        everything.
    """

    def __init__(self, parents: Optional[Mapping[str, Sequence[str]]] = None) -> None:
        self._parents: Dict[str, Set[str]] = {TOP: set(), BOTTOM: set()}
        if parents:
            for element, element_parents in parents.items():
                self.add_element(element, element_parents)
        self._ancestors_cache: Dict[str, FrozenSet[str]] = {}

    # -- construction ----------------------------------------------------------

    def add_element(self, element: str, parents: Sequence[str] = ()) -> None:
        """Add ``element`` with the given immediate supertypes (default: TOP).

        This is the user-extension hook described in section 2.8: semantic tags
        (``#FileDescriptor``) and ad-hoc API hierarchies (HANDLE typedefs) are
        added at run time.
        """
        if element in (TOP, BOTTOM):
            return
        self._parents.setdefault(element, set())
        actual_parents = [p for p in parents if p != BOTTOM] or [TOP]
        for parent in actual_parents:
            if parent not in self._parents:
                self._parents[parent] = {TOP}
            if parent != element:
                self._parents[element].add(parent)
        if not self._parents[element]:
            self._parents[element].add(TOP)
        self._ancestors_cache = {}

    def add_tag(self, tag: str, parent: str = TOP) -> None:
        """Add a semantic tag (by convention tags start with ``#``)."""
        self.add_element(tag, [parent])

    # -- membership ------------------------------------------------------------

    @property
    def elements(self) -> Set[str]:
        return set(self._parents)

    def __contains__(self, element: str) -> bool:
        return element in self._parents

    def is_constant(self, name: str) -> bool:
        """True when ``name`` denotes a type constant (a lattice element)."""
        return name in self._parents

    def fingerprint(self) -> str:
        """A stable content hash of the Hasse diagram.

        Two lattices with the same elements and the same immediate-supertype
        relation fingerprint identically; the summary store mixes this into its
        cache keys so summaries computed under one lattice are never reused
        under another.
        """
        payload = ";".join(
            f"{element}<{','.join(sorted(parents))}"
            for element, parents in sorted(self._parents.items())
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization (process-boundary round trip) -----------------------------

    def to_json(self) -> Dict[str, List[str]]:
        """The Hasse diagram as a JSON-able mapping, inverse of :meth:`from_json`.

        Elements map to their sorted immediate supertypes; two lattices that
        :meth:`fingerprint` identically serialize identically.  This is how the
        process-pool backend ships a (possibly user-extended) lattice to its
        worker processes without pickling.
        """
        return {
            element: sorted(parents)
            for element, parents in sorted(self._parents.items())
            if element not in (TOP, BOTTOM)
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Sequence[str]]) -> "TypeLattice":
        """Rebuild a lattice serialized by :meth:`to_json`, exactly.

        The Hasse diagram is restored verbatim rather than replayed through
        :meth:`add_element`, because that hook auto-parents forward references
        under ``TOP`` -- correct for incremental construction, but it would
        make the round trip lossy (and the fingerprint unstable) whenever the
        serialized order lists a child before its parent.
        """
        out = cls()
        for element in data:
            out._parents.setdefault(element, set())
        for element, parents in data.items():
            for parent in parents:
                out._parents.setdefault(parent, set())
                if parent != element:
                    out._parents[element].add(parent)
        out._ancestors_cache = {}
        return out

    # -- order -----------------------------------------------------------------

    def _ancestors(self, element: str) -> FrozenSet[str]:
        """All elements >= element (inclusive), excluding the implicit TOP handling."""
        if element in self._ancestors_cache:
            return self._ancestors_cache[element]
        if element == BOTTOM:
            result = frozenset(self._parents)
        else:
            seen: Set[str] = {element, TOP}
            stack = [element]
            while stack:
                current = stack.pop()
                for parent in self._parents.get(current, ()):
                    if parent not in seen:
                        seen.add(parent)
                        stack.append(parent)
            result = frozenset(seen)
        self._ancestors_cache[element] = result
        return result

    def leq(self, lower: str, upper: str) -> bool:
        """``lower <: upper`` in the lattice order."""
        if lower == BOTTOM or upper == TOP:
            return True
        if lower == TOP:
            return upper == TOP
        if upper == BOTTOM:
            return lower == BOTTOM
        return upper in self._ancestors(lower)

    def comparable(self, a: str, b: str) -> bool:
        return self.leq(a, b) or self.leq(b, a)

    # -- lattice operations ------------------------------------------------------

    def join(self, a: str, b: str) -> str:
        """Least upper bound; falls back to TOP when no unique lub exists."""
        if a == b:
            return a
        if a == BOTTOM:
            return b
        if b == BOTTOM:
            return a
        if a == TOP or b == TOP:
            return TOP
        common = self._ancestors(a) & self._ancestors(b)
        # Minimal elements of the common-ancestor set.
        minimal = [
            c
            for c in common
            if not any(other != c and self.leq(other, c) for other in common)
        ]
        if len(minimal) == 1:
            return minimal[0]
        return TOP

    def meet(self, a: str, b: str) -> str:
        """Greatest lower bound; falls back to BOTTOM when no unique glb exists."""
        if a == b:
            return a
        if a == TOP:
            return b
        if b == TOP:
            return a
        if a == BOTTOM or b == BOTTOM:
            return BOTTOM
        below_a = {e for e in self._parents if self.leq(e, a)}
        below_b = {e for e in self._parents if self.leq(e, b)}
        common = below_a & below_b
        maximal = [
            c
            for c in common
            if not any(other != c and self.leq(c, other) for other in common)
        ]
        if len(maximal) == 1:
            return maximal[0]
        return BOTTOM

    def join_all(self, elements: Iterable[str]) -> str:
        result = BOTTOM
        for element in elements:
            result = self.join(result, element)
        return result

    def meet_all(self, elements: Iterable[str]) -> str:
        result = TOP
        for element in elements:
            result = self.meet(result, element)
        return result

    # -- consistency / display ---------------------------------------------------

    def antichain(self, elements: Iterable[str]) -> List[str]:
        """Merge comparable elements, keeping the minimal ones (Example 4.2).

        Used when deciding between a union type and a generic type: comparable
        scalar constraints are merged and the resulting antichain becomes the
        members of the union.
        """
        kept: List[str] = []
        for element in sorted(set(elements)):
            if element in (TOP, BOTTOM):
                continue
            replaced = False
            for i, existing in enumerate(kept):
                if self.leq(element, existing):
                    kept[i] = element
                    replaced = True
                    break
                if self.leq(existing, element):
                    replaced = True
                    break
            if not replaced:
                kept.append(element)
        return sorted(set(kept))

    def check_scalar(self, lower: str, upper: str) -> bool:
        """The scalar consistency check ``kappa1 <: kappa2`` of section 3."""
        return self.leq(lower, upper)


# ---------------------------------------------------------------------------
# The default lattice used by the reproduction.
# ---------------------------------------------------------------------------

#: Immediate-supertype table for the default lattice.  It mixes C-like scalar
#: types (the TIE-style stratification used for the evaluation metrics) with
#: typedefs and semantic tags, as described in sections 2.8 and 3.5.
_DEFAULT_PARENTS: Dict[str, List[str]] = {
    # numeric tower
    "num64": [TOP],
    "num32": ["num64"],
    "num16": ["num32"],
    "num8": ["num16"],
    "int": ["num32"],
    "uint": ["num32"],
    "int64": ["num64"],
    "uint64": ["num64"],
    "int16": ["num16"],
    "uint16": ["num16"],
    "int8": ["num8"],
    "uint8": ["num8"],
    "char": ["int8"],
    "bool": ["num8"],
    "float": [TOP],
    "double": [TOP],
    # pointers-as-scalars and code
    "ptr": ["num32"],
    "code": [TOP],
    # common typedefs (ad-hoc subtyping, section 2.8)
    "size_t": ["uint"],
    "ssize_t": ["int"],
    "FILE": [TOP],
    "HANDLE": ["ptr"],
    "HGDI": ["HANDLE"],
    "HBRUSH": ["HGDI"],
    "HPEN": ["HGDI"],
    "SOCKET": ["uint"],
    "WPARAM": ["num32"],
    "LPARAM": ["num32"],
    "DWORD": ["num32"],
    # semantic tags (Figure 2, section 3.5)
    "#FileDescriptor": ["int"],
    "#SuccessZ": ["int"],
    "#signal-number": ["int"],
    "#errno": ["int"],
    "str": ["ptr"],
    "url": ["str"],
}


def default_lattice() -> TypeLattice:
    """The lattice Lambda used across examples, tests and the evaluation."""
    return TypeLattice(_DEFAULT_PARENTS)
