"""A small model of C types.

This is the vocabulary shared by three parts of the system:

* the *display* phase of Retypd (section 4.3) emits these types to the user;
* the mini-C frontend records them as ground truth when it erases types;
* the evaluation metrics (TIE distance, pointer accuracy, conservativeness,
  const recall) compare inferred types against ground-truth types.

Only the structure needed for those tasks is modelled: sized integers,
floats, void, pointers with ``const`` flags, named structs with offset-mapped
fields, unions, and function types.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class CType:
    """Base class for all C types."""

    #: size of a value of this type in bits; ``None`` when unknown.
    size_bits: Optional[int] = None

    def pointer_depth(self) -> int:
        """Number of pointer levels (used by the multi-level pointer metric)."""
        return 0

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class UnknownType(CType):
    """A type about which nothing is known (the lattice TOP / BOTTOM image)."""

    size_bits: Optional[int] = None

    def __str__(self) -> str:
        if self.size_bits:
            return f"unknown{self.size_bits}"
        return "unknown"


@dataclass(frozen=True)
class VoidType(CType):
    size_bits: Optional[int] = None

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    size_bits: int = 32
    signed: bool = True

    def __str__(self) -> str:
        names = {8: "char", 16: "short", 32: "int", 64: "long long"}
        base = names.get(self.size_bits, f"int{self.size_bits}")
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class BoolType(CType):
    size_bits: int = 8

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class FloatType(CType):
    size_bits: int = 32

    def __str__(self) -> str:
        return "float" if self.size_bits == 32 else "double"


@dataclass(frozen=True)
class CodeType(CType):
    """The type of a code address (a function entry point)."""

    size_bits: Optional[int] = 32

    def __str__(self) -> str:
        return "code"


@dataclass(frozen=True)
class TypedefType(CType):
    """A named alias carrying a semantic purpose (FILE, HANDLE, #FileDescriptor...)."""

    name: str
    underlying: CType = dc_field(default_factory=lambda: IntType(32))

    @property
    def size_bits(self) -> Optional[int]:  # type: ignore[override]
        return self.underlying.size_bits

    def pointer_depth(self) -> int:
        return self.underlying.pointer_depth()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = dc_field(default_factory=UnknownType)
    const: bool = False
    size_bits: int = 32

    def pointer_depth(self) -> int:
        return 1 + self.pointee.pointer_depth()

    def __str__(self) -> str:
        prefix = "const " if self.const else ""
        return f"{prefix}{self.pointee} *"


@dataclass(frozen=True)
class StructField:
    offset: int
    ctype: CType
    name: str = ""

    def __str__(self) -> str:
        name = self.name or f"field_{self.offset}"
        return f"{self.ctype} {name}; /* offset {self.offset} */"


@dataclass(frozen=True)
class StructType(CType):
    name: str = ""
    fields: Tuple[StructField, ...] = ()

    @property
    def size_bits(self) -> Optional[int]:  # type: ignore[override]
        total = 0
        for field_ in self.fields:
            size = field_.ctype.size_bits or 32
            total = max(total, field_.offset * 8 + size)
        return total or None

    def field_at(self, offset: int) -> Optional[StructField]:
        for field_ in self.fields:
            if field_.offset == offset:
                return field_
        return None

    def __str__(self) -> str:
        if self.name and not self.fields:
            return f"struct {self.name}"
        inner = " ".join(str(f) for f in self.fields)
        tag = f" {self.name}" if self.name else ""
        return f"struct{tag} {{ {inner} }}"


@dataclass(frozen=True)
class StructRef(CType):
    """A reference to a named struct (used to express recursive types)."""

    name: str
    size_bits: Optional[int] = None

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class UnionType(CType):
    members: Tuple[CType, ...] = ()

    @property
    def size_bits(self) -> Optional[int]:  # type: ignore[override]
        sizes = [m.size_bits for m in self.members if m.size_bits]
        return max(sizes) if sizes else None

    def __str__(self) -> str:
        inner = "; ".join(str(m) for m in self.members)
        return f"union {{ {inner} }}"


@dataclass(frozen=True)
class FunctionType(CType):
    params: Tuple[CType, ...] = ()
    ret: CType = dc_field(default_factory=VoidType)
    size_bits: Optional[int] = None

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.ret} (*)({params})"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType = dc_field(default_factory=UnknownType)
    count: Optional[int] = None

    @property
    def size_bits(self) -> Optional[int]:  # type: ignore[override]
        if self.count is None or self.element.size_bits is None:
            return None
        return self.count * self.element.size_bits

    def __str__(self) -> str:
        count = self.count if self.count is not None else ""
        return f"{self.element}[{count}]"


# -- serialization (wire / summary-store round trip) ---------------------------------


def ctype_to_json(ctype: CType) -> Dict[str, object]:
    """A JSON-able representation of a C type, the inverse of :func:`ctype_from_json`.

    Used by the type-query server protocol (and the one-shot CLI) to ship
    displayed types -- including recursive structs, expressed via
    :class:`StructRef` -- to remote clients.
    """
    if isinstance(ctype, VoidType):
        return {"k": "void"}
    if isinstance(ctype, BoolType):
        return {"k": "bool"}
    if isinstance(ctype, IntType):
        return {"k": "int", "size": ctype.size_bits, "signed": ctype.signed}
    if isinstance(ctype, FloatType):
        return {"k": "float", "size": ctype.size_bits}
    if isinstance(ctype, CodeType):
        return {"k": "code"}
    if isinstance(ctype, TypedefType):
        return {
            "k": "typedef",
            "name": ctype.name,
            "underlying": ctype_to_json(ctype.underlying),
        }
    if isinstance(ctype, PointerType):
        return {
            "k": "ptr",
            "pointee": ctype_to_json(ctype.pointee),
            "const": ctype.const,
            "size": ctype.size_bits,
        }
    if isinstance(ctype, StructType):
        return {
            "k": "struct",
            "name": ctype.name,
            "fields": [
                {"offset": f.offset, "name": f.name, "type": ctype_to_json(f.ctype)}
                for f in ctype.fields
            ],
        }
    if isinstance(ctype, StructRef):
        return {"k": "structref", "name": ctype.name}
    if isinstance(ctype, UnionType):
        return {"k": "union", "members": [ctype_to_json(m) for m in ctype.members]}
    if isinstance(ctype, FunctionType):
        return {
            "k": "func",
            "params": [ctype_to_json(p) for p in ctype.params],
            "ret": ctype_to_json(ctype.ret),
        }
    if isinstance(ctype, ArrayType):
        return {
            "k": "array",
            "element": ctype_to_json(ctype.element),
            "count": ctype.count,
        }
    if isinstance(ctype, UnknownType):
        return {"k": "unknown", "size": ctype.size_bits}
    raise TypeError(f"cannot serialize C type {ctype!r}")


def ctype_from_json(data: Dict[str, object]) -> CType:
    """Rebuild a C type serialized by :func:`ctype_to_json`."""
    kind = data.get("k")
    if kind == "void":
        return VoidType()
    if kind == "bool":
        return BoolType()
    if kind == "int":
        return IntType(data["size"], data["signed"])
    if kind == "float":
        return FloatType(data["size"])
    if kind == "code":
        return CodeType()
    if kind == "typedef":
        return TypedefType(data["name"], ctype_from_json(data["underlying"]))
    if kind == "ptr":
        return PointerType(
            ctype_from_json(data["pointee"]), const=data["const"], size_bits=data["size"]
        )
    if kind == "struct":
        return StructType(
            data["name"],
            tuple(
                StructField(f["offset"], ctype_from_json(f["type"]), f["name"])
                for f in data["fields"]
            ),
        )
    if kind == "structref":
        return StructRef(data["name"])
    if kind == "union":
        return UnionType(tuple(ctype_from_json(m) for m in data["members"]))
    if kind == "func":
        return FunctionType(
            tuple(ctype_from_json(p) for p in data["params"]),
            ctype_from_json(data["ret"]),
        )
    if kind == "array":
        return ArrayType(ctype_from_json(data["element"]), data["count"])
    if kind == "unknown":
        return UnknownType(data.get("size"))
    raise ValueError(f"unknown C type payload kind {kind!r}")


# -- helpers -------------------------------------------------------------------------


def render_function(name: str, ftype: FunctionType, param_names: Sequence[str] = ()) -> str:
    """Render a function declaration in C syntax."""
    rendered = []
    for i, param in enumerate(ftype.params):
        pname = param_names[i] if i < len(param_names) else f"arg{i}"
        rendered.append(f"{param} {pname}")
    params = ", ".join(rendered) or "void"
    return f"{ftype.ret} {name}({params});"


def strip_typedefs(ctype: CType) -> CType:
    """Remove typedef wrappers (used when metrics compare structure)."""
    while isinstance(ctype, TypedefType):
        ctype = ctype.underlying
    return ctype


def is_pointer(ctype: CType) -> bool:
    return isinstance(strip_typedefs(ctype), PointerType)


def is_integral(ctype: CType) -> bool:
    stripped = strip_typedefs(ctype)
    return isinstance(stripped, (IntType, BoolType))


CHAR = IntType(8, True)
UCHAR = IntType(8, False)
SHORT = IntType(16, True)
INT = IntType(32, True)
UINT = IntType(32, False)
LONGLONG = IntType(64, True)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
VOID = VoidType()
UNKNOWN = UnknownType()
CHAR_PTR = PointerType(CHAR)
VOID_PTR = PointerType(VoidType())
