"""The type-inference driver: INFERPROCTYPES / SOLVE over call-graph SCCs.

This module glues the pieces of the core together, following Algorithms F.1
and F.2:

1. Strongly-connected components of the call graph are processed bottom-up.
2. For every SCC the per-procedure constraint sets are combined; callsites to
   already-processed procedures instantiate the callee's *type scheme* with a
   callsite tag (polymorphism), calls within the SCC are linked monomorphically.
3. The combined constraint set is solved: shapes via the Steensgaard quotient
   (Theorem 3.1), lattice decorations via the saturated constraint graph
   (Appendix D.4).
4. Each procedure's formal-in/out sketches are read off the solution and
   serialized back into a compact type scheme (Figure 2 / Appendix H) to be
   instantiated by the procedure's callers.

The solver is intentionally independent of the machine-code IR: its input is a
:class:`ProcedureTypingInput` per procedure (constraints + formal variables +
callsite descriptors), which the :mod:`repro.typegen` package produces from
disassembly and which tests can construct by hand.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..obs.trace import get_tracer
from .constraints import ConstraintSet, SubtypeConstraint
from .graph import ConstraintGraph
from .labels import InLabel, Label, OutLabel, Variance, path_variance
from .lattice import BOTTOM, TOP, TypeLattice, default_lattice
from .saturation import saturate
from .schemes import TypeScheme
from .shapes import ShapeInference, infer_shapes
from .simplify import derive_constant_bounds
from .sketches import Sketch
from .variables import DerivedTypeVariable


@dataclass
class SolveStats:
    """Per-stage timings and counters for one solve (or an aggregate of many).

    The stages mirror the core algorithm: ``graph`` is constraint-graph
    construction, ``saturate`` the worklist fixpoint of Algorithm D.2,
    ``simplify`` the path queries over the saturated graph (the Appendix D.4
    constant-bound derivation feeding lattice decorations), and ``sketch`` the
    Steensgaard shape inference plus scheme/sketch serialization.  Instances
    merge, so the service can aggregate per-SCC records into one program-level
    record and the server can report where a live daemon spends its time.
    """

    graph_seconds: float = 0.0
    saturate_seconds: float = 0.0
    simplify_seconds: float = 0.0
    sketch_seconds: float = 0.0
    #: process-backend codec overhead: task encode (parent) + task decode and
    #: summary encode (worker).  Kept out of ``total_seconds`` -- it is
    #: transport overhead around the solve, not a solve stage -- but merged,
    #: serialized and folded into the metrics registry like the stages so the
    #: stats verbs show where backend overhead actually goes.
    codec_seconds: float = 0.0
    graph_nodes: int = 0
    graph_edges: int = 0
    saturation_edges: int = 0
    constant_bounds: int = 0
    sccs_timed: int = 0
    #: SCCs whose process-pool worker died and were requeued on the in-process
    #: path (always 0 for the serial and thread backends).
    worker_failed: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.graph_seconds
            + self.saturate_seconds
            + self.simplify_seconds
            + self.sketch_seconds
        )

    def merge(self, other: "SolveStats") -> None:
        self.graph_seconds += other.graph_seconds
        self.saturate_seconds += other.saturate_seconds
        self.simplify_seconds += other.simplify_seconds
        self.sketch_seconds += other.sketch_seconds
        self.codec_seconds += other.codec_seconds
        self.graph_nodes += other.graph_nodes
        self.graph_edges += other.graph_edges
        self.saturation_edges += other.saturation_edges
        self.constant_bounds += other.constant_bounds
        self.sccs_timed += other.sccs_timed
        self.worker_failed += other.worker_failed

    def to_json(self) -> Dict[str, float]:
        """A flat JSON-able record (the shape served by the server's ``stats`` verb)."""
        return {
            "graph_seconds": self.graph_seconds,
            "saturate_seconds": self.saturate_seconds,
            "simplify_seconds": self.simplify_seconds,
            "sketch_seconds": self.sketch_seconds,
            "codec_seconds": self.codec_seconds,
            "total_seconds": self.total_seconds,
            "graph_nodes": self.graph_nodes,
            "graph_edges": self.graph_edges,
            "saturation_edges": self.saturation_edges,
            "constant_bounds": self.constant_bounds,
            "sccs_timed": self.sccs_timed,
            "worker_failed": self.worker_failed,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, float]) -> "SolveStats":
        """Rebuild a record serialized by :meth:`to_json` (used by the process
        backend to carry per-SCC worker timings back across the pipe)."""
        out = cls()
        for field_name in (
            "graph_seconds",
            "saturate_seconds",
            "simplify_seconds",
            "sketch_seconds",
            "codec_seconds",
            "graph_nodes",
            "graph_edges",
            "saturation_edges",
            "constant_bounds",
            "sccs_timed",
            "worker_failed",
        ):
            if field_name in data:
                setattr(out, field_name, data[field_name])
        return out


@dataclass(frozen=True)
class Callsite:
    """One call instruction: the callee's name and the base variable used for it."""

    callee: str
    base: str


@dataclass
class ProcedureTypingInput:
    """Everything the solver needs to know about one procedure."""

    name: str
    constraints: ConstraintSet
    formal_ins: Tuple[DerivedTypeVariable, ...] = ()
    formal_outs: Tuple[DerivedTypeVariable, ...] = ()
    callsites: Tuple[Callsite, ...] = ()


@dataclass
class ProcedureResult:
    """Inference output for one procedure."""

    name: str
    scheme: TypeScheme
    formal_in_sketches: Dict[DerivedTypeVariable, Sketch] = dc_field(default_factory=dict)
    formal_out_sketches: Dict[DerivedTypeVariable, Sketch] = dc_field(default_factory=dict)
    shapes: Optional[ShapeInference] = None

    def sketch_for(self, dtv: DerivedTypeVariable) -> Optional[Sketch]:
        if dtv in self.formal_in_sketches:
            return self.formal_in_sketches[dtv]
        if dtv in self.formal_out_sketches:
            return self.formal_out_sketches[dtv]
        if self.shapes is not None and self.shapes.lookup(dtv) is not None:
            return self.shapes.sketch_for(dtv)
        return None


@dataclass
class SolverConfig:
    """Tunable knobs for the inference pipeline."""

    #: use the saturated-graph queries of Appendix D.4 for lattice decorations
    #: (direction-aware); when False, the coarser per-class bounds of the
    #: Steensgaard quotient are kept.
    precise_bounds: bool = True
    #: maximum label depth explored when serializing schemes.
    max_scheme_depth: int = 6
    #: run the REFINEPARAMETERS specialization pass (Algorithm F.3).
    refine_parameters: bool = True
    #: instantiate callee schemes polymorphically (fresh existentials per
    #: callsite).  The unification/TIE baselines set this to False.
    polymorphic: bool = True


class Solver:
    """Whole-program type inference over a set of procedures."""

    def __init__(
        self,
        lattice: Optional[TypeLattice] = None,
        extern_schemes: Optional[Mapping[str, TypeScheme]] = None,
        config: Optional[SolverConfig] = None,
    ) -> None:
        self.lattice = lattice or default_lattice()
        self.extern_schemes: Dict[str, TypeScheme] = dict(extern_schemes or {})
        self.config = config or SolverConfig()
        #: statistics collected during the last solve (for the scaling figures)
        self.stats: Dict[str, float] = {}
        #: per-stage timing record of the last :meth:`solve_program` run.
        self.last_stage_stats: Optional[SolveStats] = None

    # -- public API ---------------------------------------------------------------------

    def solve_program(
        self, procedures: Mapping[str, ProcedureTypingInput]
    ) -> Dict[str, ProcedureResult]:
        """Infer type schemes and sketches for every procedure."""
        order = self.scc_order(procedures)
        results: Dict[str, ProcedureResult] = {}
        constraint_count = 0
        scc_timings: List[Tuple[str, float]] = []
        stage_stats = SolveStats()
        for scc in order:
            scc_start = time.perf_counter()
            scc_results = self.solve_scc(scc, procedures, results, stats=stage_stats)
            scc_timings.append((",".join(scc), time.perf_counter() - scc_start))
            results.update(scc_results)
            for name in scc:
                constraint_count += len(procedures[name].constraints)
        self.stats["constraints"] = constraint_count
        self.stats["procedures"] = len(procedures)
        self.stats["scc_count"] = len(order)
        self.stats["scc_seconds"] = scc_timings
        self.stats["stage_seconds"] = stage_stats.to_json()
        self.last_stage_stats = stage_stats
        if scc_timings:
            self.stats["max_scc_seconds"] = max(seconds for _, seconds in scc_timings)
        if self.config.refine_parameters:
            self._refine_parameters(procedures, results)
        return results

    def solve_single(self, procedure: ProcedureTypingInput) -> ProcedureResult:
        """Convenience wrapper for a standalone procedure."""
        return self.solve_program({procedure.name: procedure})[procedure.name]

    # -- call graph ----------------------------------------------------------------------

    def scc_order(
        self, procedures: Mapping[str, ProcedureTypingInput]
    ) -> List[List[str]]:
        """Bottom-up (callee-first) list of SCCs of the call graph."""
        return tarjan_sccs(call_edges(procedures))

    # Backwards-compatible private aliases (pre-service-layer spelling).
    _scc_order = scc_order

    # -- per-SCC solving -----------------------------------------------------------------------

    def solve_scc(
        self,
        scc: Sequence[str],
        procedures: Mapping[str, ProcedureTypingInput],
        results: Mapping[str, ProcedureResult],
        stats: Optional[SolveStats] = None,
    ) -> Dict[str, ProcedureResult]:
        """Solve one SCC of the call graph given the results of its callees.

        ``results`` must already contain a :class:`ProcedureResult` for every
        callee outside ``scc`` (bottom-up discipline); the returned mapping
        covers exactly the members of ``scc``.  This is the unit of work the
        service layer schedules, caches and re-solves incrementally.  When
        ``stats`` is given, per-stage timings and counters are accumulated
        into it (callers aggregating across SCCs pass one shared record; the
        service passes a fresh record per SCC so waves can run on threads).
        """
        tracer = get_tracer()
        with tracer.span("solver.solve_scc", scc=",".join(scc)) as scc_span:
            scc_set = set(scc)
            combined = ConstraintSet()
            for name in scc:
                proc = procedures[name]
                combined.update(proc.constraints)
                for callsite in proc.callsites:
                    combined.update(
                        self._callsite_constraints(callsite, scc_set, procedures, results)
                    )
            scc_span.set("constraints", len(combined))

            shapes, graph = self._solve_constraints(combined, stats)

            sketch_start = time.perf_counter()
            out: Dict[str, ProcedureResult] = {}
            with tracer.span("solver.sketch", scc=",".join(scc)):
                for name in scc:
                    proc = procedures[name]
                    scheme = scheme_from_shapes(
                        proc, shapes, self.lattice, max_depth=self.config.max_scheme_depth
                    )
                    in_sketches = {
                        dtv: shapes.sketch_for(dtv)
                        for dtv in proc.formal_ins
                        if shapes.lookup(dtv) is not None
                    }
                    out_sketches = {
                        dtv: shapes.sketch_for(dtv)
                        for dtv in proc.formal_outs
                        if shapes.lookup(dtv) is not None
                    }
                    out[name] = ProcedureResult(
                        name=name,
                        scheme=scheme,
                        formal_in_sketches=in_sketches,
                        formal_out_sketches=out_sketches,
                        shapes=shapes,
                    )
            if stats is not None:
                stats.sketch_seconds += time.perf_counter() - sketch_start
                stats.sccs_timed += 1
            return out

    _solve_scc = solve_scc

    def _callsite_constraints(
        self,
        callsite: Callsite,
        scc_set: Set[str],
        procedures: Mapping[str, ProcedureTypingInput],
        results: Mapping[str, ProcedureResult],
    ) -> ConstraintSet:
        """Constraints contributed by one callsite (scheme instantiation)."""
        out = ConstraintSet()
        callee = callsite.callee
        if callee in results:
            if self.config.polymorphic:
                out.update(results[callee].scheme.instantiate_as(callsite.base))
            else:
                out.update(results[callee].scheme.instantiate_monomorphic(callsite.base))
        elif callee in scc_set:
            # Monomorphic link within a recursive SCC: identify the callsite
            # base with the callee's own variable.
            here = DerivedTypeVariable(callsite.base)
            there = DerivedTypeVariable(callee)
            out.add_subtype(here, there)
            out.add_subtype(there, here)
        elif callee in self.extern_schemes:
            scheme = self.extern_schemes[callee]
            if self.config.polymorphic:
                out.update(scheme.instantiate_as(callsite.base))
            else:
                out.update(scheme.instantiate_monomorphic(callsite.base))
        # Unknown externals contribute nothing.
        return out

    def _solve_constraints(
        self, constraints: ConstraintSet, stats: Optional[SolveStats] = None
    ) -> Tuple[ShapeInference, Optional[ConstraintGraph]]:
        timer = time.perf_counter
        tracer = get_tracer()

        start = timer()
        with tracer.span("solver.shapes"):
            shapes = infer_shapes(constraints, self.lattice)
        sketch_seconds = timer() - start

        graph: Optional[ConstraintGraph] = None
        graph_seconds = saturate_seconds = simplify_seconds = 0.0
        saturation_edges = bound_count = 0
        if self.config.precise_bounds:
            start = timer()
            with tracer.span("solver.graph") as graph_span:
                graph = ConstraintGraph(constraints)
                graph_span.set("nodes", graph.num_nodes)
            graph_seconds = timer() - start

            start = timer()
            with tracer.span("solver.saturate") as saturate_span:
                saturation_edges = saturate(graph)
                saturate_span.set("edges_added", saturation_edges)
            saturate_seconds = timer() - start

            start = timer()
            with tracer.span("solver.simplify") as simplify_span:
                shapes.clear_bounds()
                bounds = derive_constant_bounds(graph, self.lattice)
                bound_count = len(bounds)
                simplify_span.set("constant_bounds", bound_count)
                for dtv, kind, constant in bounds:
                    cell = shapes.lookup(dtv)
                    if cell is None:
                        continue
                    if kind == "lower":
                        shapes.apply_lower(cell, constant)
                    else:
                        shapes.apply_upper(cell, constant)
            simplify_seconds = timer() - start
        if stats is not None:
            stats.sketch_seconds += sketch_seconds
            stats.graph_seconds += graph_seconds
            stats.saturate_seconds += saturate_seconds
            stats.simplify_seconds += simplify_seconds
            stats.saturation_edges += saturation_edges
            stats.constant_bounds += bound_count
            if graph is not None:
                stats.graph_nodes += graph.num_nodes
                stats.graph_edges += len(graph)
        return shapes, graph

    # -- REFINEPARAMETERS (Algorithm F.3) ------------------------------------------------------

    def _refine_parameters(
        self,
        procedures: Mapping[str, ProcedureTypingInput],
        results: Dict[str, ProcedureResult],
    ) -> None:
        """Specialize formal sketches to the most specific use seen at callsites."""
        contributions: List[RefinementContribution] = []
        for caller_name, caller in procedures.items():
            contributions.extend(
                collect_caller_contributions(caller, results.get(caller_name), results)
            )
        apply_refinement(results, contributions)


# ---------------------------------------------------------------------------
# REFINEPARAMETERS pieces (Algorithm F.3), usable SCC-by-SCC
# ---------------------------------------------------------------------------
#
# The refinement pass is split in two so the service layer can cache the
# sketch *contributions* a caller makes to its callees' formals (computed from
# the caller's solved shapes, which are not serialized) and re-apply them as
# pure sketch arithmetic on warm runs.


@dataclass
class RefinementContribution:
    """One callsite's actual-parameter sketch feeding a callee's formal."""

    caller: str
    callee: str
    formal: DerivedTypeVariable
    kind: str  # "in" (actual argument) or "out" (use of the returned value)
    sketch: Sketch


def collect_caller_contributions(
    caller: ProcedureTypingInput,
    caller_result: Optional[ProcedureResult],
    results: Mapping[str, ProcedureResult],
) -> List[RefinementContribution]:
    """Actual-in / actual-out sketches ``caller`` contributes at its callsites.

    Requires the caller's solved shapes, so it must run while (or right after)
    the caller's SCC is solved; the callees' results only provide the *set* of
    formal variables, which is stable under refinement and caching.
    """
    out: List[RefinementContribution] = []
    if caller_result is None or caller_result.shapes is None:
        return out
    shapes = caller_result.shapes
    for callsite in caller.callsites:
        callee_result = results.get(callsite.callee)
        if callee_result is None:
            continue
        for formal in callee_result.formal_in_sketches:
            actual = formal.with_base(callsite.base)
            if shapes.lookup(actual) is not None:
                out.append(
                    RefinementContribution(
                        caller.name, callsite.callee, formal, "in", shapes.sketch_for(actual)
                    )
                )
        for formal in callee_result.formal_out_sketches:
            actual = formal.with_base(callsite.base)
            if shapes.lookup(actual) is not None:
                out.append(
                    RefinementContribution(
                        caller.name, callsite.callee, formal, "out", shapes.sketch_for(actual)
                    )
                )
    return out


def apply_refinement(
    results: Mapping[str, ProcedureResult],
    contributions: Iterable[RefinementContribution],
) -> None:
    """Fold callsite contributions into the callees' formal sketches.

    Formal-in sketches move down to the meet with the join of the actuals;
    formal-out sketches move up to the join with the meet of the observed
    uses.  Contribution order is preserved so results are deterministic.
    """
    actual_ins: Dict[Tuple[str, DerivedTypeVariable], List[Sketch]] = {}
    actual_outs: Dict[Tuple[str, DerivedTypeVariable], List[Sketch]] = {}
    for contribution in contributions:
        bucket = actual_ins if contribution.kind == "in" else actual_outs
        bucket.setdefault((contribution.callee, contribution.formal), []).append(
            contribution.sketch
        )

    for (callee, formal), sketches in actual_ins.items():
        result = results[callee]
        current = result.formal_in_sketches.get(formal)
        if current is None or not sketches:
            continue
        joined = sketches[0]
        for sketch in sketches[1:]:
            joined = joined.join(sketch)
        result.formal_in_sketches[formal] = current.meet(joined)
    for (callee, formal), sketches in actual_outs.items():
        result = results[callee]
        current = result.formal_out_sketches.get(formal)
        if current is None or not sketches:
            continue
        met = sketches[0]
        for sketch in sketches[1:]:
            met = met.meet(sketch)
        result.formal_out_sketches[formal] = current.join(met)


def call_edges(procedures: Mapping[str, ProcedureTypingInput]) -> Dict[str, Set[str]]:
    """Call-graph edges between defined procedures, read off the callsites."""
    edges: Dict[str, Set[str]] = {name: set() for name in procedures}
    for name, proc in procedures.items():
        for callsite in proc.callsites:
            if callsite.callee in procedures:
                edges[name].add(callsite.callee)
    return edges


# ---------------------------------------------------------------------------
# Scheme serialization (Figure 2 / Appendix H)
# ---------------------------------------------------------------------------


def scheme_from_shapes(
    procedure: ProcedureTypingInput,
    shapes: ShapeInference,
    lattice: TypeLattice,
    max_depth: int = 6,
) -> TypeScheme:
    """Serialize the solved shapes of a procedure's formals into a type scheme.

    Existential variables are introduced for sketch nodes that are shared
    (in-degree >= 2) or recursive, which yields exactly the compact presentation
    of Figure 2: ``F.in_stack0 <= t``, ``t.load.sigma32@0 <= t``, bounds on the
    remaining paths.
    """
    constraints = ConstraintSet()
    quantified: Set[str] = set()

    formals: List[Tuple[DerivedTypeVariable, Variance]] = []
    for dtv in procedure.formal_ins:
        formals.append((dtv, Variance.CONTRAVARIANT))
    for dtv in procedure.formal_outs:
        formals.append((dtv, Variance.COVARIANT))

    roots: Dict[DerivedTypeVariable, int] = {}
    for dtv, _ in formals:
        cell = shapes.lookup(dtv)
        if cell is not None:
            roots[dtv] = cell

    # Determine which classes are reachable and which need existential names.
    reachable: Set[int] = set()
    worklist = list(roots.values())
    while worklist:
        cell = worklist.pop()
        if cell in reachable:
            continue
        reachable.add(cell)
        for target in shapes.capabilities(cell).values():
            worklist.append(target)

    indegree: Dict[int, int] = {cell: 0 for cell in reachable}
    cyclic: Set[int] = set()
    for cell in reachable:
        for target in shapes.capabilities(cell).values():
            if target in indegree:
                indegree[target] += 1
            if target == cell:
                cyclic.add(cell)
    cyclic |= _cyclic_classes(shapes, reachable)

    # A class shared between several formals, or reachable both as a formal
    # root and through a capability path, must be named so the sharing is
    # expressible in the serialized constraints (e.g. ``id.in <= t <= id.out``).
    root_count: Dict[int, int] = {}
    for cell in roots.values():
        root_count[cell] = root_count.get(cell, 0) + 1

    needs_var = {
        cell
        for cell in reachable
        if cell in cyclic
        or indegree.get(cell, 0) + root_count.get(cell, 0) >= 2
    }
    var_names: Dict[int, str] = {}
    counter = itertools.count()
    for cell in sorted(needs_var):
        var_names[cell] = f"τ{next(counter)}"
        quantified.add(var_names[cell])

    def bounds_constraints(expr: DerivedTypeVariable, cell: int) -> bool:
        lower, upper = shapes.bounds(cell)
        emitted = False
        if lower != BOTTOM:
            constraints.add_subtype(DerivedTypeVariable(lower), expr)
            emitted = True
        if upper != TOP:
            constraints.add_subtype(expr, DerivedTypeVariable(upper))
            emitted = True
        return emitted

    def emit_from(expr: DerivedTypeVariable, cell: int, depth: int, seen: Set[int]) -> None:
        emitted = bounds_constraints(expr, cell)
        if depth >= max_depth:
            return
        children = sorted(shapes.capabilities(cell).items(), key=lambda kv: str(kv[0]))
        if not children and not emitted and expr.labels:
            # Record the bare capability so the path is preserved by callers
            # (an unconstrained leaf still asserts VAR expr).
            constraints.add_subtype(expr, DerivedTypeVariable(TOP))
            return
        for label, target in children:
            child_expr = expr.with_label(label)
            if target in var_names:
                var_dtv = DerivedTypeVariable(var_names[target])
                if path_variance(child_expr.labels) is Variance.COVARIANT:
                    constraints.add_subtype(child_expr, var_dtv)
                else:
                    constraints.add_subtype(var_dtv, child_expr)
                continue
            if target in seen:
                continue
            emit_from(child_expr, target, depth + 1, seen | {target})

    # Formals first: either link to their existential or expand inline.
    for dtv, variance in formals:
        cell = roots.get(dtv)
        if cell is None:
            continue
        if cell in var_names:
            var_dtv = DerivedTypeVariable(var_names[cell])
            if variance is Variance.CONTRAVARIANT:
                constraints.add_subtype(dtv, var_dtv)
            else:
                constraints.add_subtype(var_dtv, dtv)
        else:
            emit_from(dtv, cell, 0, {cell})

    # Then each existential variable's own structure.
    for cell, name in sorted(var_names.items()):
        emit_from(DerivedTypeVariable(name), cell, 0, {cell})

    return TypeScheme(
        proc=procedure.name,
        constraints=constraints,
        quantified=frozenset(quantified),
        formal_ins=tuple(procedure.formal_ins),
        formal_outs=tuple(procedure.formal_outs),
    )


def _cyclic_classes(shapes: ShapeInference, reachable: Set[int]) -> Set[int]:
    """Classes that participate in a cycle of the quotient graph (restricted)."""
    # Iterative Tarjan over the restricted graph.
    edges = {
        cell: [t for t in shapes.capabilities(cell).values() if t in reachable]
        for cell in reachable
    }
    sccs = tarjan_sccs(edges)
    cyclic: Set[int] = set()
    for component in sccs:
        if len(component) > 1:
            cyclic.update(component)
        elif component and component[0] in edges.get(component[0], []):
            cyclic.add(component[0])
    return cyclic


def tarjan_sccs(edges: Mapping) -> List[List]:
    """Iterative Tarjan SCC; returns components in callee-first (reverse topological) order."""
    index_counter = itertools.count()
    indices: Dict = {}
    lowlink: Dict = {}
    on_stack: Set = set()
    stack: List = []
    result: List[List] = []

    for root in edges:
        if root in indices:
            continue
        work = [(root, iter(list(edges.get(root, ()))))]
        indices[root] = lowlink[root] = next(index_counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in edges:
                    continue
                if successor not in indices:
                    indices[successor] = lowlink[successor] = next(index_counter)
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(list(edges.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result
