"""Type constraints and constraint sets (Definition 3.3, Appendix A.6).

Two kinds of constraints are first-class:

* :class:`SubtypeConstraint` -- ``X <= Y`` between derived type variables.  The
  existence constraints ``VAR X`` of the paper are implicit: mentioning a
  derived type variable in a subtype constraint asserts its existence, and
  :meth:`ConstraintSet.derived_type_variables` enumerates every mentioned
  variable together with all of its prefixes.
* :class:`AddConstraint` / :class:`SubConstraint` -- the three-place additive
  constraints ``ADD(X, Y; Z)`` and ``SUB(X, Y; Z)`` of Appendix A.6 used to
  propagate pointer-ness and integer-ness through address arithmetic
  (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .variables import DerivedTypeVariable, parse_dtv


@dataclass(frozen=True, order=True)
class SubtypeConstraint:
    """``left <= right`` : the type of ``left`` may flow where ``right`` is expected."""

    left: DerivedTypeVariable
    right: DerivedTypeVariable

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"

    def __repr__(self) -> str:
        return f"SubtypeConstraint({self!s})"

    def substitute(self, mapping: Dict[str, str]) -> "SubtypeConstraint":
        """Rename base variables according to ``mapping`` (used at instantiation)."""
        left = self.left
        right = self.right
        if left.base in mapping:
            left = left.with_base(mapping[left.base])
        if right.base in mapping:
            right = right.with_base(mapping[right.base])
        return SubtypeConstraint(left, right)


@dataclass(frozen=True, order=True)
class AddConstraint:
    """``ADD(left, right; result)`` -- ``result`` was computed as ``left + right``."""

    left: DerivedTypeVariable
    right: DerivedTypeVariable
    result: DerivedTypeVariable

    def __str__(self) -> str:
        return f"Add({self.left}, {self.right}; {self.result})"


@dataclass(frozen=True, order=True)
class SubConstraint:
    """``SUB(left, right; result)`` -- ``result`` was computed as ``left - right``."""

    left: DerivedTypeVariable
    right: DerivedTypeVariable
    result: DerivedTypeVariable

    def __str__(self) -> str:
        return f"Sub({self.left}, {self.right}; {self.result})"


Constraint = Union[SubtypeConstraint, AddConstraint, SubConstraint]


class ConstraintSet:
    """A finite collection of constraints over derived type variables.

    The class behaves like a set of :class:`SubtypeConstraint` (iteration,
    ``in``, ``len``) while also carrying the additive constraints separately,
    mirroring how the solver treats them (Appendix A.6).
    """

    def __init__(
        self,
        subtype: Optional[Iterable[SubtypeConstraint]] = None,
        additive: Optional[Iterable[Union[AddConstraint, SubConstraint]]] = None,
    ) -> None:
        self.subtype: Set[SubtypeConstraint] = set(subtype or ())
        self.additive: Set[Union[AddConstraint, SubConstraint]] = set(additive or ())

    # -- construction ----------------------------------------------------------

    def add(self, constraint: Constraint) -> None:
        if isinstance(constraint, SubtypeConstraint):
            self.subtype.add(constraint)
        else:
            self.additive.add(constraint)

    def add_subtype(self, left: DerivedTypeVariable, right: DerivedTypeVariable) -> None:
        self.subtype.add(SubtypeConstraint(left, right))

    def update(self, other: "ConstraintSet") -> None:
        self.subtype |= other.subtype
        self.additive |= other.additive

    def union(self, other: "ConstraintSet") -> "ConstraintSet":
        return ConstraintSet(self.subtype | other.subtype, self.additive | other.additive)

    def copy(self) -> "ConstraintSet":
        return ConstraintSet(set(self.subtype), set(self.additive))

    # -- set-like behaviour ----------------------------------------------------

    def __iter__(self) -> Iterator[SubtypeConstraint]:
        return iter(sorted(self.subtype, key=str))

    def __len__(self) -> int:
        return len(self.subtype)

    def __contains__(self, constraint: Constraint) -> bool:
        if isinstance(constraint, SubtypeConstraint):
            return constraint in self.subtype
        return constraint in self.additive

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self.subtype == other.subtype and self.additive == other.additive

    def __str__(self) -> str:
        lines = [str(c) for c in sorted(self.subtype, key=str)]
        lines += [str(c) for c in sorted(self.additive, key=str)]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ConstraintSet({len(self.subtype)} subtype, {len(self.additive)} additive)"

    # -- queries ---------------------------------------------------------------

    def derived_type_variables(self) -> Set[DerivedTypeVariable]:
        """All derived type variables mentioned in the constraints, plus prefixes.

        This realizes the closure under T-PREFIX assumed throughout Appendix B.
        """
        result: Set[DerivedTypeVariable] = set()
        for constraint in self.subtype:
            for dtv in (constraint.left, constraint.right):
                result.add(dtv)
                result.update(dtv.prefixes())
        for constraint in self.additive:
            for dtv in (constraint.left, constraint.right, constraint.result):
                result.add(dtv)
                result.update(dtv.prefixes())
        return result

    def base_variables(self) -> Set[str]:
        """Names of all base type variables mentioned anywhere."""
        return {dtv.base for dtv in self.derived_type_variables()}

    def constraints_mentioning(self, base: str) -> List[SubtypeConstraint]:
        return [
            c
            for c in self.subtype
            if c.left.base == base or c.right.base == base
        ]

    # -- serialization (process-boundary / summary-store round trip) -----------

    def to_json(self) -> Dict[str, object]:
        """A canonical JSON-able representation, the inverse of :meth:`from_json`.

        Subtype constraints use the textual syntax of :func:`parse_constraint`;
        the three-place additive constraints are spelled structurally.  Both
        lists are sorted, so equal constraint sets always serialize to
        byte-identical JSON -- the property the process-pool codec and the
        summary store rely on.
        """
        return {
            "subtype": sorted(str(c) for c in self.subtype),
            "additive": sorted(
                [
                    "add" if isinstance(c, AddConstraint) else "sub",
                    str(c.left),
                    str(c.right),
                    str(c.result),
                ]
                for c in self.additive
            ),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ConstraintSet":
        """Rebuild a constraint set serialized by :meth:`to_json`."""
        out = cls()
        for text in data.get("subtype", ()):
            out.add(parse_constraint(text))
        for kind, left, right, result in data.get("additive", ()):
            ctor = AddConstraint if kind == "add" else SubConstraint
            out.add(ctor(parse_dtv(left), parse_dtv(right), parse_dtv(result)))
        return out

    # -- transformation --------------------------------------------------------

    def substitute(self, mapping: Dict[str, str]) -> "ConstraintSet":
        """Rename base variables; used for callsite instantiation of type schemes."""
        out = ConstraintSet()
        for constraint in self.subtype:
            out.subtype.add(constraint.substitute(mapping))
        for constraint in self.additive:
            fix = lambda d: d.with_base(mapping[d.base]) if d.base in mapping else d
            if isinstance(constraint, AddConstraint):
                out.additive.add(
                    AddConstraint(fix(constraint.left), fix(constraint.right), fix(constraint.result))
                )
            else:
                out.additive.add(
                    SubConstraint(fix(constraint.left), fix(constraint.right), fix(constraint.result))
                )
        return out


def parse_constraint(text: str) -> SubtypeConstraint:
    """Parse ``"x.load <= y"`` (also accepts the unicode subset sign)."""
    normalized = text.replace("⊑", "<=").replace("<:", "<=")
    if "<=" not in normalized:
        raise ValueError(f"cannot parse constraint: {text!r}")
    left, right = normalized.split("<=", 1)
    return SubtypeConstraint(parse_dtv(left), parse_dtv(right))


def parse_constraints(lines: Iterable[str]) -> ConstraintSet:
    """Parse a sequence of textual constraints into a :class:`ConstraintSet`.

    Blank lines and lines starting with ``//`` or ``;`` are ignored.  (``#`` is
    *not* a comment marker because semantic tags such as ``#FileDescriptor``
    are legitimate type constants.)
    """
    out = ConstraintSet()
    for line in lines:
        line = line.strip()
        if not line or line.startswith("//") or line.startswith(";"):
            continue
        out.add(parse_constraint(line))
    return out
