"""A direct, bounded implementation of the deduction rules of Figure 3.

This module is *not* used by the production solver (which relies on the
pushdown-system machinery of Appendix D); it exists as an executable reference
semantics for the type system.  Given a constraint set it computes the
entailment closure restricted to derived type variables of bounded label depth,
which is enough to unit-test and property-test the efficient algorithms against
the rules as written in the paper:

* T-LEFT / T-RIGHT / T-PREFIX   (existence of derived type variables)
* T-INHERITL / T-INHERITR       (comparable types have the same capabilities)
* S-REFL / S-TRANS              (preorder)
* S-FIELD+ / S-FIELD-           (labels are co-/contra-variant type operators)
* S-POINTER                     (store <= load consistency)
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from .constraints import ConstraintSet, SubtypeConstraint
from .labels import LOAD, STORE, Variance
from .variables import DerivedTypeVariable


class DeductionEngine:
    """Bounded entailment closure for the Figure 3 rules.

    Parameters
    ----------
    constraints:
        The constraint set ``C``.
    max_depth:
        Derived type variables longer than this many labels are not explored.
        The closure is exact for judgements whose variables stay within the
        bound (sufficient for the small examples the engine is meant for).
    """

    def __init__(self, constraints: ConstraintSet, max_depth: int = 4) -> None:
        self.constraints = constraints
        self.max_depth = max_depth
        self._vars: Set[DerivedTypeVariable] = set()
        self._subtypes: Set[Tuple[DerivedTypeVariable, DerivedTypeVariable]] = set()
        self._closed = False

    # -- public API -------------------------------------------------------------

    def entails_var(self, dtv: DerivedTypeVariable) -> bool:
        """``C |- VAR dtv`` (up to the depth bound)."""
        self._close()
        return dtv in self._vars

    def entails_subtype(
        self, left: DerivedTypeVariable, right: DerivedTypeVariable
    ) -> bool:
        """``C |- left <= right`` (up to the depth bound)."""
        self._close()
        return (left, right) in self._subtypes

    def entails(self, constraint: SubtypeConstraint) -> bool:
        return self.entails_subtype(constraint.left, constraint.right)

    def derived_variables(self) -> Set[DerivedTypeVariable]:
        self._close()
        return set(self._vars)

    def subtype_pairs(self) -> Set[Tuple[DerivedTypeVariable, DerivedTypeVariable]]:
        self._close()
        return set(self._subtypes)

    # -- fixpoint ----------------------------------------------------------------

    def _close(self) -> None:
        if self._closed:
            return
        variables: Set[DerivedTypeVariable] = set()
        subtypes: Set[Tuple[DerivedTypeVariable, DerivedTypeVariable]] = set()

        for constraint in self.constraints:
            for dtv in (constraint.left, constraint.right):
                variables.add(dtv)
                variables.update(dtv.prefixes())
            subtypes.add((constraint.left, constraint.right))

        changed = True
        while changed:
            changed = False

            # S-REFL on all known variables.
            for dtv in list(variables):
                if (dtv, dtv) not in subtypes:
                    subtypes.add((dtv, dtv))
                    changed = True

            # T-INHERITL / T-INHERITR: comparable variables share capabilities.
            for left, right in list(subtypes):
                for dtv in list(variables):
                    if dtv.depth >= self.max_depth:
                        continue
                    last = dtv.last_label
                    prefix = dtv.prefix
                    if last is None or prefix is None:
                        continue
                    if prefix == left:
                        other = right.with_label(last)
                    elif prefix == right:
                        other = left.with_label(last)
                    else:
                        continue
                    if other.depth <= self.max_depth and other not in variables:
                        variables.add(other)
                        changed = True

            # S-FIELD+/S-FIELD-.
            for left, right in list(subtypes):
                for dtv in list(variables):
                    last = dtv.last_label
                    prefix = dtv.prefix
                    if last is None or prefix is None or prefix != right:
                        continue
                    extended_left = left.with_label(last)
                    extended_right = right.with_label(last)
                    if extended_left.depth > self.max_depth:
                        continue
                    variables.add(extended_left)
                    if last.variance is Variance.COVARIANT:
                        pair = (extended_left, extended_right)
                    else:
                        pair = (extended_right, extended_left)
                    if pair not in subtypes:
                        subtypes.add(pair)
                        changed = True

            # S-POINTER.
            for dtv in list(variables):
                loaded = dtv.with_label(LOAD)
                stored = dtv.with_label(STORE)
                if loaded in variables and stored in variables:
                    if (stored, loaded) not in subtypes:
                        subtypes.add((stored, loaded))
                        changed = True

            # S-TRANS.
            by_left = {}
            for a, b in subtypes:
                by_left.setdefault(a, set()).add(b)
            for a, b in list(subtypes):
                for c in by_left.get(b, ()):
                    if (a, c) not in subtypes:
                        subtypes.add((a, c))
                        changed = True

        self._vars = variables
        self._subtypes = subtypes
        self._closed = True


def entails(
    constraints: ConstraintSet,
    goal: SubtypeConstraint,
    max_depth: int = 4,
) -> bool:
    """Convenience wrapper: does ``constraints`` entail ``goal``?"""
    return DeductionEngine(constraints, max_depth).entails(goal)
