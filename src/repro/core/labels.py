"""Field labels (the alphabet Sigma) and their variance.

The paper models capabilities of a type as *field labels* that can be appended
to a type variable to form a derived type variable (Definition 3.1).  Table 1
lists the labels used throughout the paper:

=========  ========  =============================================
Label      Variance  Capability
=========  ========  =============================================
.in_L      contra    function with input in location L
.out_L     co        function with output in location L
.load      co        readable pointer
.store     contra    writable pointer
.sigmaN@k  co        has an N-bit field at offset k
=========  ========  =============================================

Variance composes as a sign monoid (Definition 3.2): the variance of a word of
labels is the product of the variances of its letters.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterable, Tuple


class Variance(enum.Enum):
    """Variance of a label or of a word of labels (the sign monoid)."""

    COVARIANT = 1
    CONTRAVARIANT = -1

    def __mul__(self, other: "Variance") -> "Variance":
        if not isinstance(other, Variance):
            return NotImplemented
        return Variance(self.value * other.value)

    __rmul__ = __mul__

    def flip(self) -> "Variance":
        return Variance(-self.value)

    def __str__(self) -> str:
        return "+" if self is Variance.COVARIANT else "-"


COVARIANT = Variance.COVARIANT
CONTRAVARIANT = Variance.CONTRAVARIANT


@dataclass(frozen=True, order=True)
class Label:
    """Base class for field labels.

    Labels are immutable and hashable so they can be used in derived type
    variables, constraint sets and sketch automata edges.
    """

    @property
    def variance(self) -> Variance:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


def _check_location(location: str) -> None:
    """Reject locations whose textual form cannot round-trip.

    A ``.`` would be split into bogus extra labels by :func:`repro.core.
    variables.parse_dtv`, and empty/whitespace-bearing locations fail the
    label grammar entirely -- found by the parse/str round-trip property test.
    """
    if not isinstance(location, str) or not location:
        raise ValueError(f"label location must be a non-empty string: {location!r}")
    if "." in location or any(ch.isspace() for ch in location):
        raise ValueError(
            f"label location may not contain dots or whitespace: {location!r}"
        )


@dataclass(frozen=True, order=True)
class InLabel(Label):
    """``.in_L`` -- the type of the function input at location ``L``.

    ``location`` is a string such as ``"stack0"``, ``"stack4"`` or ``"ecx"``.
    Contravariant: a subtype of a function type accepts *more general* inputs.
    """

    location: str

    def __post_init__(self) -> None:
        _check_location(self.location)

    @property
    def variance(self) -> Variance:
        return CONTRAVARIANT

    def __str__(self) -> str:
        return f"in_{self.location}"


@dataclass(frozen=True, order=True)
class OutLabel(Label):
    """``.out_L`` -- the type of the function output at location ``L``."""

    location: str = "eax"

    def __post_init__(self) -> None:
        _check_location(self.location)

    @property
    def variance(self) -> Variance:
        return COVARIANT

    def __str__(self) -> str:
        return f"out_{self.location}"


@dataclass(frozen=True, order=True)
class LoadLabel(Label):
    """``.load`` -- the type obtained by reading through a pointer (covariant)."""

    @property
    def variance(self) -> Variance:
        return COVARIANT

    def __str__(self) -> str:
        return "load"


@dataclass(frozen=True, order=True)
class StoreLabel(Label):
    """``.store`` -- the type that may be written through a pointer (contravariant)."""

    @property
    def variance(self) -> Variance:
        return CONTRAVARIANT

    def __str__(self) -> str:
        return "store"


@dataclass(frozen=True, order=True)
class FieldLabel(Label):
    """``.sigmaN@k`` -- the type has an ``N``-bit field at byte offset ``k``."""

    size_bits: int
    offset: int

    def __post_init__(self) -> None:
        # ``sigma-8@0`` would not re-parse (sizes are unsigned in the grammar);
        # offsets may be negative (pre-frame stack slots).
        if not isinstance(self.size_bits, int) or self.size_bits < 0:
            raise ValueError(f"field size must be a non-negative int: {self.size_bits!r}")
        if not isinstance(self.offset, int):
            raise ValueError(f"field offset must be an int: {self.offset!r}")

    @property
    def variance(self) -> Variance:
        return COVARIANT

    def __str__(self) -> str:
        return f"sigma{self.size_bits}@{self.offset}"


# Convenient singletons used throughout the code base.
LOAD = LoadLabel()
STORE = StoreLabel()
OUT = OutLabel("eax")


def in_label(location) -> InLabel:
    """Build an ``.in_L`` label; integers become stack locations ``stack<k>``."""
    if isinstance(location, int):
        return InLabel(f"stack{location}")
    return InLabel(str(location))


def out_label(location: str = "eax") -> OutLabel:
    return OutLabel(location)


def field(size_bits: int = 32, offset: int = 0) -> FieldLabel:
    return FieldLabel(size_bits, offset)


def path_variance(labels: Iterable[Label]) -> Variance:
    """Variance of a word of labels (Definition 3.2): the product of variances."""
    result = COVARIANT
    for lab in labels:
        result = result * lab.variance
    return result


_LABEL_RE = re.compile(
    r"""^(?:
        (?P<load>load) |
        (?P<store>store) |
        in_(?P<in>\S+) |
        out_(?P<out>\S+) |
        (?:sigma|σ)(?P<size>\d+)@(?P<off>-?\d+)
    )$""",
    re.VERBOSE,
)


def parse_label(text: str) -> Label:
    """Parse the textual form of a label (inverse of ``str``).

    >>> parse_label("load")
    LoadLabel()
    >>> parse_label("sigma32@4")
    FieldLabel(size_bits=32, offset=4)
    """
    match = _LABEL_RE.match(text.strip())
    if match is None:
        raise ValueError(f"cannot parse label: {text!r}")
    if match.group("load"):
        return LOAD
    if match.group("store"):
        return STORE
    if match.group("in") is not None:
        return InLabel(match.group("in"))
    if match.group("out") is not None:
        return OutLabel(match.group("out"))
    return FieldLabel(int(match.group("size")), int(match.group("off")))


def parse_label_word(text: str) -> Tuple[Label, ...]:
    """Parse a dotted word of labels, e.g. ``"load.sigma32@4"``."""
    text = text.strip()
    if not text:
        return ()
    return tuple(parse_label(part) for part in text.split("."))
