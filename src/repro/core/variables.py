"""Type variables and derived type variables (Definition 3.1).

A *derived type variable* is an expression ``alpha.w`` where ``alpha`` is a base
type variable and ``w`` is a (possibly empty) word of field labels.  The base
variable is represented by its name; type constants (elements of the auxiliary
lattice Lambda) are also represented as base variables whose names the lattice
recognizes.

Derived type variables are the single most-hashed object in the solver: every
constraint-graph node, reaching-forget fact, sketch key and summary entry keys
off one.  Construction therefore interns instances (weakly, so long-lived
daemons do not leak) and precomputes the hash once; ``str`` is cached lazily
since display/serialization paths render the same variables repeatedly.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass, field as dc_field
from typing import Iterator, Optional, Sequence, Tuple

from .labels import Label, Variance, parse_label, path_variance


_fresh_counter = itertools.count()


def fresh_var(prefix: str = "v") -> "DerivedTypeVariable":
    """Return a fresh base type variable that has not been used before."""
    return DerivedTypeVariable(f"${prefix}{next(_fresh_counter)}")


#: weak intern table: (base, labels) -> the canonical live instance.
_INTERNED: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()


@dataclass(frozen=True, order=True)
class DerivedTypeVariable:
    """A base type variable together with a word of field labels.

    ``DerivedTypeVariable("F", (InLabel("stack0"), LoadLabel()))`` prints as
    ``F.in_stack0.load``.
    """

    base: str
    labels: Tuple[Label, ...] = dc_field(default_factory=tuple)

    def __new__(cls, base: str = "", labels: Tuple[Label, ...] = ()):  # noqa: D102
        # Interned construction: repeated builds of the same variable return
        # the same object (weakly held).  Falls back to a fresh instance for
        # anything unhashable/odd rather than failing.
        if cls is DerivedTypeVariable and type(labels) is tuple:
            try:
                cached = _INTERNED.get((base, labels))
            except Exception:  # unhashable labels, or a GC-callback race
                cached = None
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __post_init__(self) -> None:
        # Cache the hash: profiles show dict/set operations on derived type
        # variables dominate saturation and simplification otherwise.
        object.__setattr__(self, "_hash", hash((self.base, self.labels)))
        if type(self) is DerivedTypeVariable and type(self.labels) is tuple:
            try:
                _INTERNED.setdefault((self.base, self.labels), self)
            except Exception:  # interning is an optimization, never an error
                pass

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if self is other:  # the common case once interning has warmed up
            return True
        if not isinstance(other, DerivedTypeVariable):
            return NotImplemented
        return self.base == other.base and self.labels == other.labels

    # -- construction helpers -------------------------------------------------

    def with_label(self, label: Label) -> "DerivedTypeVariable":
        """Return ``self.l`` -- this variable extended by one more capability."""
        return DerivedTypeVariable(self.base, self.labels + (label,))

    def with_labels(self, labels: Sequence[Label]) -> "DerivedTypeVariable":
        if not labels:
            return self
        return DerivedTypeVariable(self.base, self.labels + tuple(labels))

    def with_base(self, base: str) -> "DerivedTypeVariable":
        """Return the same derived variable re-rooted at another base variable."""
        return DerivedTypeVariable(base, self.labels)

    # -- structure -------------------------------------------------------------

    @property
    def base_var(self) -> "DerivedTypeVariable":
        """The bare base variable (no labels)."""
        return DerivedTypeVariable(self.base)

    @property
    def is_base(self) -> bool:
        return not self.labels

    @property
    def last_label(self) -> Optional[Label]:
        return self.labels[-1] if self.labels else None

    @property
    def prefix(self) -> Optional["DerivedTypeVariable"]:
        """The derived variable with the final label removed (``None`` for a base)."""
        if not self.labels:
            return None
        return DerivedTypeVariable(self.base, self.labels[:-1])

    def prefixes(self) -> Iterator["DerivedTypeVariable"]:
        """All proper prefixes, shortest first (the base variable comes first)."""
        for i in range(len(self.labels)):
            yield DerivedTypeVariable(self.base, self.labels[:i])

    @property
    def variance(self) -> Variance:
        """Variance of the label word (Definition 3.2)."""
        return path_variance(self.labels)

    @property
    def depth(self) -> int:
        return len(self.labels)

    # -- display ---------------------------------------------------------------

    def __str__(self) -> str:
        cached = getattr(self, "_str", None)
        if cached is None:
            if not self.labels:
                cached = self.base
            else:
                cached = self.base + "." + ".".join(str(lab) for lab in self.labels)
            object.__setattr__(self, "_str", cached)
        return cached

    def __repr__(self) -> str:
        return f"DTV({str(self)!r})"


def parse_dtv(text: str) -> DerivedTypeVariable:
    """Parse ``"F.in_stack0.load.sigma32@4"`` into a :class:`DerivedTypeVariable`.

    The base variable is everything up to the first ``.`` that starts a valid
    label; this allows base names that themselves contain no dots.
    """
    text = text.strip()
    parts = text.split(".")
    base = parts[0]
    labels = []
    for part in parts[1:]:
        labels.append(parse_label(part))
    return DerivedTypeVariable(base, tuple(labels))
