"""The constraint graph underlying the pushdown-system encoding (Appendix D.1/D.2).

Every proof in the normal form of Theorem B.1 is a chain of axioms glued by
S-TRANS with S-FIELD applications wrapped around them.  Appendix D encodes
these proofs as transition sequences of an unconstrained pushdown system; this
module realizes the equivalent *forget/recall edge* formulation:

* a node is a pair (derived type variable, variance tag);
* each constraint ``A <= B`` contributes a covariant edge ``(A,+) -> (B,+)``
  and its contravariant dual ``(B,-) -> (A,-)``;
* for every derived type variable ``x.l`` present in the graph there is a
  *forget* edge ``(x.l, v) -> (x, v*<l>)`` (push the label onto the pending
  stack -- the ``push l`` of the StackOp weight domain of Appendix C) and a
  *recall* edge ``(x, v*<l>) -> (x.l, v)`` (pop it back).

A path through the graph is a valid derivation; the pending-label bookkeeping
needed to read a subtype judgement off a path lives in :mod:`repro.core.simplify`.
The saturation algorithm of Appendix D.3 (:mod:`repro.core.saturation`) adds
shortcut edges so every derivable judgement is witnessed by a path whose
forgets all precede its recalls.

The representation is *indexed and mutation-aware*: adjacency is maintained
per edge kind (null / forget / recall) and recall successors per label, so the
worklist saturation and the memoized path traversal get their hot queries --
``null_out_edges``, ``recall_targets``, ``has_edge`` -- as dict hits instead
of list scans.  ``add_edge`` keeps every index coherent, which is what lets
saturation propagate along an edge the moment it is created.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .constraints import ConstraintSet
from .labels import Label, Variance
from .variables import DerivedTypeVariable


@dataclass(frozen=True, order=True)
class Node:
    """A derived type variable tagged with the current variance of its context."""

    dtv: DerivedTypeVariable
    variance: Variance

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.dtv, self.variance)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        tag = "+" if self.variance is Variance.COVARIANT else "-"
        return f"{self.dtv}.{tag}"

    def flipped(self) -> "Node":
        return Node(self.dtv, self.variance.flip())


class EdgeKind(enum.Enum):
    ORIGINAL = "original"      # a constraint axiom (an empty stack operation)
    FORGET = "forget"          # push the final label onto the pending stack
    RECALL = "recall"          # pop a pending label / extend the source variable
    SATURATION = "saturation"  # shortcut added by Algorithm D.2


@dataclass(frozen=True, order=True)
class Edge:
    source: Node
    target: Node
    kind: EdgeKind
    label: Optional[Label] = None

    def __str__(self) -> str:
        if self.label is not None:
            return f"{self.source} --{self.kind.value} {self.label}--> {self.target}"
        return f"{self.source} --{self.kind.value}--> {self.target}"

    @property
    def is_null(self) -> bool:
        """True for edges that do not touch the pending label stack."""
        return self.kind in (EdgeKind.ORIGINAL, EdgeKind.SATURATION)


class ConstraintGraph:
    """The finite graph whose paths encode derivations over a constraint set."""

    def __init__(
        self,
        constraints: ConstraintSet,
        extra_dtvs: Iterable[DerivedTypeVariable] = (),
    ) -> None:
        self.constraints = constraints
        self.nodes: Set[Node] = set()
        self._out: Dict[Node, List[Edge]] = {}
        self._in: Dict[Node, List[Edge]] = {}
        # insertion-ordered edge "set": deterministic iteration without the
        # former sort-by-str on every edges() call.
        self._edge_set: Dict[Edge, None] = {}
        # per-kind adjacency indexes, maintained by add_edge:
        self._out_null: Dict[Node, List[Edge]] = {}
        #: recall successors by label: node -> {label -> [target node, ...]}
        self._recall_by_label: Dict[Node, Dict[Label, List[Node]]] = {}
        #: all forget edges in insertion order (saturation seeds from these).
        self._forget_edges: List[Edge] = []
        #: source -> target -> edges between the pair (O(1) has_edge).
        self._pair: Dict[Node, Dict[Node, List[Edge]]] = {}

        dtvs = set(constraints.derived_type_variables())
        for dtv in extra_dtvs:
            dtvs.add(dtv)
            dtvs.update(dtv.prefixes())

        # Sorted, not set order: node insertion order seeds every downstream
        # order (adjacency lists, saturation worklist, simplification, bound
        # application), and set iteration varies with the per-process string
        # hash seed.  The solver's results must be a pure function of the
        # constraints so that a worker process reproduces the parent's answer
        # byte-for-byte.
        for dtv in sorted(dtvs, key=str):
            for variance in (Variance.COVARIANT, Variance.CONTRAVARIANT):
                self._ensure_node(Node(dtv, variance))

        for constraint in constraints:
            left, right = constraint.left, constraint.right
            self.add_edge(
                Edge(
                    Node(left, Variance.COVARIANT),
                    Node(right, Variance.COVARIANT),
                    EdgeKind.ORIGINAL,
                )
            )
            self.add_edge(
                Edge(
                    Node(right, Variance.CONTRAVARIANT),
                    Node(left, Variance.CONTRAVARIANT),
                    EdgeKind.ORIGINAL,
                )
            )

        for dtv in dtvs:
            label = dtv.last_label
            prefix = dtv.prefix
            if label is None or prefix is None:
                continue
            for variance in (Variance.COVARIANT, Variance.CONTRAVARIANT):
                inner = Node(dtv, variance)
                outer = Node(prefix, variance * label.variance)
                self.add_edge(Edge(inner, outer, EdgeKind.FORGET, label))
                self.add_edge(Edge(outer, inner, EdgeKind.RECALL, label))

    # -- mutation ------------------------------------------------------------------

    def _ensure_node(self, node: Node) -> None:
        if node not in self.nodes:
            self.nodes.add(node)
            self._out[node] = []
            self._in[node] = []
            self._out_null[node] = []

    def add_edge(self, edge: Edge) -> bool:
        """Add an edge, updating every index; returns True if it was new."""
        if edge in self._edge_set:
            return False
        self._ensure_node(edge.source)
        self._ensure_node(edge.target)
        self._edge_set[edge] = None
        self._out[edge.source].append(edge)
        self._in[edge.target].append(edge)
        kind = edge.kind
        if kind is EdgeKind.ORIGINAL or kind is EdgeKind.SATURATION:
            self._out_null[edge.source].append(edge)
        elif kind is EdgeKind.FORGET:
            self._forget_edges.append(edge)
        else:  # RECALL
            by_label = self._recall_by_label.setdefault(edge.source, {})
            by_label.setdefault(edge.label, []).append(edge.target)
        self._pair.setdefault(edge.source, {}).setdefault(edge.target, []).append(edge)
        return True

    # -- queries ----------------------------------------------------------------------

    def out_edges(self, node: Node) -> List[Edge]:
        """All out-edges of ``node``.

        The returned list is the live index -- do not mutate it; snapshot it
        (``list(...)``) before iterating if you will add edges meanwhile.
        """
        return self._out.get(node, _EMPTY_EDGES)

    def in_edges(self, node: Node) -> List[Edge]:
        """All in-edges of ``node`` (live index; treat as read-only)."""
        return self._in.get(node, _EMPTY_EDGES)

    def null_out_edges(self, node: Node) -> List[Edge]:
        """Out-edges that leave the pending stack alone (original + saturation)."""
        return self._out_null.get(node, _EMPTY_EDGES)

    def forget_edges(self) -> List[Edge]:
        """Every forget edge in the graph (live index; treat as read-only)."""
        return self._forget_edges

    def recall_targets(self, node: Node, label: Label) -> List[Node]:
        """Targets of ``node --recall label-->`` edges (O(1) dict hits)."""
        by_label = self._recall_by_label.get(node)
        if by_label is None:
            return _EMPTY_NODES
        return by_label.get(label, _EMPTY_NODES)

    def edges(self) -> Iterator[Edge]:
        """All edges in deterministic (insertion) order."""
        return iter(self._edge_set)

    def has_edge(
        self,
        source: Node,
        target: Node,
        kind: Optional[EdgeKind] = None,
        label: Optional[Label] = None,
    ) -> bool:
        between = self._pair.get(source, _EMPTY_DICT).get(target)
        if not between:
            return False
        if kind is None and label is None:
            return True
        for edge in between:
            if kind is not None and edge.kind != kind:
                continue
            if label is not None and edge.label != label:
                continue
            return True
        return False

    def __len__(self) -> int:
        return len(self._edge_set)

    def nodes_for_base(self, base: str) -> List[Node]:
        return [node for node in self.nodes if node.dtv.base == base]

    def to_dot(self, name: str = "constraints") -> str:
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        index = {node: i for i, node in enumerate(sorted(self.nodes, key=str))}
        for node, i in index.items():
            lines.append(f'  n{i} [label="{node}"];')
        for edge in sorted(self._edge_set, key=str):
            style = "dashed" if edge.kind is EdgeKind.SATURATION else "solid"
            label = edge.kind.value if edge.label is None else f"{edge.kind.value} {edge.label}"
            lines.append(
                f'  n{index[edge.source]} -> n{index[edge.target]} '
                f'[label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


_EMPTY_EDGES: List[Edge] = []
_EMPTY_NODES: List[Node] = []
_EMPTY_DICT: Dict = {}
