"""The constraint graph underlying the pushdown-system encoding (Appendix D.1/D.2).

Every proof in the normal form of Theorem B.1 is a chain of axioms glued by
S-TRANS with S-FIELD applications wrapped around them.  Appendix D encodes
these proofs as transition sequences of an unconstrained pushdown system; this
module realizes the equivalent *forget/recall edge* formulation:

* a node is a pair (derived type variable, variance tag);
* each constraint ``A <= B`` contributes a covariant edge ``(A,+) -> (B,+)``
  and its contravariant dual ``(B,-) -> (A,-)``;
* for every derived type variable ``x.l`` present in the graph there is a
  *forget* edge ``(x.l, v) -> (x, v*<l>)`` (push the label onto the pending
  stack -- the ``push l`` of the StackOp weight domain of Appendix C) and a
  *recall* edge ``(x, v*<l>) -> (x.l, v)`` (pop it back).

A path through the graph is a valid derivation; the pending-label bookkeeping
needed to read a subtype judgement off a path lives in :mod:`repro.core.simplify`.
The saturation algorithm of Appendix D.3 (:mod:`repro.core.saturation`) adds
shortcut edges so every derivable judgement is witnessed by a path whose
forgets all precede its recalls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .constraints import ConstraintSet
from .labels import Label, Variance
from .variables import DerivedTypeVariable


@dataclass(frozen=True, order=True)
class Node:
    """A derived type variable tagged with the current variance of its context."""

    dtv: DerivedTypeVariable
    variance: Variance

    def __str__(self) -> str:
        tag = "+" if self.variance is Variance.COVARIANT else "-"
        return f"{self.dtv}.{tag}"

    def flipped(self) -> "Node":
        return Node(self.dtv, self.variance.flip())


class EdgeKind(enum.Enum):
    ORIGINAL = "original"      # a constraint axiom (an empty stack operation)
    FORGET = "forget"          # push the final label onto the pending stack
    RECALL = "recall"          # pop a pending label / extend the source variable
    SATURATION = "saturation"  # shortcut added by Algorithm D.2


@dataclass(frozen=True, order=True)
class Edge:
    source: Node
    target: Node
    kind: EdgeKind
    label: Optional[Label] = None

    def __str__(self) -> str:
        if self.label is not None:
            return f"{self.source} --{self.kind.value} {self.label}--> {self.target}"
        return f"{self.source} --{self.kind.value}--> {self.target}"

    @property
    def is_null(self) -> bool:
        """True for edges that do not touch the pending label stack."""
        return self.kind in (EdgeKind.ORIGINAL, EdgeKind.SATURATION)


class ConstraintGraph:
    """The finite graph whose paths encode derivations over a constraint set."""

    def __init__(
        self,
        constraints: ConstraintSet,
        extra_dtvs: Iterable[DerivedTypeVariable] = (),
    ) -> None:
        self.constraints = constraints
        self.nodes: Set[Node] = set()
        self._out: Dict[Node, List[Edge]] = {}
        self._in: Dict[Node, List[Edge]] = {}
        self._edge_set: Set[Edge] = set()

        dtvs = set(constraints.derived_type_variables())
        for dtv in extra_dtvs:
            dtvs.add(dtv)
            dtvs.update(dtv.prefixes())

        for dtv in dtvs:
            for variance in (Variance.COVARIANT, Variance.CONTRAVARIANT):
                self._ensure_node(Node(dtv, variance))

        for constraint in constraints:
            left, right = constraint.left, constraint.right
            self.add_edge(
                Edge(
                    Node(left, Variance.COVARIANT),
                    Node(right, Variance.COVARIANT),
                    EdgeKind.ORIGINAL,
                )
            )
            self.add_edge(
                Edge(
                    Node(right, Variance.CONTRAVARIANT),
                    Node(left, Variance.CONTRAVARIANT),
                    EdgeKind.ORIGINAL,
                )
            )

        for dtv in dtvs:
            label = dtv.last_label
            prefix = dtv.prefix
            if label is None or prefix is None:
                continue
            for variance in (Variance.COVARIANT, Variance.CONTRAVARIANT):
                inner = Node(dtv, variance)
                outer = Node(prefix, variance * label.variance)
                self.add_edge(Edge(inner, outer, EdgeKind.FORGET, label))
                self.add_edge(Edge(outer, inner, EdgeKind.RECALL, label))

    # -- mutation ------------------------------------------------------------------

    def _ensure_node(self, node: Node) -> None:
        if node not in self.nodes:
            self.nodes.add(node)
            self._out[node] = []
            self._in[node] = []

    def add_edge(self, edge: Edge) -> bool:
        """Add an edge; returns True if it was not already present."""
        if edge in self._edge_set:
            return False
        self._ensure_node(edge.source)
        self._ensure_node(edge.target)
        self._edge_set.add(edge)
        self._out[edge.source].append(edge)
        self._in[edge.target].append(edge)
        return True

    # -- queries ----------------------------------------------------------------------

    def out_edges(self, node: Node) -> List[Edge]:
        return list(self._out.get(node, ()))

    def in_edges(self, node: Node) -> List[Edge]:
        return list(self._in.get(node, ()))

    def edges(self) -> Iterator[Edge]:
        return iter(sorted(self._edge_set, key=str))

    def has_edge(
        self,
        source: Node,
        target: Node,
        kind: Optional[EdgeKind] = None,
        label: Optional[Label] = None,
    ) -> bool:
        for edge in self._out.get(source, ()):
            if edge.target != target:
                continue
            if kind is not None and edge.kind != kind:
                continue
            if label is not None and edge.label != label:
                continue
            return True
        return False

    def __len__(self) -> int:
        return len(self._edge_set)

    def nodes_for_base(self, base: str) -> List[Node]:
        return [node for node in self.nodes if node.dtv.base == base]

    def to_dot(self, name: str = "constraints") -> str:
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        index = {node: i for i, node in enumerate(sorted(self.nodes, key=str))}
        for node, i in index.items():
            lines.append(f'  n{i} [label="{node}"];')
        for edge in self.edges():
            style = "dashed" if edge.kind is EdgeKind.SATURATION else "solid"
            label = edge.kind.value if edge.label is None else f"{edge.kind.value} {edge.label}"
            lines.append(
                f'  n{index[edge.source]} -> n{index[edge.target]} '
                f'[label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)
