"""The constraint graph underlying the pushdown-system encoding (Appendix D.1/D.2).

Every proof in the normal form of Theorem B.1 is a chain of axioms glued by
S-TRANS with S-FIELD applications wrapped around them.  Appendix D encodes
these proofs as transition sequences of an unconstrained pushdown system; this
module realizes the equivalent *forget/recall edge* formulation:

* a node is a pair (derived type variable, variance tag);
* each constraint ``A <= B`` contributes a covariant edge ``(A,+) -> (B,+)``
  and its contravariant dual ``(B,-) -> (A,-)``;
* for every derived type variable ``x.l`` present in the graph there is a
  *forget* edge ``(x.l, v) -> (x, v*<l>)`` (push the label onto the pending
  stack -- the ``push l`` of the StackOp weight domain of Appendix C) and a
  *recall* edge ``(x, v*<l>) -> (x.l, v)`` (pop it back).

A path through the graph is a valid derivation; the pending-label bookkeeping
needed to read a subtype judgement off a path lives in :mod:`repro.core.simplify`.
The saturation algorithm of Appendix D.3 (:mod:`repro.core.saturation`) adds
shortcut edges so every derivable judgement is witnessed by a path whose
forgets all precede its recalls.

The representation is an **integer kernel** (see DESIGN.md): derived type
variables and labels are interned into dense-ID pools
(:mod:`repro.core.intern`), a node is ``did * 2 + variance_bit``, and every
index the hot algorithms touch -- per-node out-records, null adjacency,
recall-successors-by-label, the forget list, the exact-duplicate edge set --
is a flat list/dict over those ints.  Saturation and the memoized path
traversal run entirely on this layer (``_out_recs`` / ``_null_out`` /
``_recall`` / ``add_saturation_id``); the :class:`Node`/:class:`Edge` object
API is a decode view kept for tests, debugging and the naive reference
oracles, materialized lazily and cached per node id.  ``add_edge`` keeps
every index coherent, which is what lets saturation propagate along an edge
the moment it is created.

ID assignment is insertion-ordered, never hash-ordered: the constructor
interns variables in sorted-by-``str`` order, so the whole int layer -- and
therefore every downstream iteration order -- is a pure function of the
constraint set, reproducible across processes regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .constraints import ConstraintSet
from .intern import InternPool
from .labels import Label, Variance
from .variables import DerivedTypeVariable


@dataclass(frozen=True, order=True)
class Node:
    """A derived type variable tagged with the current variance of its context."""

    dtv: DerivedTypeVariable
    variance: Variance

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.dtv, self.variance)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        tag = "+" if self.variance is Variance.COVARIANT else "-"
        return f"{self.dtv}.{tag}"

    def flipped(self) -> "Node":
        return Node(self.dtv, self.variance.flip())


class EdgeKind(enum.Enum):
    ORIGINAL = "original"      # a constraint axiom (an empty stack operation)
    FORGET = "forget"          # push the final label onto the pending stack
    RECALL = "recall"          # pop a pending label / extend the source variable
    SATURATION = "saturation"  # shortcut added by Algorithm D.2


#: integer edge kinds used by the int layer; null kinds sort below K_FORGET so
#: the hot loops test ``kind < K_FORGET`` instead of comparing enum members.
K_ORIGINAL = 0
K_SATURATION = 1
K_FORGET = 2
K_RECALL = 3

_KIND_OBJS = (EdgeKind.ORIGINAL, EdgeKind.SATURATION, EdgeKind.FORGET, EdgeKind.RECALL)
_KIND_IDS = {
    EdgeKind.ORIGINAL: K_ORIGINAL,
    EdgeKind.SATURATION: K_SATURATION,
    EdgeKind.FORGET: K_FORGET,
    EdgeKind.RECALL: K_RECALL,
}


@dataclass(frozen=True, order=True)
class Edge:
    source: Node
    target: Node
    kind: EdgeKind
    label: Optional[Label] = None

    def __str__(self) -> str:
        if self.label is not None:
            return f"{self.source} --{self.kind.value} {self.label}--> {self.target}"
        return f"{self.source} --{self.kind.value}--> {self.target}"

    @property
    def is_null(self) -> bool:
        """True for edges that do not touch the pending label stack."""
        return self.kind in (EdgeKind.ORIGINAL, EdgeKind.SATURATION)


class ConstraintGraph:
    """The finite graph whose paths encode derivations over a constraint set."""

    def __init__(
        self,
        constraints: ConstraintSet,
        extra_dtvs: Iterable[DerivedTypeVariable] = (),
    ) -> None:
        self.constraints = constraints
        #: dense-ID pools: ``did`` per variable, ``lid`` per label.
        self._dtvs = InternPool()  # type: InternPool[DerivedTypeVariable]
        self._labels = InternPool()  # type: InternPool[Label]
        # Per-nid flat indexes (two slots per dtv, grown by _intern_dtv):
        #: does the node participate in the graph (constructor or edge endpoint)?
        self._present: List[bool] = []
        #: out-records ``(kind, lidp, target_nid)`` in insertion order.
        self._out_recs: List[List[Tuple[int, int, int]]] = []
        #: in-records ``(kind, lidp, source_nid)`` in insertion order.
        self._in_recs: List[List[Tuple[int, int, int]]] = []
        #: targets of null (original + saturation) out-edges.
        self._null_out: List[List[int]] = []
        #: recall successors by label: ``lid -> [target_nid, ...]`` (or None).
        self._recall: List[Optional[Dict[int, List[int]]]] = []
        #: lazily decoded Node object per nid.
        self._node_objs: List[Optional[Node]] = []
        #: exact-duplicate guard + deterministic global order, as int records
        #: ``(src_nid, tgt_nid, kind, lidp)``.
        self._edge_seen: Set[Tuple[int, int, int, int]] = set()
        self._edge_list: List[Tuple[int, int, int, int]] = []
        #: forget records ``(src_nid, lid, tgt_nid)`` (saturation seeds).
        self._forget_recs: List[Tuple[int, int, int]] = []
        self._num_present = 0
        self._nodes_cache: Optional[Set[Node]] = None
        #: decoded out-edge lists per nid (views for the object API).
        self._out_edge_cache: Dict[int, List[Edge]] = {}

        dtvs = set(constraints.derived_type_variables())
        for dtv in extra_dtvs:
            dtvs.add(dtv)
            dtvs.update(dtv.prefixes())

        # Sorted, not set order: ID assignment seeds every downstream order
        # (adjacency lists, saturation worklist, simplification, bound
        # application), and set iteration varies with the per-process string
        # hash seed.  The solver's results must be a pure function of the
        # constraints so that a worker process reproduces the parent's answer
        # byte-for-byte.
        ordered = sorted(dtvs, key=str)
        intern_dtv = self._intern_dtv
        for dtv in ordered:
            did = intern_dtv(dtv)
            self._materialize(did * 2)
            self._materialize(did * 2 + 1)

        ids = self._dtvs.ids
        add = self._add_edge_ids
        for constraint in constraints:
            left = ids[constraint.left]
            right = ids[constraint.right]
            add(left * 2, right * 2, K_ORIGINAL, 0)
            add(right * 2 + 1, left * 2 + 1, K_ORIGINAL, 0)

        intern_label = self._labels.intern
        for dtv in ordered:
            label = dtv.last_label
            if label is None:
                continue
            did = ids[dtv]
            pid = ids[dtv.prefix]
            lidp = intern_label(label) + 1
            flip = 0 if label.variance is Variance.COVARIANT else 1
            for bit in (0, 1):
                inner = did * 2 + bit
                outer = pid * 2 + (bit ^ flip)
                add(inner, outer, K_FORGET, lidp)
                add(outer, inner, K_RECALL, lidp)

    # -- int-layer mutation ---------------------------------------------------------

    def _intern_dtv(self, dtv: DerivedTypeVariable) -> int:
        did = self._dtvs.ids.get(dtv)
        if did is None:
            did = self._dtvs.intern(dtv)
            for _ in range(2):
                self._present.append(False)
                self._out_recs.append([])
                self._in_recs.append([])
                self._null_out.append([])
                self._recall.append(None)
                self._node_objs.append(None)
        return did

    def _materialize(self, nid: int) -> None:
        if not self._present[nid]:
            self._present[nid] = True
            self._num_present += 1
            self._nodes_cache = None

    def _add_edge_ids(self, src: int, tgt: int, kind: int, lidp: int) -> bool:
        """Add an int edge record, updating every index; True if it was new."""
        record = (src, tgt, kind, lidp)
        if record in self._edge_seen:
            return False
        self._edge_seen.add(record)
        self._materialize(src)
        self._materialize(tgt)
        self._edge_list.append(record)
        self._out_recs[src].append((kind, lidp, tgt))
        self._in_recs[tgt].append((kind, lidp, src))
        self._out_edge_cache.pop(src, None)
        if kind < K_FORGET:
            self._null_out[src].append(tgt)
        elif kind == K_FORGET:
            self._forget_recs.append((src, lidp - 1, tgt))
        else:  # K_RECALL
            by_label = self._recall[src]
            if by_label is None:
                by_label = {}
                self._recall[src] = by_label
            by_label.setdefault(lidp - 1, []).append(tgt)
        return True

    def add_saturation_id(self, src: int, tgt: int) -> bool:
        """Hot-path shortcut-edge insertion (Algorithm D.2 discharges)."""
        return self._add_edge_ids(src, tgt, K_SATURATION, 0)

    # -- int-layer queries ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes without decoding them (what the stats record)."""
        return self._num_present

    def out_records(self, nid: int) -> List[Tuple[int, int, int]]:
        """Int out-records ``(kind, lidp, target_nid)`` of one node (live)."""
        return self._out_recs[nid]

    def null_out_ids(self, nid: int) -> List[int]:
        """Target nids of null out-edges (live index; duplicates possible
        when an original and a saturation edge connect the same pair)."""
        return self._null_out[nid]

    def recall_ids(self, nid: int, lid: int) -> List[int]:
        """Target nids of ``nid --recall lid-->`` edges."""
        by_label = self._recall[nid]
        if by_label is None:
            return _EMPTY_IDS
        return by_label.get(lid, _EMPTY_IDS)

    def forget_records(self) -> List[Tuple[int, int, int]]:
        """Every forget edge as ``(src_nid, lid, tgt_nid)`` in insertion order."""
        return self._forget_recs

    def dtv_id(self, dtv: DerivedTypeVariable) -> Optional[int]:
        return self._dtvs.ids.get(dtv)

    def label_id(self, label: Label) -> Optional[int]:
        return self._labels.ids.get(label)

    # -- object-view decode ---------------------------------------------------------

    def _node_obj(self, nid: int) -> Node:
        node = self._node_objs[nid]
        if node is None:
            variance = Variance.CONTRAVARIANT if nid & 1 else Variance.COVARIANT
            node = Node(self._dtvs.items[nid >> 1], variance)
            self._node_objs[nid] = node
        return node

    def _node_nid(self, node: Node, create: bool = False) -> Optional[int]:
        """The nid of an object-API node; interns/materializes when ``create``."""
        if create:
            did = self._intern_dtv(node.dtv)
            nid = did * 2 + (1 if node.variance is Variance.CONTRAVARIANT else 0)
            self._materialize(nid)
            return nid
        did = self._dtvs.ids.get(node.dtv)
        if did is None:
            return None
        nid = did * 2 + (1 if node.variance is Variance.CONTRAVARIANT else 0)
        return nid if self._present[nid] else None

    def _decode_edge(self, record: Tuple[int, int, int, int]) -> Edge:
        src, tgt, kind, lidp = record
        label = None if lidp == 0 else self._labels.items[lidp - 1]
        return Edge(self._node_obj(src), self._node_obj(tgt), _KIND_OBJS[kind], label)

    # -- object-view mutation -------------------------------------------------------

    def add_edge(self, edge: Edge) -> bool:
        """Add an edge, updating every index; returns True if it was new."""
        src = self._node_nid(edge.source, create=True)
        tgt = self._node_nid(edge.target, create=True)
        lidp = 0 if edge.label is None else self._labels.intern(edge.label) + 1
        return self._add_edge_ids(src, tgt, _KIND_IDS[edge.kind], lidp)

    # -- object-view queries --------------------------------------------------------

    @property
    def nodes(self) -> Set[Node]:
        """All nodes, decoded (cached until a new node appears)."""
        cache = self._nodes_cache
        if cache is None:
            node_obj = self._node_obj
            cache = {
                node_obj(nid)
                for nid, present in enumerate(self._present)
                if present
            }
            self._nodes_cache = cache
        return cache

    def out_edges(self, node: Node) -> List[Edge]:
        """All out-edges of ``node``, decoded from the int records.

        The returned list is a cached decode view -- do not mutate it; it is
        rebuilt when an edge is added at this node.
        """
        nid = self._node_nid(node)
        if nid is None:
            return _EMPTY_EDGES
        cached = self._out_edge_cache.get(nid)
        if cached is None:
            cached = [
                self._decode_edge((nid, tgt, kind, lidp))
                for kind, lidp, tgt in self._out_recs[nid]
            ]
            self._out_edge_cache[nid] = cached
        return cached

    def in_edges(self, node: Node) -> List[Edge]:
        """All in-edges of ``node``, decoded from the int records."""
        nid = self._node_nid(node)
        if nid is None:
            return _EMPTY_EDGES
        return [
            self._decode_edge((src, nid, kind, lidp))
            for kind, lidp, src in self._in_recs[nid]
        ]

    def null_out_edges(self, node: Node) -> List[Edge]:
        """Out-edges that leave the pending stack alone (original + saturation)."""
        return [edge for edge in self.out_edges(node) if edge.is_null]

    def forget_edges(self) -> List[Edge]:
        """Every forget edge in the graph, in insertion order."""
        return [
            self._decode_edge((src, tgt, K_FORGET, lid + 1))
            for src, lid, tgt in self._forget_recs
        ]

    def recall_targets(self, node: Node, label: Label) -> List[Node]:
        """Targets of ``node --recall label-->`` edges (O(1) dict hits)."""
        nid = self._node_nid(node)
        if nid is None:
            return _EMPTY_NODES
        lid = -1 if label is None else self._labels.ids.get(label)
        if lid is None:
            return _EMPTY_NODES
        node_obj = self._node_obj
        return [node_obj(tgt) for tgt in self.recall_ids(nid, lid)]

    def edges(self) -> Iterator[Edge]:
        """All edges in deterministic (insertion) order."""
        decode = self._decode_edge
        return (decode(record) for record in self._edge_list)

    def has_edge(
        self,
        source: Node,
        target: Node,
        kind: Optional[EdgeKind] = None,
        label: Optional[Label] = None,
    ) -> bool:
        src = self._node_nid(source)
        tgt = self._node_nid(target)
        if src is None or tgt is None:
            return False
        want_kind = None if kind is None else _KIND_IDS[kind]
        if label is None:
            want_lidp = None
        else:
            lid = self._labels.ids.get(label)
            if lid is None:
                return False
            want_lidp = lid + 1
        for rec_kind, rec_lidp, rec_tgt in self._out_recs[src]:
            if rec_tgt != tgt:
                continue
            if want_kind is not None and rec_kind != want_kind:
                continue
            if want_lidp is not None and rec_lidp != want_lidp:
                continue
            return True
        return False

    def __len__(self) -> int:
        return len(self._edge_list)

    def nodes_for_base(self, base: str) -> List[Node]:
        node_obj = self._node_obj
        return [
            node_obj(nid)
            for nid, present in enumerate(self._present)
            if present and self._dtvs.items[nid >> 1].base == base
        ]

    def to_dot(self, name: str = "constraints") -> str:
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        index = {node: i for i, node in enumerate(sorted(self.nodes, key=str))}
        for node, i in index.items():
            lines.append(f'  n{i} [label="{node}"];')
        for edge in sorted(self.edges(), key=str):
            style = "dashed" if edge.kind is EdgeKind.SATURATION else "solid"
            label = edge.kind.value if edge.label is None else f"{edge.kind.value} {edge.label}"
            lines.append(
                f'  n{index[edge.source]} -> n{index[edge.target]} '
                f'[label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


_EMPTY_EDGES: List[Edge] = []
_EMPTY_NODES: List[Node] = []
_EMPTY_IDS: List[int] = []
