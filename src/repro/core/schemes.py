"""Polymorphic type schemes (Definition 3.4) and their callsite instantiation.

A type scheme for a procedure ``f`` has the shape ``forall f. (exists t1..tn) C => f``
where ``C`` is a constraint set over the procedure's formal derived type
variables (``f.in_stack0``, ``f.out_eax``, ...), type constants, and a small
number of existential variables synthesized to express recursive structure
(Appendix H / Figure 2).

Instantiating a scheme at a callsite renames the procedure variable with a
callsite tag and gives every existential a fresh name, realizing the
let-polymorphism of Appendix A.4: distinct calls to the same procedure are
typed independently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from .constraints import AddConstraint, ConstraintSet, SubConstraint, parse_constraint
from .variables import DerivedTypeVariable, parse_dtv

_instantiation_counter = itertools.count()


@dataclass
class TypeScheme:
    """``forall proc. (exists quantified) constraints => proc``."""

    proc: str
    constraints: ConstraintSet
    quantified: FrozenSet[str] = frozenset()
    formal_ins: Tuple[DerivedTypeVariable, ...] = ()
    formal_outs: Tuple[DerivedTypeVariable, ...] = ()

    def instantiate(self, tag: str) -> Tuple[str, ConstraintSet]:
        """Return (instantiated procedure variable name, instantiated constraints).

        The procedure variable and every quantified variable are renamed with a
        fresh, callsite-specific suffix so that multiple calls do not interact
        (Example A.4).
        """
        unique = next(_instantiation_counter)
        mapping: Dict[str, str] = {self.proc: f"{self.proc}${tag}"}
        for var in self.quantified:
            mapping[var] = f"{var}${tag}.{unique}"
        return mapping[self.proc], self.constraints.substitute(mapping)

    def instantiate_as(self, base: str) -> ConstraintSet:
        """Instantiate the scheme with the procedure variable renamed to ``base``.

        Used at callsites: the caller's constraint generator picks a unique
        base name for each callsite (e.g. ``close$0x804843f``) and the solver
        splices in the callee's constraints under that name.  Existential
        variables still receive fresh names so separate instantiations never
        interfere.
        """
        unique = next(_instantiation_counter)
        mapping: Dict[str, str] = {self.proc: base}
        for var in self.quantified:
            mapping[var] = f"{var}${unique}"
        return self.constraints.substitute(mapping)

    def instantiate_monomorphic(self, base: str) -> ConstraintSet:
        """Instantiate without freshening the existential variables.

        Every callsite then shares the same internal variables, which collapses
        all calls of the function onto a single monomorphic type.  This is the
        behaviour of the unification-based baselines (SecondWrite/REWARDS) and
        of TIE, and it is exactly the over-unification hazard described in
        section 2.5.
        """
        mapping: Dict[str, str] = {self.proc: base}
        return self.constraints.substitute(mapping)

    def instantiated_formals(
        self, tag: str
    ) -> Tuple[str, ConstraintSet, Tuple[DerivedTypeVariable, ...], Tuple[DerivedTypeVariable, ...]]:
        """Instantiate and also return the renamed formal in/out variables."""
        name, constraints = self.instantiate(tag)
        ins = tuple(dtv.with_base(name) for dtv in self.formal_ins)
        outs = tuple(dtv.with_base(name) for dtv in self.formal_outs)
        return name, constraints, ins, outs

    def is_trivial(self) -> bool:
        return len(self.constraints) == 0

    # -- serialization (summary-store round trip) ------------------------------

    def to_json(self) -> Dict[str, object]:
        """A JSON-able representation, the inverse of :meth:`from_json`.

        Subtype constraints use the textual constraint syntax (parseable by
        :func:`~repro.core.constraints.parse_constraint`); the three-place
        additive constraints are spelled out structurally.  Everything is
        sorted so the representation is stable across runs.
        """
        return {
            "proc": self.proc,
            "constraints": sorted(str(c) for c in self.constraints.subtype),
            "additive": sorted(
                (
                    {
                        "kind": "add" if isinstance(c, AddConstraint) else "sub",
                        "left": str(c.left),
                        "right": str(c.right),
                        "result": str(c.result),
                    }
                    for c in self.constraints.additive
                ),
                key=lambda entry: (entry["kind"], entry["left"], entry["right"], entry["result"]),
            ),
            "quantified": sorted(self.quantified),
            "formal_ins": [str(dtv) for dtv in self.formal_ins],
            "formal_outs": [str(dtv) for dtv in self.formal_outs],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TypeScheme":
        """Rebuild a scheme serialized by :meth:`to_json`."""
        constraints = ConstraintSet()
        for text in data.get("constraints", ()):
            constraints.add(parse_constraint(text))
        for entry in data.get("additive", ()):
            ctor = AddConstraint if entry["kind"] == "add" else SubConstraint
            constraints.add(
                ctor(parse_dtv(entry["left"]), parse_dtv(entry["right"]), parse_dtv(entry["result"]))
            )
        return cls(
            proc=data["proc"],
            constraints=constraints,
            quantified=frozenset(data.get("quantified", ())),
            formal_ins=tuple(parse_dtv(text) for text in data.get("formal_ins", ())),
            formal_outs=tuple(parse_dtv(text) for text in data.get("formal_outs", ())),
        )

    def __str__(self) -> str:
        quantifier = f"∀{self.proc}."
        existentials = ""
        if self.quantified:
            existentials = " ∃" + ",".join(sorted(self.quantified)) + "."
        body = "\n  ".join(str(c) for c in self.constraints) or "true"
        return f"{quantifier}{existentials}\n  {body}\n⇒ {self.proc}"


def monomorphic_scheme(proc: str, constraints: Optional[ConstraintSet] = None) -> TypeScheme:
    """A scheme with no constraints (used for unknown external functions)."""
    return TypeScheme(proc=proc, constraints=constraints or ConstraintSet())
