"""Conversion of sketches to C types for display (section 4.3, Appendix G).

The type-inference core works with sketches; only at the very end are sketches
"downgraded" to C types for the reverse engineer.  The policies implemented
here follow the paper:

* **scalars** -- a leaf node displays the join of its lower bounds on covariant
  paths and the meet of its upper bounds on contravariant paths; incomparable
  bounds become a union type built from the lattice antichain (Example 4.2);
* **pointers** -- a node with ``.load``/``.store`` capabilities becomes a
  pointer to the type of the loaded/stored node; if only ``.load`` is present
  the pointer is ``const`` (Example 4.1 / section 6.4);
* **structs** -- a node with ``sigmaN@k`` capabilities becomes a struct with a
  field per offset; recursive sketches produce named, self-referential structs
  (re-rolling, Example G.3);
* **functions** -- nodes with ``in``/``out`` capabilities become function
  pointers.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .ctype import (
    BoolType,
    CType,
    CodeType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructField,
    StructRef,
    StructType,
    TypedefType,
    UnionType,
    UnknownType,
    VoidType,
)
from .labels import FieldLabel, InLabel, Label, LoadLabel, OutLabel, StoreLabel, Variance
from .lattice import BOTTOM, TOP, TypeLattice
from .sketches import Sketch


#: Lattice atoms that map directly onto C scalar types.
_ATOM_TYPES: Dict[str, CType] = {
    "int": IntType(32, True),
    "uint": IntType(32, False),
    "int64": IntType(64, True),
    "uint64": IntType(64, False),
    "int16": IntType(16, True),
    "uint16": IntType(16, False),
    "int8": IntType(8, True),
    "uint8": IntType(8, False),
    "char": IntType(8, True),
    "bool": BoolType(),
    "float": FloatType(32),
    "double": FloatType(64),
    "num64": IntType(64, True),
    "num32": IntType(32, True),
    "num16": IntType(16, True),
    "num8": IntType(8, True),
    "code": CodeType(),
    "ptr": PointerType(UnknownType()),
    "str": PointerType(IntType(8, True)),
    "size_t": TypedefType("size_t", IntType(32, False)),
    "ssize_t": TypedefType("ssize_t", IntType(32, True)),
    "FILE": TypedefType("FILE", UnknownType(32)),
    "HANDLE": TypedefType("HANDLE", PointerType(VoidType())),
    "SOCKET": TypedefType("SOCKET", IntType(32, False)),
    "WPARAM": TypedefType("WPARAM", IntType(32, False)),
    "LPARAM": TypedefType("LPARAM", IntType(32, True)),
    "DWORD": TypedefType("DWORD", IntType(32, False)),
    "url": TypedefType("url", PointerType(IntType(8, True))),
}


class TypeDisplay:
    """Stateful sketch-to-C-type converter (keeps a table of named structs)."""

    def __init__(self, lattice: TypeLattice, pointer_size: int = 32) -> None:
        self.lattice = lattice
        self.pointer_size = pointer_size
        self.structs: Dict[str, StructType] = {}
        self._struct_counter = itertools.count()
        self._signature_names: Dict[Tuple, str] = {}

    # -- public API ----------------------------------------------------------------

    def ctype_of_sketch(
        self,
        sketch: Sketch,
        variance: Variance = Variance.COVARIANT,
        default_size: int = 32,
    ) -> CType:
        """Convert a whole sketch (from its root) to a C type."""
        return self._convert(sketch, sketch.root, variance, {}, default_size)

    def struct_definitions(self) -> Dict[str, StructType]:
        """All named structs synthesized so far (for pretty-printing)."""
        return dict(self.structs)

    # -- scalar conversion ------------------------------------------------------------

    def scalar_from_bounds(
        self, lower: str, upper: str, variance: Variance, default_size: int = 32
    ) -> CType:
        """Pick a display type for a node with no capabilities."""
        preferred, fallback = (
            (lower, upper) if variance is Variance.COVARIANT else (upper, lower)
        )
        for bound in (preferred, fallback):
            if bound in (TOP, BOTTOM):
                continue
            return self.atom_to_ctype(bound, default_size)
        # No lattice evidence at all: fall back to a sized integer, the default
        # every deployed tool uses for an otherwise-unconstrained machine word.
        if default_size in (8, 16, 32, 64):
            return IntType(default_size, True)
        return UnknownType(default_size)

    def atom_to_ctype(self, atom: str, default_size: int = 32) -> CType:
        if atom in _ATOM_TYPES:
            return _ATOM_TYPES[atom]
        if atom.startswith("#"):
            return TypedefType(atom, IntType(default_size, True))
        if atom in self.lattice:
            return TypedefType(atom, IntType(default_size, True))
        return UnknownType(default_size)

    def union_of_atoms(self, atoms: Sequence[str], default_size: int = 32) -> CType:
        """Union policy (Example 4.2): incomparable atoms become a C union."""
        antichain = self.lattice.antichain(atoms)
        members = tuple(self.atom_to_ctype(atom, default_size) for atom in antichain)
        if not members:
            return UnknownType(default_size)
        if len(members) == 1:
            return members[0]
        return UnionType(members)

    # -- structural conversion -----------------------------------------------------------

    def _convert(
        self,
        sketch: Sketch,
        node: int,
        variance: Variance,
        in_progress: Dict[int, str],
        default_size: int,
    ) -> CType:
        if node in in_progress:
            return StructRef(in_progress[node])

        successors = sketch.successors(node)
        field_children = {
            label: target
            for label, target in successors.items()
            if isinstance(label, FieldLabel)
        }
        load_child = next(
            (t for lab, t in successors.items() if isinstance(lab, LoadLabel)), None
        )
        store_child = next(
            (t for lab, t in successors.items() if isinstance(lab, StoreLabel)), None
        )
        in_children = {
            label: target
            for label, target in successors.items()
            if isinstance(label, InLabel)
        }
        out_children = {
            label: target
            for label, target in successors.items()
            if isinstance(label, OutLabel)
        }

        data = sketch.node(node)

        if field_children:
            return self._struct_from_fields(
                sketch, node, field_children, variance, in_progress, default_size
            )

        if load_child is not None or store_child is not None:
            pointee_node = load_child if load_child is not None else store_child
            pointee_variance = variance if load_child is not None else variance.flip()
            pointee = self._convert(
                sketch, pointee_node, pointee_variance, in_progress, default_size
            )
            const = load_child is not None and store_child is None
            return PointerType(pointee, const=const, size_bits=self.pointer_size)

        if in_children or out_children:
            params = []
            for label in sorted(in_children, key=_in_sort_key):
                params.append(
                    self._convert(
                        sketch,
                        in_children[label],
                        variance.flip(),
                        in_progress,
                        default_size,
                    )
                )
            if out_children:
                out_label = sorted(out_children, key=str)[0]
                ret = self._convert(
                    sketch, out_children[out_label], variance, in_progress, default_size
                )
            else:
                ret = VoidType()
            return FunctionType(tuple(params), ret)

        return self.scalar_from_bounds(data.lower, data.upper, variance, default_size)

    def _struct_from_fields(
        self,
        sketch: Sketch,
        node: int,
        field_children: Dict[Label, int],
        variance: Variance,
        in_progress: Dict[int, str],
        default_size: int,
    ) -> CType:
        offsets = sorted({label.offset for label in field_children})
        # Single field at offset zero degenerates to the field type itself
        # (a pointer to the first member is indistinguishable from a pointer to
        # the struct, section 2.4) -- unless the node is recursive.
        name = f"struct_{next(self._struct_counter)}"
        in_progress = dict(in_progress)
        in_progress[node] = name

        fields: List[StructField] = []
        for label in sorted(field_children, key=lambda lab: (lab.offset, lab.size_bits)):
            child = field_children[label]
            ctype = self._convert(
                sketch, child, variance, in_progress, label.size_bits
            )
            fields.append(StructField(label.offset, ctype, f"field_{label.offset}"))

        recursive = any(
            isinstance(f.ctype, PointerType) and isinstance(f.ctype.pointee, StructRef)
            and f.ctype.pointee.name == name
            for f in fields
        ) or any(isinstance(f.ctype, StructRef) and f.ctype.name == name for f in fields)

        if len(fields) == 1 and fields[0].offset == 0 and not recursive:
            return fields[0].ctype

        # Re-rolling (Example G.3): identical field signatures reuse one name.
        signature = tuple((f.offset, str(f.ctype)) for f in fields)
        if not recursive and signature in self._signature_names:
            return StructRef(self._signature_names[signature])

        struct = StructType(name, tuple(fields))
        self.structs[name] = struct
        self._signature_names[signature] = name
        return struct

    # -- function signatures ------------------------------------------------------------

    def function_type(
        self,
        in_sketches: Sequence[Tuple[str, Sketch]],
        out_sketches: Sequence[Tuple[str, Sketch]],
    ) -> Tuple[FunctionType, List[str]]:
        """Build a function type from per-formal sketches.

        ``in_sketches`` / ``out_sketches`` are sequences of (location, sketch)
        pairs; locations are used to order parameters and to name them.
        Returns the function type and the parameter names.
        """
        params: List[CType] = []
        names: List[str] = []
        for location, sketch in sorted(in_sketches, key=lambda kv: location_sort_key(kv[0])):
            params.append(self.ctype_of_sketch(sketch, Variance.CONTRAVARIANT))
            names.append(f"arg_{location}")
        if out_sketches:
            ret = self.ctype_of_sketch(out_sketches[0][1], Variance.COVARIANT)
        else:
            ret = VoidType()
        return FunctionType(tuple(params), ret), names


def _in_sort_key(label: InLabel) -> Tuple[int, str]:
    return location_sort_key(label.location)


def location_sort_key(location: str) -> Tuple[int, str]:
    """Parameter display order: stack slots numerically first, then registers."""
    if location.startswith("stack"):
        try:
            return (0, f"{int(location[5:]):08d}")
        except ValueError:
            return (0, location)
    return (1, location)
