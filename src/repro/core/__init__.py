"""The core Retypd reproduction: type system, constraint solving, display.

The public surface re-exported here is what examples, the evaluation harness
and downstream users are expected to import::

    from repro.core import (
        ConstraintSet, SubtypeConstraint, DerivedTypeVariable,
        Solver, ProcedureTypingInput, Callsite,
        TypeLattice, default_lattice, TypeDisplay,
    )
"""

from .labels import (
    COVARIANT,
    CONTRAVARIANT,
    FieldLabel,
    InLabel,
    Label,
    LoadLabel,
    OutLabel,
    StoreLabel,
    Variance,
    LOAD,
    STORE,
    field,
    in_label,
    out_label,
    parse_label,
    parse_label_word,
    path_variance,
)
from .variables import DerivedTypeVariable, fresh_var, parse_dtv
from .constraints import (
    AddConstraint,
    ConstraintSet,
    SubConstraint,
    SubtypeConstraint,
    parse_constraint,
    parse_constraints,
)
from .lattice import BOTTOM, TOP, TypeLattice, default_lattice
from .deduction import DeductionEngine, entails
from .graph import ConstraintGraph, Edge, EdgeKind, Node
from .saturation import saturate, saturated
from .simplify import derive_constant_bounds, derives, proves, simplify_constraints
from .sketches import Sketch, SketchNode, top_sketch
from .shapes import ShapeInference, infer_shapes
from .schemes import TypeScheme, monomorphic_scheme
from .solver import (
    Callsite,
    ProcedureResult,
    ProcedureTypingInput,
    SolveStats,
    Solver,
    SolverConfig,
    scheme_from_shapes,
    tarjan_sccs,
)
from .ctype import (
    ArrayType,
    BoolType,
    CType,
    CodeType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructField,
    StructRef,
    StructType,
    TypedefType,
    UnionType,
    UnknownType,
    VoidType,
    render_function,
)
from .display import TypeDisplay

__all__ = [
    "AddConstraint",
    "ArrayType",
    "BOTTOM",
    "BoolType",
    "COVARIANT",
    "CONTRAVARIANT",
    "CType",
    "Callsite",
    "CodeType",
    "ConstraintGraph",
    "ConstraintSet",
    "DeductionEngine",
    "DerivedTypeVariable",
    "Edge",
    "EdgeKind",
    "FieldLabel",
    "FloatType",
    "FunctionType",
    "InLabel",
    "IntType",
    "LOAD",
    "Label",
    "LoadLabel",
    "Node",
    "OutLabel",
    "PointerType",
    "ProcedureResult",
    "ProcedureTypingInput",
    "STORE",
    "Sketch",
    "SketchNode",
    "SolveStats",
    "ShapeInference",
    "Solver",
    "SolverConfig",
    "StoreLabel",
    "StructField",
    "StructRef",
    "StructType",
    "SubConstraint",
    "SubtypeConstraint",
    "TOP",
    "TypeDisplay",
    "TypeLattice",
    "TypeScheme",
    "TypedefType",
    "UnionType",
    "UnknownType",
    "Variance",
    "VoidType",
    "default_lattice",
    "derive_constant_bounds",
    "derives",
    "entails",
    "field",
    "fresh_var",
    "in_label",
    "infer_shapes",
    "monomorphic_scheme",
    "out_label",
    "parse_constraint",
    "parse_constraints",
    "parse_dtv",
    "parse_label",
    "parse_label_word",
    "path_variance",
    "proves",
    "render_function",
    "saturate",
    "saturated",
    "scheme_from_shapes",
    "simplify_constraints",
    "tarjan_sccs",
    "top_sketch",
]
