"""Dense-ID intern pools: the backbone of the integer solver kernel.

The hot core (constraint graph, saturation, path simplification) runs over
compact integer IDs instead of interned objects; this module supplies the
pools that assign those IDs and the conventions every consumer packs them
with.  Three ID spaces exist per solve:

* **dtv ids** (``did``): one per :class:`~repro.core.variables.
  DerivedTypeVariable` mentioned in a constraint graph, assigned in
  **insertion order** -- the graph constructor interns its variables in
  sorted-by-``str`` order, so IDs are a pure function of the constraint set
  and never depend on the per-process string hash seed;
* **node ids** (``nid``): ``did * 2 + variance_bit`` with ``0`` for covariant
  and ``1`` for contravariant; a node's variance twin is ``nid ^ 1``;
* **label ids** (``lid``): one per distinct field label.  Because ``0`` is a
  useful sentinel for "no label", edge records and packed stacks carry
  ``lidp = lid + 1``.

Pending-label stacks (the ``beta`` of the path bookkeeping) pack into a
single int base ``len(labels) + 1``: the top of the stack lives in the least
significant digit, so ``push`` is ``beta * base + lidp``, ``pop`` is
``divmod(beta, base)``, and decoding by repeated ``divmod`` yields the labels
top-first -- exactly the ``reversed(beta)`` order the right-hand side of a
read-off judgement needs.  Alpha suffixes pack the same way with the *first*
appended label least significant, making prepend ``lidp + suffix * base``.

The pools themselves are deliberately tiny: an ordered list plus a reverse
dict, with the internals (`items`, `ids`) exposed so hot loops can bind the
dict's ``get`` / the list's indexing once instead of paying a method call per
event.  :class:`StringTable` is the same structure specialized for the
process-pool codec's per-task string-intern tables.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class InternPool(Generic[T]):
    """An insertion-ordered pool mapping hashable items to dense ints."""

    __slots__ = ("items", "ids")

    def __init__(self) -> None:
        #: id -> item, in insertion order (the decode direction).
        self.items: List[T] = []
        #: item -> id (the encode direction).
        self.ids: Dict[T, int] = {}

    def intern(self, item: T) -> int:
        """Return the item's id, assigning the next dense id if it is new."""
        ident = self.ids.get(item)
        if ident is None:
            ident = len(self.items)
            self.ids[item] = ident
            self.items.append(item)
        return ident

    def get(self, item: T) -> Optional[int]:
        """The item's id, or ``None`` if it was never interned."""
        return self.ids.get(item)

    def __getitem__(self, ident: int) -> T:
        return self.items[ident]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[T]:
        return iter(self.items)

    def __contains__(self, item: T) -> bool:
        return item in self.ids


class StringTable(InternPool[str]):
    """A string-intern table for compact codecs (one per procpool task).

    Encoders call :meth:`intern` for every string occurrence and ship
    ``items`` once; decoders index into the shipped list, parsing each
    distinct string at most once no matter how many flat-array slots
    reference it.
    """

    __slots__ = ()

    def to_list(self) -> List[str]:
        """The table payload to ship (the id -> string list itself)."""
        return self.items
