"""Constraint-set simplification (section 5) over the saturated constraint graph.

After saturation every derivable judgement ``A.u <= B.v`` is witnessed by a
path through the constraint graph.  Walking a path while tracking

* ``alpha`` -- labels appended to the *source* variable (recall edges taken
  with an empty pending stack), and
* ``beta`` -- the pending stack of forgotten labels (forget edges push, recall
  edges pop),

lets us read the judgement off the endpoints: the left-hand side is
``source.alpha``, the right-hand side is ``end.reverse(beta)``, and the
orientation flips when ``alpha`` is contravariant (see DESIGN.md section on
path simplification for the invariant).

``simplify_constraints`` enumerates the judgements witnessed by paths between
interesting variables whose interior nodes mention only *uninteresting*
variables (Definition D.1) and returns the resulting constraint set.  This is
the constraint simplification used to build procedure type schemes: it
eliminates procedure-local temporaries while preserving every interesting
consequence.

The traversal is a *memoized state search* shared across all interesting
sources.  The exploration state is ``(node, len(alpha), beta)``: completions
from a state depend only on the node, the pending stack and how much label
budget alpha has left -- never on alpha's content or on which source got
there.  The forward pass therefore discovers each interior state once (where
the old per-source recursive DFS re-walked shared interior subpaths for every
source and carried a global path budget that silently truncated results on
large graphs); a reverse fixpoint then propagates terminal judgements back to
the sources.  The state search also witnesses judgements the old elementary
enumeration missed: paths that revisit a node with a *different* pending
stack (recursive structures deriving e.g. ``list.load.next.load.next <= t``)
are valid derivations and are now enumerated up to the depth bound, matching
the deduction rules of Figure 3.

``derive_constant_bounds`` performs the Appendix D.4 queries: which derived
type variables are bounded above/below by which type constants.  The solver
uses it to decorate sketch nodes with lattice elements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .constraints import ConstraintSet, SubtypeConstraint
from .graph import ConstraintGraph, Edge, EdgeKind, Node
from .labels import Label, Variance, path_variance
from .lattice import TypeLattice
from .saturation import saturate
from .variables import DerivedTypeVariable


@dataclass(frozen=True)
class _PathState:
    """One point of a walk: current node, labels appended to the source
    (``alpha``) and the pending stack of forgotten labels (``beta``).

    Retained for the single-step semantics (:func:`_step`) shared with the
    reference implementation kept in ``tests/``.
    """

    node: Node
    alpha: Tuple[Label, ...]
    beta: Tuple[Label, ...]


def _step(state: _PathState, edge: Edge) -> Optional[_PathState]:
    """Apply one edge to the bookkeeping state; ``None`` when the path is invalid."""
    if edge.is_null:
        return _PathState(edge.target, state.alpha, state.beta)
    if edge.kind is EdgeKind.FORGET:
        return _PathState(edge.target, state.alpha, state.beta + (edge.label,))
    # Recall edge.
    if state.beta:
        if state.beta[-1] != edge.label:
            return None
        return _PathState(edge.target, state.alpha, state.beta[:-1])
    return _PathState(edge.target, state.alpha + (edge.label,), state.beta)


def _constraint_from_state(
    source: Node, state: _PathState
) -> Optional[SubtypeConstraint]:
    """Read the subtype judgement witnessed by a finished path."""
    lhs = source.dtv.with_labels(state.alpha)
    rhs = state.node.dtv.with_labels(tuple(reversed(state.beta)))
    orientation = source.variance * path_variance(state.alpha)
    if orientation is Variance.COVARIANT:
        constraint = SubtypeConstraint(lhs, rhs)
    else:
        constraint = SubtypeConstraint(rhs, lhs)
    if constraint.left == constraint.right:
        return None
    return constraint


#: an exploration state: (node, labels appended to the source so far, pending stack).
_StateKey = Tuple[Node, int, Tuple[Label, ...]]
#: a completed judgement relative to a state: (end node, alpha suffix appended
#: at or after the state, final pending stack).
_Completion = Tuple[Node, Tuple[Label, ...], Tuple[Label, ...]]


def simplify_constraints(
    constraints: ConstraintSet,
    interesting: Iterable[str],
    graph: Optional[ConstraintGraph] = None,
    max_label_depth: int = 6,
    max_paths: Optional[int] = None,
) -> ConstraintSet:
    """Compute a simplification of ``constraints`` relative to ``interesting`` bases.

    Every *interesting* consequence of ``constraints`` (Definition 5.1) whose
    derivation stays within the label-depth bound is entailed by the returned
    constraint set.  Interior variables (temporaries) are eliminated.

    ``max_paths`` is accepted for backward compatibility and ignored: the
    memoized traversal visits each ``(node, alpha-depth, beta-stack)`` state
    once, so it needs no path budget and never truncates.
    """
    interesting_bases = set(interesting)
    if graph is None:
        graph = ConstraintGraph(constraints)
        saturate(graph)

    sources = [node for node in graph.nodes if node.dtv.base in interesting_bases]

    # -- forward pass: discover the shared state graph --------------------------
    #
    # States reached at interesting nodes become terminal *completions* of the
    # state they were stepped from (elementary proofs stop at interesting
    # variables); only uninteresting states are expanded.  Source states are
    # expanded too -- walks begin there -- without stopping terminal arrivals
    # from also being recorded at them.
    seen: Set[_StateKey] = set()
    frontier: Deque[_StateKey] = deque()
    #: state -> {(predecessor state, label appended on that transition)}
    preds: Dict[_StateKey, Set[Tuple[_StateKey, Optional[Label]]]] = {}
    #: state -> completions contributed by its direct terminal transitions
    comp: Dict[_StateKey, Set[_Completion]] = {}
    propagate: Deque[Tuple[_StateKey, _Completion]] = deque()

    def _complete(key: _StateKey, completion: _Completion) -> None:
        entries = comp.get(key)
        if entries is None:
            entries = set()
            comp[key] = entries
        if completion not in entries:
            entries.add(completion)
            propagate.append((key, completion))

    initial_keys: List[Tuple[Node, _StateKey]] = []
    for source in sources:
        key: _StateKey = (source, 0, ())
        initial_keys.append((source, key))
        if key not in seen:
            seen.add(key)
            frontier.append(key)

    while frontier:
        key = frontier.popleft()
        node, depth, beta = key
        for edge in graph.out_edges(node):
            kind = edge.kind
            appended: Optional[Label] = None
            if kind is EdgeKind.FORGET:
                if len(beta) >= max_label_depth:
                    continue
                next_beta = beta + (edge.label,)
                next_depth = depth
            elif kind is EdgeKind.RECALL:
                if beta:
                    if beta[-1] != edge.label:
                        continue
                    next_beta = beta[:-1]
                    next_depth = depth
                else:
                    if depth >= max_label_depth:
                        continue
                    next_beta = beta
                    next_depth = depth + 1
                    appended = edge.label
            else:  # null edge
                next_beta = beta
                next_depth = depth
            target = edge.target
            if target.dtv.base in interesting_bases:
                suffix = (appended,) if appended is not None else ()
                _complete(key, (target, suffix, next_beta))
                continue
            next_key: _StateKey = (target, next_depth, next_beta)
            preds.setdefault(next_key, set()).add((key, appended))
            if next_key not in seen:
                seen.add(next_key)
                frontier.append(next_key)

    # -- reverse fixpoint: flow completions back towards the sources ------------
    #
    # A transition that appended label ``l`` turns a successor completion with
    # alpha suffix ``w`` into one with suffix ``l.w``; depth bookkeeping in the
    # forward pass guarantees the suffix never exceeds the label budget.
    while propagate:
        key, completion = propagate.popleft()
        predecessors = preds.get(key)
        if not predecessors:
            continue
        end, suffix, final_beta = completion
        for pred_key, appended in predecessors:
            if appended is None:
                _complete(pred_key, completion)
            else:
                _complete(pred_key, (end, (appended,) + suffix, final_beta))

    # -- read the judgements off at each source ---------------------------------
    output = ConstraintSet()
    for source, key in initial_keys:
        for end, alpha, final_beta in comp.get(key, ()):
            constraint = _constraint_from_state(
                source, _PathState(end, alpha, final_beta)
            )
            if constraint is not None:
                output.add(constraint)
    return output


def derives(
    graph: ConstraintGraph,
    left: DerivedTypeVariable,
    right: DerivedTypeVariable,
    max_label_depth: int = 6,
) -> bool:
    """Does the *saturated* ``graph`` witness the judgement ``left <= right``?

    A direct reachability query over ``(node, pending-stack)`` states: walk
    from the node of ``left`` (covariantly) looking for a state that reads
    back as ``right``, and dually from the node of ``right`` (contravariantly)
    looking for ``left``.  Unlike membership in a simplified constraint set,
    the query may pass *through* nodes of interesting variables, so judgements
    like ``{a.load <= a, b <= a.load} |- b <= a`` -- where every witnessing
    path crosses another judgement's endpoint -- are found (the latent
    disagreement with the Figure 3 deduction rules recorded in ROADMAP.md).
    """
    if left == right:
        return False
    if _reaches(graph, Node(left, Variance.COVARIANT), right, max_label_depth):
        return True
    return _reaches(graph, Node(right, Variance.CONTRAVARIANT), left, max_label_depth)


def _reaches(
    graph: ConstraintGraph,
    start: Node,
    goal: DerivedTypeVariable,
    max_label_depth: int,
) -> bool:
    """Is there a path from ``start`` to a state reading back as ``goal``?

    Alpha never grows here: a judgement about ``start.dtv`` itself is wanted,
    and recalls that would extend the source are simulated by the explicit
    forget/recall pairs of the prefix nodes (the graph always contains them
    for the goal endpoints).
    """
    if start not in graph.nodes:
        return False
    initial: Tuple[Node, Tuple[Label, ...]] = (start, ())
    seen = {initial}
    stack = [initial]
    while stack:
        node, beta = stack.pop()
        if node.dtv.with_labels(tuple(reversed(beta))) == goal:
            return True
        for edge in graph.out_edges(node):
            kind = edge.kind
            if kind is EdgeKind.FORGET:
                if len(beta) >= max_label_depth:
                    continue
                state = (edge.target, beta + (edge.label,))
            elif kind is EdgeKind.RECALL:
                if not beta or beta[-1] != edge.label:
                    continue
                state = (edge.target, beta[:-1])
            else:
                state = (edge.target, beta)
            if state not in seen:
                seen.add(state)
                stack.append(state)
    return False


def proves(
    constraints: ConstraintSet,
    goal: SubtypeConstraint,
    max_label_depth: int = 6,
) -> bool:
    """Does the pushdown machinery derive ``goal`` from ``constraints``?

    Builds the saturated constraint graph (with the goal's endpoints forced in)
    and runs the :func:`derives` reachability query.
    """
    graph = ConstraintGraph(constraints, extra_dtvs=(goal.left, goal.right))
    saturate(graph)
    return derives(graph, goal.left, goal.right, max_label_depth)


# ---------------------------------------------------------------------------
# Constant-bound queries (Appendix D.4)
# ---------------------------------------------------------------------------


def derive_constant_bounds(
    graph: ConstraintGraph,
    lattice: TypeLattice,
    max_pending: int = 6,
    max_states: int = 100_000,
) -> List[Tuple[DerivedTypeVariable, str, str]]:
    """Enumerate judgements ``const <= dtv`` and ``dtv <= const``.

    Returns triples ``(dtv, kind, constant)`` where ``kind`` is ``"lower"``
    (the constant flows into the variable) or ``"upper"`` (the variable flows
    into the constant).  The traversal explores the saturated graph from every
    type-constant node, tracking the pending label stack so the judgement's
    variable side can be reconstructed; recursion is kept finite by bounding
    the pending depth and the number of visited states.
    """
    results: List[Tuple[DerivedTypeVariable, str, str]] = []
    seen_results: Set[Tuple[DerivedTypeVariable, str, str]] = set()

    constant_nodes = [
        node
        for node in graph.nodes
        if node.dtv.is_base and lattice.is_constant(node.dtv.base)
    ]

    for start in constant_nodes:
        kind = "lower" if start.variance is Variance.COVARIANT else "upper"
        constant = start.dtv.base
        visited: Set[Tuple[Node, Tuple[Label, ...]]] = set()
        stack: List[Tuple[Node, Tuple[Label, ...]]] = [(start, ())]
        states = 0
        while stack and states < max_states:
            node, beta = stack.pop()
            if (node, beta) in visited:
                continue
            visited.add((node, beta))
            states += 1
            for edge in graph.out_edges(node):
                if edge.kind is EdgeKind.FORGET:
                    if len(beta) >= max_pending:
                        continue
                    new_beta = beta + (edge.label,)
                elif edge.kind is EdgeKind.RECALL:
                    if not beta or beta[-1] != edge.label:
                        continue  # constants have no capabilities of their own
                    new_beta = beta[:-1]
                else:
                    new_beta = beta
                target = edge.target
                dtv = target.dtv.with_labels(tuple(reversed(new_beta)))
                if not (dtv.is_base and lattice.is_constant(dtv.base)):
                    entry = (dtv, kind, constant)
                    if entry not in seen_results:
                        seen_results.add(entry)
                        results.append(entry)
                if (target, new_beta) not in visited:
                    stack.append((target, new_beta))
    return results
