"""Constraint-set simplification (section 5) over the saturated constraint graph.

After saturation every derivable judgement ``A.u <= B.v`` is witnessed by a
path through the constraint graph.  Walking a path while tracking

* ``alpha`` -- labels appended to the *source* variable (recall edges taken
  with an empty pending stack), and
* ``beta`` -- the pending stack of forgotten labels (forget edges push, recall
  edges pop),

lets us read the judgement off the endpoints: the left-hand side is
``source.alpha``, the right-hand side is ``end.reverse(beta)``, and the
orientation flips when ``alpha`` is contravariant (see DESIGN.md section 5 for
the invariant).

``simplify_constraints`` enumerates elementary paths -- paths whose interior
nodes mention only *uninteresting* variables (Definition D.1) -- between
interesting variables and returns the resulting constraint set.  This is the
constraint simplification used to build procedure type schemes: it eliminates
procedure-local temporaries while preserving every interesting consequence.

``derive_constant_bounds`` performs the Appendix D.4 queries: which derived
type variables are bounded above/below by which type constants.  The solver
uses it to decorate sketch nodes with lattice elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .constraints import ConstraintSet, SubtypeConstraint
from .graph import ConstraintGraph, Edge, EdgeKind, Node
from .labels import Label, Variance, path_variance
from .lattice import TypeLattice
from .saturation import saturate
from .variables import DerivedTypeVariable


@dataclass(frozen=True)
class _PathState:
    node: Node
    alpha: Tuple[Label, ...]
    beta: Tuple[Label, ...]


def _step(state: _PathState, edge: Edge) -> Optional[_PathState]:
    """Apply one edge to the bookkeeping state; ``None`` when the path is invalid."""
    if edge.is_null:
        return _PathState(edge.target, state.alpha, state.beta)
    if edge.kind is EdgeKind.FORGET:
        return _PathState(edge.target, state.alpha, state.beta + (edge.label,))
    # Recall edge.
    if state.beta:
        if state.beta[-1] != edge.label:
            return None
        return _PathState(edge.target, state.alpha, state.beta[:-1])
    return _PathState(edge.target, state.alpha + (edge.label,), state.beta)


def _constraint_from_state(
    source: Node, state: _PathState
) -> Optional[SubtypeConstraint]:
    """Read the subtype judgement witnessed by a finished path."""
    lhs = source.dtv.with_labels(state.alpha)
    rhs = state.node.dtv.with_labels(tuple(reversed(state.beta)))
    orientation = source.variance * path_variance(state.alpha)
    if orientation is Variance.COVARIANT:
        constraint = SubtypeConstraint(lhs, rhs)
    else:
        constraint = SubtypeConstraint(rhs, lhs)
    if constraint.left == constraint.right:
        return None
    return constraint


def simplify_constraints(
    constraints: ConstraintSet,
    interesting: Iterable[str],
    graph: Optional[ConstraintGraph] = None,
    max_label_depth: int = 6,
    max_paths: int = 200_000,
) -> ConstraintSet:
    """Compute a simplification of ``constraints`` relative to ``interesting`` bases.

    Every *interesting* consequence of ``constraints`` (Definition 5.1) whose
    derivation stays within the label-depth bound is entailed by the returned
    constraint set.  Interior variables (temporaries) are eliminated.
    """
    interesting_bases = set(interesting)
    if graph is None:
        graph = ConstraintGraph(constraints)
        saturate(graph)

    output = ConstraintSet()
    start_nodes = [
        node
        for node in sorted(graph.nodes, key=str)
        if node.dtv.base in interesting_bases
    ]

    budget = [max_paths]

    def explore(source: Node, state: _PathState, visited: Set[Node]) -> None:
        if budget[0] <= 0:
            return
        for edge in graph.out_edges(state.node):
            next_state = _step(state, edge)
            if next_state is None:
                continue
            if len(next_state.alpha) > max_label_depth:
                continue
            if len(next_state.beta) > max_label_depth:
                continue
            target = next_state.node
            if target.dtv.base in interesting_bases:
                budget[0] -= 1
                constraint = _constraint_from_state(source, next_state)
                if constraint is not None:
                    output.add(constraint)
                continue  # elementary proofs stop at interesting variables
            if target in visited:
                continue
            visited.add(target)
            explore(source, next_state, visited)
            visited.discard(target)

    for source in start_nodes:
        initial = _PathState(source, (), ())
        explore(source, initial, {source})

    return output


def proves(
    constraints: ConstraintSet,
    goal: SubtypeConstraint,
    max_label_depth: int = 6,
) -> bool:
    """Does the pushdown machinery derive ``goal`` from ``constraints``?

    Convenience wrapper used heavily in tests: simplification relative to the
    two endpoint bases must contain the goal.
    """
    bases = {goal.left.base, goal.right.base}
    simplified = simplify_constraints(
        constraints, bases, max_label_depth=max_label_depth
    )
    return goal in simplified.subtype


# ---------------------------------------------------------------------------
# Constant-bound queries (Appendix D.4)
# ---------------------------------------------------------------------------


def derive_constant_bounds(
    graph: ConstraintGraph,
    lattice: TypeLattice,
    max_pending: int = 6,
    max_states: int = 100_000,
) -> List[Tuple[DerivedTypeVariable, str, str]]:
    """Enumerate judgements ``const <= dtv`` and ``dtv <= const``.

    Returns triples ``(dtv, kind, constant)`` where ``kind`` is ``"lower"``
    (the constant flows into the variable) or ``"upper"`` (the variable flows
    into the constant).  The traversal explores the saturated graph from every
    type-constant node, tracking the pending label stack so the judgement's
    variable side can be reconstructed; recursion is kept finite by bounding
    the pending depth and the number of visited states.
    """
    results: List[Tuple[DerivedTypeVariable, str, str]] = []
    seen_results: Set[Tuple[DerivedTypeVariable, str, str]] = set()

    constant_nodes = [
        node
        for node in graph.nodes
        if node.dtv.is_base and lattice.is_constant(node.dtv.base)
    ]

    for start in constant_nodes:
        kind = "lower" if start.variance is Variance.COVARIANT else "upper"
        constant = start.dtv.base
        visited: Set[Tuple[Node, Tuple[Label, ...]]] = set()
        stack: List[Tuple[Node, Tuple[Label, ...]]] = [(start, ())]
        states = 0
        while stack and states < max_states:
            node, beta = stack.pop()
            if (node, beta) in visited:
                continue
            visited.add((node, beta))
            states += 1
            for edge in graph.out_edges(node):
                if edge.kind is EdgeKind.FORGET:
                    if len(beta) >= max_pending:
                        continue
                    new_beta = beta + (edge.label,)
                elif edge.kind is EdgeKind.RECALL:
                    if not beta or beta[-1] != edge.label:
                        continue  # constants have no capabilities of their own
                    new_beta = beta[:-1]
                else:
                    new_beta = beta
                target = edge.target
                dtv = target.dtv.with_labels(tuple(reversed(new_beta)))
                if not (dtv.is_base and lattice.is_constant(dtv.base)):
                    entry = (dtv, kind, constant)
                    if entry not in seen_results:
                        seen_results.add(entry)
                        results.append(entry)
                if (target, new_beta) not in visited:
                    stack.append((target, new_beta))
    return results
