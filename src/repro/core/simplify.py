"""Constraint-set simplification (section 5) over the saturated constraint graph.

After saturation every derivable judgement ``A.u <= B.v`` is witnessed by a
path through the constraint graph.  Walking a path while tracking

* ``alpha`` -- labels appended to the *source* variable (recall edges taken
  with an empty pending stack), and
* ``beta`` -- the pending stack of forgotten labels (forget edges push, recall
  edges pop),

lets us read the judgement off the endpoints: the left-hand side is
``source.alpha``, the right-hand side is ``end.reverse(beta)``, and the
orientation flips when ``alpha`` is contravariant (see DESIGN.md section on
path simplification for the invariant).

``simplify_constraints`` enumerates the judgements witnessed by paths between
interesting variables whose interior nodes mention only *uninteresting*
variables (Definition D.1) and returns the resulting constraint set.  This is
the constraint simplification used to build procedure type schemes: it
eliminates procedure-local temporaries while preserving every interesting
consequence.

The traversal is a *memoized state search* shared across all interesting
sources, run entirely over the graph's integer kernel.  The exploration state
is ``(node, len(alpha), beta)``: completions from a state depend only on the
node, the pending stack and how much label budget alpha has left -- never on
alpha's content or on which source got there.  States pack into single ints
(``(beta * (depth_bound + 1) + depth) * num_nodes + nid`` with ``beta`` a
base-``num_labels + 1`` digit string, top of stack least significant), so the
seen-set, predecessor map and completion sets are all small-int dict/set
operations; labels and derived type variables are only decoded at the final
judgement read-off.  The forward pass discovers each interior state once
(where the old per-source recursive DFS re-walked shared interior subpaths
for every source and carried a global path budget that silently truncated
results on large graphs); a reverse fixpoint then propagates terminal
judgements back to the sources.  The state search also witnesses judgements
the old elementary enumeration missed: paths that revisit a node with a
*different* pending stack (recursive structures deriving e.g.
``list.load.next.load.next <= t``) are valid derivations and are enumerated
up to the depth bound, matching the deduction rules of Figure 3.

``derive_constant_bounds`` performs the Appendix D.4 queries: which derived
type variables are bounded above/below by which type constants.  The solver
uses it to decorate sketch nodes with lattice elements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from .constraints import ConstraintSet, SubtypeConstraint
from .graph import (
    ConstraintGraph,
    Edge,
    EdgeKind,
    K_FORGET,
    K_RECALL,
    Node,
)
from .labels import Label, Variance, path_variance
from .lattice import TypeLattice
from .saturation import saturate
from .variables import DerivedTypeVariable


@dataclass(frozen=True)
class _PathState:
    """One point of a walk: current node, labels appended to the source
    (``alpha``) and the pending stack of forgotten labels (``beta``).

    Retained for the single-step semantics (:func:`_step`) shared with the
    reference implementation kept in ``tests/``.
    """

    node: Node
    alpha: Tuple[Label, ...]
    beta: Tuple[Label, ...]


def _step(state: _PathState, edge: Edge) -> Optional[_PathState]:
    """Apply one edge to the bookkeeping state; ``None`` when the path is invalid."""
    if edge.is_null:
        return _PathState(edge.target, state.alpha, state.beta)
    if edge.kind is EdgeKind.FORGET:
        return _PathState(edge.target, state.alpha, state.beta + (edge.label,))
    # Recall edge.
    if state.beta:
        if state.beta[-1] != edge.label:
            return None
        return _PathState(edge.target, state.alpha, state.beta[:-1])
    return _PathState(edge.target, state.alpha + (edge.label,), state.beta)


def _constraint_from_state(
    source: Node, state: _PathState
) -> Optional[SubtypeConstraint]:
    """Read the subtype judgement witnessed by a finished path."""
    lhs = source.dtv.with_labels(state.alpha)
    rhs = state.node.dtv.with_labels(tuple(reversed(state.beta)))
    orientation = source.variance * path_variance(state.alpha)
    if orientation is Variance.COVARIANT:
        constraint = SubtypeConstraint(lhs, rhs)
    else:
        constraint = SubtypeConstraint(rhs, lhs)
    if constraint.left == constraint.right:
        return None
    return constraint


def _decode_word(packed: int, base: int, labels: List[Label]) -> Tuple[Label, ...]:
    """Unpack a base-``base`` digit string, least significant digit first."""
    out: List[Label] = []
    while packed:
        packed, digit = divmod(packed, base)
        out.append(labels[digit - 1])
    return tuple(out)


def simplify_constraints(
    constraints: ConstraintSet,
    interesting: Iterable[str],
    graph: Optional[ConstraintGraph] = None,
    max_label_depth: int = 6,
    max_paths: Optional[int] = None,
) -> ConstraintSet:
    """Compute a simplification of ``constraints`` relative to ``interesting`` bases.

    Every *interesting* consequence of ``constraints`` (Definition 5.1) whose
    derivation stays within the label-depth bound is entailed by the returned
    constraint set.  Interior variables (temporaries) are eliminated.

    ``max_paths`` is accepted for backward compatibility and ignored: the
    memoized traversal visits each ``(node, alpha-depth, beta-stack)`` state
    once, so it needs no path budget and never truncates.
    """
    interesting_bases = set(interesting)
    if graph is None:
        graph = ConstraintGraph(constraints)
        saturate(graph)

    depth_bound = max_label_depth
    dtvs = graph._dtvs.items
    labels = graph._labels.items
    num_nodes = 2 * len(dtvs)
    lp_base = len(labels) + 1
    #: one more digit than any suffix/stack can hold, so a completion packs
    #: as ``(suffix * suffix_base + beta) * num_nodes + end_nid``.
    suffix_base = lp_base ** (depth_bound + 1)
    depth_base = depth_bound + 1

    present = graph._present
    out_recs = graph._out_recs
    interesting_dtv = [dtv.base in interesting_bases for dtv in dtvs]

    # -- forward pass: discover the shared state graph --------------------------
    #
    # States reached at interesting nodes become terminal *completions* of the
    # state they were stepped from (elementary proofs stop at interesting
    # variables); only uninteresting states are expanded.  Source states are
    # expanded too -- walks begin there -- without stopping terminal arrivals
    # from also being recorded at them.
    seen: Set[int] = set()
    #: (state key, nid, alpha depth, packed beta, beta length)
    frontier: Deque[Tuple[int, int, int, int, int]] = deque()
    #: state key -> {(predecessor key, lidp appended on that transition | 0)}
    preds: Dict[int, Set[Tuple[int, int]]] = {}
    #: state key -> packed completions contributed by terminal transitions
    comp: Dict[int, Set[int]] = {}
    propagate: Deque[Tuple[int, int]] = deque()

    def _complete(key: int, completion: int) -> None:
        entries = comp.get(key)
        if entries is None:
            entries = set()
            comp[key] = entries
        if completion not in entries:
            entries.add(completion)
            propagate.append((key, completion))

    # A source state has empty alpha and beta, so its key is just its nid.
    initial_nids = [
        nid
        for nid in range(num_nodes)
        if present[nid] and interesting_dtv[nid >> 1]
    ]
    for nid in initial_nids:
        if nid not in seen:
            seen.add(nid)
            frontier.append((nid, nid, 0, 0, 0))

    while frontier:
        key, nid, depth, beta, beta_len = frontier.popleft()
        for kind, lidp, target in out_recs[nid]:
            appended = 0
            if kind == K_FORGET:
                if beta_len >= depth_bound:
                    continue
                next_beta = beta * lp_base + lidp
                next_blen = beta_len + 1
                next_depth = depth
            elif kind == K_RECALL:
                if beta:
                    if beta % lp_base != lidp:
                        continue
                    next_beta = beta // lp_base
                    next_blen = beta_len - 1
                    next_depth = depth
                else:
                    if depth >= depth_bound:
                        continue
                    next_beta = 0
                    next_blen = 0
                    next_depth = depth + 1
                    appended = lidp
            else:  # null edge
                next_beta = beta
                next_blen = beta_len
                next_depth = depth
            if interesting_dtv[target >> 1]:
                _complete(key, (appended * suffix_base + next_beta) * num_nodes + target)
                continue
            next_key = (next_beta * depth_base + next_depth) * num_nodes + target
            entry = preds.get(next_key)
            if entry is None:
                entry = set()
                preds[next_key] = entry
            entry.add((key, appended))
            if next_key not in seen:
                seen.add(next_key)
                frontier.append((next_key, target, next_depth, next_beta, next_blen))

    # -- reverse fixpoint: flow completions back towards the sources ------------
    #
    # A transition that appended label ``l`` turns a successor completion with
    # alpha suffix ``w`` into one with suffix ``l.w`` (a prepend is a new
    # least-significant digit); depth bookkeeping in the forward pass
    # guarantees the suffix never exceeds the label budget.
    while propagate:
        key, completion = propagate.popleft()
        predecessors = preds.get(key)
        if not predecessors:
            continue
        rest, end = divmod(completion, num_nodes)
        suffix, final_beta = divmod(rest, suffix_base)
        for pred_key, appended in predecessors:
            if appended:
                _complete(
                    pred_key,
                    ((appended + suffix * lp_base) * suffix_base + final_beta)
                    * num_nodes
                    + end,
                )
            else:
                _complete(pred_key, completion)

    # -- read the judgements off at each source ---------------------------------
    #
    # The only object decode in the whole pass: packed alpha digits come out
    # first-appended-first (the lhs word), packed beta digits top-first
    # (exactly the reversed stack the rhs needs).
    output = ConstraintSet()
    for nid in initial_nids:
        entries = comp.get(nid)
        if not entries:
            continue
        source_dtv = dtvs[nid >> 1]
        source_variance = Variance.CONTRAVARIANT if nid & 1 else Variance.COVARIANT
        for completion in entries:
            rest, end = divmod(completion, num_nodes)
            suffix, final_beta = divmod(rest, suffix_base)
            alpha = _decode_word(suffix, lp_base, labels)
            lhs = source_dtv.with_labels(alpha)
            rhs = dtvs[end >> 1].with_labels(_decode_word(final_beta, lp_base, labels))
            orientation = source_variance * path_variance(alpha)
            if orientation is Variance.COVARIANT:
                constraint = SubtypeConstraint(lhs, rhs)
            else:
                constraint = SubtypeConstraint(rhs, lhs)
            if constraint.left != constraint.right:
                output.add(constraint)
    return output


def derives(
    graph: ConstraintGraph,
    left: DerivedTypeVariable,
    right: DerivedTypeVariable,
    max_label_depth: int = 6,
) -> bool:
    """Does the *saturated* ``graph`` witness the judgement ``left <= right``?

    A direct reachability query over ``(node, pending-stack)`` states: walk
    from the node of ``left`` (covariantly) looking for a state that reads
    back as ``right``, and dually from the node of ``right`` (contravariantly)
    looking for ``left``.  Unlike membership in a simplified constraint set,
    the query may pass *through* nodes of interesting variables, so judgements
    like ``{a.load <= a, b <= a.load} |- b <= a`` -- where every witnessing
    path crosses another judgement's endpoint -- are found (the latent
    disagreement with the Figure 3 deduction rules recorded in ROADMAP.md).
    """
    if left == right:
        return False
    if _reaches(graph, Node(left, Variance.COVARIANT), right, max_label_depth):
        return True
    return _reaches(graph, Node(right, Variance.CONTRAVARIANT), left, max_label_depth)


def _reaches(
    graph: ConstraintGraph,
    start: Node,
    goal: DerivedTypeVariable,
    max_label_depth: int,
) -> bool:
    """Is there a path from ``start`` to a state reading back as ``goal``?

    Alpha never grows here: a judgement about ``start.dtv`` itself is wanted,
    and recalls that would extend the source are simulated by the explicit
    forget/recall pairs of the prefix nodes (the graph always contains them
    for the goal endpoints).
    """
    start_nid = graph._node_nid(start)
    if start_nid is None:
        return False
    dtvs = graph._dtvs.items
    labels = graph._labels.items
    out_recs = graph._out_recs
    num_nodes = 2 * len(dtvs)
    lp_base = len(labels) + 1
    goal_base = goal.base
    goal_labels = goal.labels
    goal_len = len(goal_labels)

    seen: Set[int] = {start_nid}  # packed: beta * num_nodes + nid
    stack: List[Tuple[int, int, int]] = [(start_nid, 0, 0)]
    while stack:
        nid, beta, beta_len = stack.pop()
        dtv = dtvs[nid >> 1]
        own_labels = dtv.labels
        if (
            dtv.base == goal_base
            and len(own_labels) + beta_len == goal_len
            and goal_labels[: len(own_labels)] == own_labels
        ):
            # The state reads back as ``dtv . reversed(beta)``; decoding the
            # packed stack yields exactly that top-first order.
            if _decode_word(beta, lp_base, labels) == goal_labels[len(own_labels):]:
                return True
        for kind, lidp, target in out_recs[nid]:
            if kind == K_FORGET:
                if beta_len >= max_label_depth:
                    continue
                next_beta = beta * lp_base + lidp
                next_blen = beta_len + 1
            elif kind == K_RECALL:
                if not beta or beta % lp_base != lidp:
                    continue
                next_beta = beta // lp_base
                next_blen = beta_len - 1
            else:
                next_beta = beta
                next_blen = beta_len
            state = next_beta * num_nodes + target
            if state not in seen:
                seen.add(state)
                stack.append((target, next_beta, next_blen))
    return False


def proves(
    constraints: ConstraintSet,
    goal: SubtypeConstraint,
    max_label_depth: int = 6,
) -> bool:
    """Does the pushdown machinery derive ``goal`` from ``constraints``?

    Builds the saturated constraint graph (with the goal's endpoints forced in)
    and runs the :func:`derives` reachability query.
    """
    graph = ConstraintGraph(constraints, extra_dtvs=(goal.left, goal.right))
    saturate(graph)
    return derives(graph, goal.left, goal.right, max_label_depth)


# ---------------------------------------------------------------------------
# Constant-bound queries (Appendix D.4)
# ---------------------------------------------------------------------------


def derive_constant_bounds(
    graph: ConstraintGraph,
    lattice: TypeLattice,
    max_pending: int = 6,
    max_states: int = 100_000,
) -> List[Tuple[DerivedTypeVariable, str, str]]:
    """Enumerate judgements ``const <= dtv`` and ``dtv <= const``.

    Returns triples ``(dtv, kind, constant)`` where ``kind`` is ``"lower"``
    (the constant flows into the variable) or ``"upper"`` (the variable flows
    into the constant).  The traversal explores the saturated graph from every
    type-constant node over packed int states, tracking the pending label
    stack so the judgement's variable side can be reconstructed; recursion is
    kept finite by bounding the pending depth and the number of visited
    states.  Start nodes are enumerated in dtv-id (insertion) order, so the
    result list -- and through it the order lattice bounds are applied in --
    is a pure function of the constraint set.
    """
    results: List[Tuple[DerivedTypeVariable, str, str]] = []
    seen_results: Set[Tuple[DerivedTypeVariable, str, str]] = set()

    dtvs = graph._dtvs.items
    labels = graph._labels.items
    present = graph._present
    out_recs = graph._out_recs
    num_dtvs = len(dtvs)
    num_nodes = 2 * num_dtvs
    lp_base = len(labels) + 1
    is_constant = lattice.is_constant

    constant_dids = [
        did
        for did, dtv in enumerate(dtvs)
        if dtv.is_base and is_constant(dtv.base)
    ]

    #: shared decode memos: packed beta -> reversed label word, and
    #: ``beta * num_dtvs + did`` -> the derived variable it reads back as.
    word_cache: Dict[int, Tuple[Label, ...]] = {0: ()}
    dtv_cache: Dict[int, DerivedTypeVariable] = {}

    for did in constant_dids:
        for bit in (0, 1):
            start = did * 2 + bit
            if not present[start]:
                continue
            kind = "lower" if bit == 0 else "upper"
            constant = dtvs[did].base
            visited: Set[int] = set()
            stack: List[Tuple[int, int, int]] = [(start, 0, 0)]
            states = 0
            while stack and states < max_states:
                nid, beta, beta_len = stack.pop()
                state = beta * num_nodes + nid
                if state in visited:
                    continue
                visited.add(state)
                states += 1
                for edge_kind, lidp, target in out_recs[nid]:
                    if edge_kind == K_FORGET:
                        if beta_len >= max_pending:
                            continue
                        new_beta = beta * lp_base + lidp
                        new_blen = beta_len + 1
                    elif edge_kind == K_RECALL:
                        # Constants have no capabilities of their own.
                        if not beta or beta % lp_base != lidp:
                            continue
                        new_beta = beta // lp_base
                        new_blen = beta_len - 1
                    else:
                        new_beta = beta
                        new_blen = beta_len
                    dtv_key = new_beta * num_dtvs + (target >> 1)
                    dtv = dtv_cache.get(dtv_key)
                    if dtv is None:
                        word = word_cache.get(new_beta)
                        if word is None:
                            word = _decode_word(new_beta, lp_base, labels)
                            word_cache[new_beta] = word
                        dtv = dtvs[target >> 1].with_labels(word)
                        dtv_cache[dtv_key] = dtv
                    if not (dtv.is_base and is_constant(dtv.base)):
                        entry = (dtv, kind, constant)
                        if entry not in seen_results:
                            seen_results.add(entry)
                            results.append(entry)
                    if new_beta * num_nodes + target not in visited:
                        stack.append((target, new_beta, new_blen))
    return results
