"""The saturation algorithm (Algorithm D.2) as a worklist fixpoint over ints.

Saturation adds shortcut "null" edges to the constraint graph so that every
derivable subtype judgement is witnessed by a *reduced* path: one whose forget
operations all precede its recall operations.  The algorithm maintains, for
each node ``x``, a set ``R(x)`` of *reaching forgets*: pairs ``(l, origin)``
recording that some path from ``origin`` to ``x`` has exactly one pending
forgotten label ``l``.

Rules (cf. Algorithm D.2):

* a forget edge ``a --forget l--> b`` seeds ``(l, a)`` into ``R(b)``;
* null edges propagate: ``R(target) >= R(source)``;
* when ``x --recall l--> y`` exists and ``(l, origin)`` is in ``R(x)``, the
  pending label can be discharged: add the shortcut edge ``origin --> y``;
* the lazy S-POINTER rule: at a *contravariant* node ``(d, -)``, a pending
  ``.store`` may be replaced by a pending ``.load`` on the covariant twin
  ``(d, +)`` and vice versa.  This simulates the infinitely many
  ``d.store <= d.load`` axioms without instantiating them.

Unlike the original Gauss-Seidel formulation (which re-scanned every node and
edge until a whole round ran without change -- retained verbatim as the test
oracle in ``tests/core/naive_reference.py``), the fixpoint here is driven by a
worklist of *newly derived facts*, and the whole loop runs on the graph's
integer kernel: a node is its ``nid``, a fact packs as
``origin_nid * (num_labels + 1) + lid + 1`` and a worklist item as
``fact * num_nodes + nid`` -- set membership, the deque and the S-POINTER
twin lookup (``nid ^ 1``) are all small-int operations with no object
hashing.  Work is proportional to facts derived:

* each fact is enqueued at each node exactly once (set-membership guarded);
* popping a fact propagates it along the node's current null out-ids,
  discharges it against the node's recall index (an O(1)
  :meth:`~repro.core.graph.ConstraintGraph.recall_ids` dict hit), and
  applies the lazy S-POINTER swap if the node is contravariant (odd nid);
* when a discharge creates a *new* shortcut edge
  (:meth:`~repro.core.graph.ConstraintGraph.add_saturation_id`), every fact
  already reaching its origin is propagated across the just-dirtied edge
  immediately; facts arriving at the origin later flow across it through the
  (mutation-aware) null-adjacency index.

Invariant: whenever the worklist is empty, ``R`` is closed under all four
rules -- facts only enter ``R`` through ``_push`` which enqueues them, and
every rule application for a fact happens when that fact is popped (edges
created later are covered by the dirtied-edge replay above).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

from .graph import ConstraintGraph
from .labels import LOAD, STORE


def saturate(graph: ConstraintGraph, max_iterations: int = 10_000_000) -> int:
    """Saturate ``graph`` in place; returns the number of shortcut edges added.

    ``max_iterations`` bounds worklist pops as a defensive guard only; the
    fixpoint always terminates because facts are drawn from the finite set
    ``labels x nodes`` and each is enqueued at each node at most once.
    """
    forget_recs = graph.forget_records()
    if not forget_recs:
        return 0

    # Pack bases.  Labels are fixed for the whole run: saturation only adds
    # unlabeled shortcut edges, so the label pool cannot grow under us.
    num_nodes = 2 * len(graph._dtvs)
    lp_base = len(graph._labels) + 1  # lidp digits; lidp = lid + 1
    load_lid = graph._labels.ids.get(LOAD, -2)
    store_lid = graph._labels.ids.get(STORE, -2)

    #: per-nid sets of packed facts ``origin_nid * lp_base + lid + 1``.
    reaching: List[Optional[Set[int]]] = [None] * num_nodes
    pending = deque()
    pending_append = pending.append

    def _push(nid: int, fact: int) -> None:
        facts = reaching[nid]
        if facts is None:
            facts = set()
            reaching[nid] = facts
        if fact not in facts:
            facts.add(fact)
            pending_append(fact * num_nodes + nid)

    # Seed from forget edges.
    for src, lid, tgt in forget_recs:
        _push(tgt, src * lp_base + lid + 1)

    null_out = graph._null_out
    recall = graph._recall
    add_saturation = graph.add_saturation_id

    added = 0
    iterations = 0
    while pending:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive guard
            raise RuntimeError("saturation did not converge")
        fact, nid = divmod(pending.popleft(), num_nodes)

        # Propagate the new fact along null out-edges.
        for target in null_out[nid]:
            _push(target, fact)

        origin, lidp = divmod(fact, lp_base)
        lid = lidp - 1

        # Discharge at matching recall edges by adding shortcut edges.
        by_label = recall[nid]
        if by_label is not None:
            for target in by_label.get(lid, _EMPTY):
                if add_saturation(origin, target):
                    added += 1
                    # The new edge dirties origin -> target: replay every
                    # fact already reaching the origin across it.
                    existing = reaching[origin]
                    if existing:
                        for known in list(existing):
                            _push(target, known)

        # Lazy S-POINTER: swap pending store/load between the contravariant
        # node (odd nid) and its covariant twin (nid ^ 1).  A swap whose
        # partner label never occurs in the graph is dropped: with no
        # ``.store``/``.load`` recall edge to discharge it, the fact could
        # never contribute an edge.
        if nid & 1:
            if lid == store_lid:
                if load_lid >= 0:
                    _push(nid ^ 1, origin * lp_base + load_lid + 1)
            elif lid == load_lid:
                if store_lid >= 0:
                    _push(nid ^ 1, origin * lp_base + store_lid + 1)

    return added


def saturated(graph: ConstraintGraph) -> ConstraintGraph:
    """Convenience wrapper returning the (same, mutated) saturated graph."""
    saturate(graph)
    return graph


_EMPTY: List[int] = []
