"""The saturation algorithm (Algorithm D.2) as a worklist fixpoint.

Saturation adds shortcut "null" edges to the constraint graph so that every
derivable subtype judgement is witnessed by a *reduced* path: one whose forget
operations all precede its recall operations.  The algorithm maintains, for
each node ``x``, a set ``R(x)`` of *reaching forgets*: pairs ``(l, origin)``
recording that some path from ``origin`` to ``x`` has exactly one pending
forgotten label ``l``.

Rules (cf. Algorithm D.2):

* a forget edge ``a --forget l--> b`` seeds ``(l, a)`` into ``R(b)``;
* null edges propagate: ``R(target) >= R(source)``;
* when ``x --recall l--> y`` exists and ``(l, origin)`` is in ``R(x)``, the
  pending label can be discharged: add the shortcut edge ``origin --> y``;
* the lazy S-POINTER rule: at a *contravariant* node ``(d, -)``, a pending
  ``.store`` may be replaced by a pending ``.load`` on the covariant twin
  ``(d, +)`` and vice versa.  This simulates the infinitely many
  ``d.store <= d.load`` axioms without instantiating them.

Unlike the original Gauss-Seidel formulation (which re-scanned every node and
edge until a whole round ran without change -- retained verbatim as the test
oracle in ``tests/core/naive_reference.py``), the fixpoint here is driven by a
worklist of *newly derived facts*.  Work is proportional to facts derived:

* the worklist holds ``(node, (label, origin))`` pairs, each fact enqueued at
  each node exactly once (set-membership guarded);
* popping a fact propagates it along the node's current null out-edges,
  discharges it against the node's recall edges (an O(1)
  :meth:`~repro.core.graph.ConstraintGraph.recall_targets` index hit), and
  applies the lazy S-POINTER swap if the node is contravariant;
* when a discharge creates a *new* shortcut edge, every fact already reaching
  its origin is propagated across the just-dirtied edge immediately; facts
  arriving at the origin later flow across it through the (mutation-aware)
  null-adjacency index.

Invariant: whenever the worklist is empty, ``R`` is closed under all four
rules -- facts only enter ``R`` through ``_push`` which enqueues them, and
every rule application for a fact happens when that fact is popped (edges
created later are covered by the dirtied-edge replay above).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Tuple

from .graph import ConstraintGraph, Edge, EdgeKind, Node
from .labels import LOAD, STORE, Label, Variance

#: a reaching-forget fact: (pending label, node the pending path started at).
Fact = Tuple[Label, Node]


def saturate(graph: ConstraintGraph, max_iterations: int = 10_000_000) -> int:
    """Saturate ``graph`` in place; returns the number of shortcut edges added.

    ``max_iterations`` bounds worklist pops as a defensive guard only; the
    fixpoint always terminates because facts are drawn from the finite set
    ``labels x nodes`` and each is enqueued at each node at most once.
    """
    reaching: Dict[Node, Set[Fact]] = {}
    pending: Deque[Tuple[Node, Fact]] = deque()

    def _push(node: Node, fact: Fact) -> None:
        facts = reaching.get(node)
        if facts is None:
            facts = set()
            reaching[node] = facts
        if fact not in facts:
            facts.add(fact)
            pending.append((node, fact))

    # Seed from forget edges.
    for edge in graph.forget_edges():
        _push(edge.target, (edge.label, edge.source))

    added = 0
    iterations = 0
    while pending:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive guard
            raise RuntimeError("saturation did not converge")
        node, fact = pending.popleft()
        label, origin = fact

        # Propagate the new fact along null out-edges.
        for edge in graph.null_out_edges(node):
            _push(edge.target, fact)

        # Discharge at matching recall edges by adding shortcut edges.
        for target in graph.recall_targets(node, label):
            if graph.add_edge(Edge(origin, target, EdgeKind.SATURATION)):
                added += 1
                # The new edge dirties origin -> target: replay every fact
                # already reaching the origin across it.
                existing = reaching.get(origin)
                if existing:
                    for known in list(existing):
                        _push(target, known)

        # Lazy S-POINTER: swap pending store/load between the contravariant
        # node and its covariant twin.
        if node.variance is Variance.CONTRAVARIANT:
            swapped = None
            if label == STORE:
                swapped = LOAD
            elif label == LOAD:
                swapped = STORE
            if swapped is not None:
                _push(Node(node.dtv, Variance.COVARIANT), (swapped, origin))

    return added


def saturated(graph: ConstraintGraph) -> ConstraintGraph:
    """Convenience wrapper returning the (same, mutated) saturated graph."""
    saturate(graph)
    return graph
