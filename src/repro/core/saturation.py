"""The saturation algorithm (Algorithm D.2) with the lazy S-POINTER rule.

Saturation adds shortcut "null" edges to the constraint graph so that every
derivable subtype judgement is witnessed by a *reduced* path: one whose forget
operations all precede its recall operations.  The algorithm maintains, for
each node ``x``, a set ``R(x)`` of *reaching forgets*: pairs ``(l, origin)``
recording that some path from ``origin`` to ``x`` has exactly one pending
forgotten label ``l``.

Rules (cf. Algorithm D.2):

* a forget edge ``a --forget l--> b`` seeds ``(l, a)`` into ``R(b)``;
* null edges propagate: ``R(target) >= R(source)``;
* when ``x --recall l--> y`` exists and ``(l, origin)`` is in ``R(x)``, the
  pending label can be discharged: add the shortcut edge ``origin --> y``;
* the lazy S-POINTER rule: at a *contravariant* node ``(d, -)``, a pending
  ``.store`` may be replaced by a pending ``.load`` on the covariant twin
  ``(d, +)`` and vice versa.  This simulates the infinitely many
  ``d.store <= d.load`` axioms without instantiating them.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .graph import ConstraintGraph, Edge, EdgeKind, Node
from .labels import LOAD, STORE, Label, Variance


def saturate(graph: ConstraintGraph, max_iterations: int = 10_000) -> int:
    """Saturate ``graph`` in place; returns the number of shortcut edges added."""
    reaching: Dict[Node, Set[Tuple[Label, Node]]] = {node: set() for node in graph.nodes}

    # Seed from forget edges.
    for edge in list(graph.edges()):
        if edge.kind is EdgeKind.FORGET and edge.label is not None:
            reaching[edge.target].add((edge.label, edge.source))

    added = 0
    changed = True
    iterations = 0
    while changed:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive guard
            raise RuntimeError("saturation did not converge")
        changed = False

        # Propagate reaching-forget sets along null edges.
        for node in graph.nodes:
            for edge in graph.out_edges(node):
                if not edge.is_null:
                    continue
                target_set = reaching.setdefault(edge.target, set())
                source_set = reaching.setdefault(node, set())
                before = len(target_set)
                target_set |= source_set
                if len(target_set) != before:
                    changed = True

        # Lazy S-POINTER: swap pending store/load between the contravariant node
        # and its covariant twin.
        for node in list(graph.nodes):
            if node.variance is not Variance.CONTRAVARIANT:
                continue
            twin = Node(node.dtv, Variance.COVARIANT)
            twin_set = reaching.setdefault(twin, set())
            for label, origin in list(reaching.get(node, ())):
                swapped = None
                if label == STORE:
                    swapped = LOAD
                elif label == LOAD:
                    swapped = STORE
                if swapped is None:
                    continue
                entry = (swapped, origin)
                if entry not in twin_set:
                    twin_set.add(entry)
                    changed = True

        # Discharge pending forgets at recall edges by adding shortcut edges.
        for node in list(graph.nodes):
            for edge in graph.out_edges(node):
                if edge.kind is not EdgeKind.RECALL or edge.label is None:
                    continue
                for label, origin in list(reaching.get(node, ())):
                    if label != edge.label:
                        continue
                    new_edge = Edge(origin, edge.target, EdgeKind.SATURATION)
                    if graph.add_edge(new_edge):
                        reaching.setdefault(edge.target, set())
                        added += 1
                        changed = True
    return added


def saturated(graph: ConstraintGraph) -> ConstraintGraph:
    """Convenience wrapper returning the (same, mutated) saturated graph."""
    saturate(graph)
    return graph
