"""Sketches: regular trees labelled with lattice elements (Definition 3.5).

A sketch is a possibly-infinite tree whose edges are field labels and whose
nodes carry elements of the auxiliary lattice Lambda, with only finitely many
distinct subtrees.  Collapsing equal subtrees yields a deterministic finite
automaton whose states are labelled by lattice elements; that is the
representation used here.

Each node stores both a *lower* bound (join of type constants known to flow
into the node) and an *upper* bound (meet of type constants the node must flow
into); the displayed decoration ``nu(w)`` picks one of the two according to the
variance of the path ``w`` (Appendix D.4), matching the conventions of
Figures 2 and 5.

The set of sketches forms a lattice (Figure 18):

* ``meet`` (``X ⊓ Y``) accepts the *union* of the two languages -- a more
  capable, more constrained type;
* ``join`` (``X ⊔ Y``) accepts the *intersection*;
* node labels are combined with the lattice meet on covariant paths and the
  lattice join on contravariant paths (and dually for the join of sketches).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .labels import Label, Variance, parse_label, path_variance
from .lattice import BOTTOM, TOP, TypeLattice


@dataclass
class SketchNode:
    """A state of the sketch automaton."""

    ident: int
    lower: str = BOTTOM
    upper: str = TOP

    def copy(self) -> "SketchNode":
        return SketchNode(self.ident, self.lower, self.upper)


class Sketch:
    """A deterministic finite automaton over field labels with decorated states."""

    def __init__(self, lattice: TypeLattice) -> None:
        self.lattice = lattice
        self._counter = itertools.count()
        self.nodes: Dict[int, SketchNode] = {}
        self.edges: Dict[int, Dict[Label, int]] = {}
        self.root: int = self.add_node()

    # -- construction ----------------------------------------------------------

    def add_node(self, lower: str = BOTTOM, upper: str = TOP) -> int:
        ident = next(self._counter)
        self.nodes[ident] = SketchNode(ident, lower, upper)
        self.edges[ident] = {}
        return ident

    def add_edge(self, src: int, label: Label, dst: int) -> None:
        self.edges[src][label] = dst

    def add_path(self, labels: Sequence[Label]) -> int:
        """Ensure a path with the given labels exists from the root; return its end node."""
        current = self.root
        for label in labels:
            nxt = self.edges[current].get(label)
            if nxt is None:
                nxt = self.add_node()
                self.add_edge(current, label, nxt)
            current = nxt
        return current

    # -- queries ---------------------------------------------------------------

    def follow(self, labels: Sequence[Label], start: Optional[int] = None) -> Optional[int]:
        """Node reached by following ``labels`` from ``start`` (default: root), or None."""
        current = self.root if start is None else start
        for label in labels:
            current = self.edges.get(current, {}).get(label)
            if current is None:
                return None
        return current

    def accepts(self, labels: Sequence[Label]) -> bool:
        """``w in L(S)``: the capability path exists."""
        return self.follow(labels) is not None

    def node(self, ident: int) -> SketchNode:
        return self.nodes[ident]

    def successors(self, ident: int) -> Dict[Label, int]:
        return dict(self.edges.get(ident, {}))

    def reachable(self, start: Optional[int] = None) -> Set[int]:
        start = self.root if start is None else start
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for target in self.edges.get(current, {}).values():
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def paths(self, max_depth: int = 6) -> Iterator[Tuple[Tuple[Label, ...], int]]:
        """Enumerate (label word, node) pairs up to ``max_depth`` labels (root included)."""
        stack: List[Tuple[Tuple[Label, ...], int]] = [((), self.root)]
        while stack:
            word, node = stack.pop()
            yield word, node
            if len(word) >= max_depth:
                continue
            for label, target in sorted(
                self.edges.get(node, {}).items(), key=lambda kv: str(kv[0])
            ):
                stack.append((word + (label,), target))

    def display_label(self, word: Sequence[Label], node: Optional[int] = None) -> str:
        """The decoration ``nu(w)`` shown to the user for the node at path ``w``.

        Covariant paths display the join of lower bounds; contravariant paths
        display the meet of upper bounds (Appendix D.4 / Figure 5).
        """
        if node is None:
            node = self.follow(word)
            if node is None:
                raise KeyError(f"no node at path {'.'.join(map(str, word))}")
        data = self.nodes[node]
        if path_variance(word) is Variance.COVARIANT:
            return data.lower
        return data.upper

    def is_recursive(self) -> bool:
        """True when the sketch denotes an infinite tree (the DFA has a cycle)."""
        state: Dict[int, int] = {}

        def visit(node: int) -> bool:
            state[node] = 1
            for target in self.edges.get(node, {}).values():
                if state.get(target, 0) == 1:
                    return True
                if state.get(target, 0) == 0 and visit(target):
                    return True
            state[node] = 2
            return False

        return visit(self.root)

    # -- bounds ------------------------------------------------------------------

    def apply_lower(self, node: int, element: str) -> None:
        data = self.nodes[node]
        data.lower = self.lattice.join(data.lower, element)

    def apply_upper(self, node: int, element: str) -> None:
        data = self.nodes[node]
        data.upper = self.lattice.meet(data.upper, element)

    # -- lattice of sketches (Figure 18) ------------------------------------------

    def _combine(self, other: "Sketch", meet: bool) -> "Sketch":
        """Product construction implementing Figure 18.

        For the sketch *meet* the language is the union of languages (a state
        survives if either operand has it); for the sketch *join* it is the
        intersection (both must have it).
        """
        result = Sketch(self.lattice)
        # Map (self node or None, other node or None) -> result node.
        mapping: Dict[Tuple[Optional[int], Optional[int]], int] = {}

        def get(pair: Tuple[Optional[int], Optional[int]]) -> int:
            if pair not in mapping:
                if pair == (self.root, other.root):
                    ident = result.root
                else:
                    ident = result.add_node()
                mapping[pair] = ident
            return mapping[pair]

        worklist: List[Tuple[Optional[int], Optional[int], Tuple[Label, ...]]] = [
            (self.root, other.root, ())
        ]
        visited: Set[Tuple[Optional[int], Optional[int]]] = set()
        while worklist:
            a, b, word = worklist.pop()
            if (a, b) in visited:
                continue
            visited.add((a, b))
            ident = get((a, b))
            node = result.nodes[ident]
            covariant = path_variance(word) is Variance.COVARIANT

            a_node = self.nodes[a] if a is not None else None
            b_node = other.nodes[b] if b is not None else None
            node.lower, node.upper = _combine_bounds(
                self.lattice, a_node, b_node, covariant=covariant, meet=meet
            )

            a_edges = self.edges.get(a, {}) if a is not None else {}
            b_edges = other.edges.get(b, {}) if b is not None else {}
            if meet:
                labels = set(a_edges) | set(b_edges)
            else:
                labels = set(a_edges) & set(b_edges)
            for label in labels:
                na = a_edges.get(label)
                nb = b_edges.get(label)
                child = get((na, nb))
                result.add_edge(ident, label, child)
                worklist.append((na, nb, word + (label,)))
        return result

    def meet(self, other: "Sketch") -> "Sketch":
        """``X ⊓ Y``: union of capabilities -- the more constrained sketch."""
        return self._combine(other, meet=True)

    def join(self, other: "Sketch") -> "Sketch":
        """``X ⊔ Y``: intersection of capabilities -- the common generalization."""
        return self._combine(other, meet=False)

    def leq(self, other: "Sketch", max_depth: int = 8) -> bool:
        """The partial order ``X ⊑ Y`` compatible with meet/join.

        ``X ⊑ Y`` requires ``L(Y) ⊆ L(X)`` and, on common paths, the node
        labels to be ordered according to the path variance.
        """
        # BFS over the product of reachable states of other within self.
        worklist: List[Tuple[int, int, Tuple[Label, ...]]] = [(self.root, other.root, ())]
        visited: Set[Tuple[int, int]] = set()
        while worklist:
            a, b, word = worklist.pop()
            if (a, b) in visited:
                continue
            visited.add((a, b))
            a_node, b_node = self.nodes[a], other.nodes[b]
            if path_variance(word) is Variance.COVARIANT:
                if not self.lattice.leq(a_node.lower, b_node.lower) and b_node.lower != BOTTOM:
                    return False
            else:
                if not self.lattice.leq(b_node.upper, a_node.upper) and a_node.upper != TOP:
                    return False
            for label, b_target in other.edges.get(b, {}).items():
                a_target = self.edges.get(a, {}).get(label)
                if a_target is None:
                    return False
                if len(word) < max_depth:
                    worklist.append((a_target, b_target, word + (label,)))
        return True

    # -- misc ----------------------------------------------------------------------

    def copy(self) -> "Sketch":
        out = Sketch(self.lattice)
        mapping = {self.root: out.root}
        for ident, node in self.nodes.items():
            if ident not in mapping:
                mapping[ident] = out.add_node()
            target = out.nodes[mapping[ident]]
            target.lower, target.upper = node.lower, node.upper
        for src, edges in self.edges.items():
            for label, dst in edges.items():
                if dst not in mapping:
                    mapping[dst] = out.add_node()
                    out.nodes[mapping[dst]].lower = self.nodes[dst].lower
                    out.nodes[mapping[dst]].upper = self.nodes[dst].upper
                out.add_edge(mapping[src], label, mapping[dst])
        return out

    def to_json(self) -> Dict[str, object]:
        """A JSON-able representation of the reachable automaton.

        Node identifiers are renumbered along a deterministic traversal so two
        semantically equal sketches built along different histories serialize
        identically; :meth:`from_json` is the inverse up to node numbering.
        """
        order: Dict[int, int] = {}
        worklist = [self.root]
        while worklist:
            current = worklist.pop(0)
            if current in order:
                continue
            order[current] = len(order)
            for _, target in sorted(
                self.edges.get(current, {}).items(), key=lambda kv: str(kv[0])
            ):
                if target not in order:
                    worklist.append(target)
        nodes = [
            [order[ident], self.nodes[ident].lower, self.nodes[ident].upper]
            for ident in sorted(order, key=order.get)
        ]
        edges = sorted(
            [order[src], str(label), order[dst]]
            for src in order
            for label, dst in self.edges.get(src, {}).items()
        )
        return {"nodes": nodes, "edges": edges}

    @classmethod
    def from_json(cls, data: Dict[str, object], lattice: TypeLattice) -> "Sketch":
        """Rebuild a sketch serialized by :meth:`to_json`."""
        sketch = cls(lattice)
        mapping: Dict[int, int] = {}
        for ident, lower, upper in data.get("nodes", ()):
            if not mapping:
                mapping[ident] = sketch.root
                root = sketch.nodes[sketch.root]
                root.lower, root.upper = lower, upper
            else:
                mapping[ident] = sketch.add_node(lower, upper)
        for src, label_text, dst in data.get("edges", ()):
            sketch.add_edge(mapping[src], parse_label(label_text), mapping[dst])
        return sketch

    def to_dot(self, name: str = "sketch") -> str:
        """GraphViz rendering, handy for debugging and documentation."""
        lines = [f"digraph {name} {{"]
        for ident, node in self.nodes.items():
            if ident not in self.reachable():
                continue
            label = f"{node.lower}/{node.upper}"
            shape = "doublecircle" if ident == self.root else "circle"
            lines.append(f'  n{ident} [label="{label}", shape={shape}];')
        for src, edges in self.edges.items():
            if src not in self.reachable():
                continue
            for label, dst in edges.items():
                lines.append(f'  n{src} -> n{dst} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        parts = []
        for word, node in sorted(self.paths(max_depth=4), key=lambda p: (len(p[0]), str(p[0]))):
            decorated = self.display_label(word, node)
            path = ".".join(str(lab) for lab in word) or "<root>"
            parts.append(f"{path}: {decorated}")
        return "\n".join(parts)


def _combine_bounds(
    lattice: TypeLattice,
    a: Optional[SketchNode],
    b: Optional[SketchNode],
    covariant: bool,
    meet: bool,
) -> Tuple[str, str]:
    """Node-label combination of Figure 18 for meet/join of sketches."""
    if a is None and b is None:
        return BOTTOM, TOP
    if a is None:
        return b.lower, b.upper
    if b is None:
        return a.lower, a.upper
    if meet:
        # X ⊓ Y: covariant labels meet, contravariant labels join.
        if covariant:
            return lattice.meet(a.lower, b.lower), lattice.meet(a.upper, b.upper)
        return lattice.join(a.lower, b.lower), lattice.join(a.upper, b.upper)
    # X ⊔ Y: covariant labels join, contravariant labels meet.
    if covariant:
        return lattice.join(a.lower, b.lower), lattice.join(a.upper, b.upper)
    return lattice.meet(a.lower, b.lower), lattice.meet(a.upper, b.upper)


def top_sketch(lattice: TypeLattice) -> Sketch:
    """The top element of the sketch lattice: the single-node sketch labelled TOP."""
    sketch = Sketch(lattice)
    sketch.nodes[sketch.root].lower = TOP
    return sketch
