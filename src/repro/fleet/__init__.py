"""The sharded type-inference fleet: shared store, router, launcher.

One :class:`~repro.server.app.TypeQueryServer` process tops out at one
machine's cores and one in-process summary pool.  This package is the
multi-node story the ROADMAP's "millions of users" north star needs:

``repro.fleet.storeserver``
    :class:`SummaryStoreServer` -- a socket-served shared summary store:
    every shard points its :class:`~repro.service.store.SocketStoreBackend`
    at one daemon, so an SCC any shard has ever solved is a warm hit for all
    of them (the statically-linked-cluster reuse of Figure 10, across
    processes).
``repro.fleet.ring``
    :class:`HashRing` -- stdlib-only consistent hashing; program content
    hashes map to shards, and a shard's death remaps only its own arc.
``repro.fleet.router``
    :class:`FleetRouter` -- an asyncio front door speaking the exact wire
    protocol of :mod:`repro.server.protocol`.  It forwards every verb to the
    ring-assigned shard, remembers which shard analyzed which program (and
    the source, so a registry miss or a dead shard triggers a near-free warm
    re-analysis on a healthy shard -- lazy registry replication), keeps
    session affinity, and requeues in-flight requests on shard failure
    (typed ``fleet_shard_failed_total`` counter; the PR-4 worker-crash
    degradation pattern one level up).
``repro.fleet.launcher``
    :class:`FleetLauncher` -- ``python -m repro.server --fleet N``: spawns
    the store daemon, N shard server subprocesses and the router, health-
    checks the shards, and drains gracefully on shutdown.
``repro.fleet.smoke``
    ``python -m repro.fleet.smoke`` -- the CI acceptance harness: a fleet
    must produce byte-identical ``result_fingerprint``s to a single server
    over a generated corpus, surviving one shard killed mid-run.

Operator guidance lives in ``docs/operations.md`` (fleet section); the
``health`` verb and shard-routing fields are specified in
``docs/protocol.md``.
"""

from .launcher import FleetConfig, FleetLauncher
from .ring import HashRing
from .router import FleetRouter, RouterConfig
from .storeserver import SummaryStoreServer

__all__ = [
    "FleetConfig",
    "FleetLauncher",
    "FleetRouter",
    "HashRing",
    "RouterConfig",
    "SummaryStoreServer",
]
