"""The fleet front door: one address, N shards, the same wire protocol.

Clients connect to the router exactly as they would to a single
:class:`~repro.server.app.TypeQueryServer` -- same newline-JSON framing, same
verbs, same typed errors -- and the router forwards each request to a shard
chosen by consistent hashing over the program's content (:mod:`.ring`).
Because every shard mounts the same :class:`~repro.fleet.storeserver`
summary pool, placement only decides *which registry* stays warm; the
expensive per-SCC work is shared fleet-wide regardless.

Failure handling is the PR-4 worker-crash pattern lifted one level: when a
shard's connection dies mid-request the router marks it unhealthy, removes
it from the ring, bumps the typed ``fleet_shard_failed_total`` counter and
requeues the request on the next shard in the key's preference order.  The
client sees a slightly slower answer, not an error.  Three mechanisms make
that transparent:

* **lazy registry replication** -- the router remembers, per analyzed
  program, which shard owns it *and the submitted source*.  A ``query``
  hitting a dead shard (or a shard whose registry evicted the program) is
  satisfied by re-submitting that source to a healthy shard first: a
  near-free warm analysis, since every SCC summary is a socket-store hit.
* **session re-homing** -- ``session.edit`` carries the full source, so a
  session whose shard died is transparently re-opened on a healthy shard;
  the client keeps its original session id.
* **result pass-through** -- forwarded ``result`` payloads are returned
  byte-for-byte untouched (routing metadata rides the response envelope as
  a top-level ``"shard"`` key, which clients ignore), so a fleet answer is
  byte-identical to a single server's.

The router never respawns shards; that is an operator (or orchestrator)
decision.  A shard that comes back and answers health probes is re-admitted
to the ring automatically.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import __version__
from ..obs.metrics import install_default
from ..server import protocol
from ..server.client import AsyncTypeQueryClient, ServerConnectionError, TypeQueryError
from ..server.protocol import ErrorCode, ProtocolError
from .ring import HashRing

logger = logging.getLogger("repro.fleet.router")

#: identifies the router in ``ping`` responses (shards answer with the
#: ordinary server name; the ``role`` field tells them apart either way).
ROUTER_NAME = "repro-fleet-router"


@dataclass
class RouterConfig:
    """Everything tunable about one router instance."""

    #: shard addresses, ``"host:port"`` each; index in this list is the
    #: shard id used in the ring, the ``shard`` envelope field and metrics.
    shards: Sequence[str] = field(default_factory=list)
    host: str = "127.0.0.1"
    port: int = 8792
    #: address of the shared summary-store daemon (reported, not dialed --
    #: the shards talk to it, the router only names it in ``health``).
    store_addr: Optional[str] = None
    #: connections kept per shard; forwarded requests beyond this queue.
    pool_size: int = 8
    #: analyzed programs whose (shard, source) the router remembers for
    #: failover re-analysis; an evicted entry degrades to a broadcast query.
    owner_capacity: int = 4096
    #: seconds between background shard health probes.
    health_interval: float = 2.0
    #: per-request line cap, mirrored from the single-server default.
    max_request_bytes: int = protocol.MAX_LINE_BYTES
    #: honour the ``shutdown`` verb (forwarded to every shard, then self).
    allow_shutdown: bool = False


class _Shard:
    """One downstream server: its address, health flag and connection pool."""

    def __init__(self, shard_id: int, address: str, pool_size: int, limit: int) -> None:
        self.shard_id = shard_id
        self.address = address
        host, _, port = address.rpartition(":")
        self.host, self.port = host, int(port)
        self.healthy = True
        self.failures = 0
        self.pool_size = pool_size
        self.limit = limit
        self._idle: List[AsyncTypeQueryClient] = []
        self._leased = 0
        self._available = asyncio.Condition()

    async def acquire(self) -> AsyncTypeQueryClient:
        async with self._available:
            while not self._idle and self._leased >= self.pool_size:
                await self._available.wait()
            if self._idle:
                self._leased += 1
                return self._idle.pop()
            self._leased += 1
        try:
            return await AsyncTypeQueryClient.connect(
                self.host, self.port, limit=self.limit
            )
        except BaseException:
            async with self._available:
                self._leased -= 1
                self._available.notify()
            raise

    async def release(self, client: AsyncTypeQueryClient, broken: bool) -> None:
        if broken:
            await client.aclose()
        async with self._available:
            self._leased -= 1
            if not broken and len(self._idle) < self.pool_size:
                self._idle.append(client)
                client = None  # type: ignore[assignment]
            self._available.notify()
        if client is not None and not broken:
            await client.aclose()

    async def call(self, op: str, params: Optional[Dict[str, object]] = None):
        """One forwarded request on a pooled connection.

        Raises :class:`ServerConnectionError`/``OSError`` when the shard is
        unreachable (the caller's cue to fail over) and plain
        :class:`TypeQueryError` for deterministic server answers.
        """
        client = await self.acquire()
        broken = False
        try:
            return await client.request(op, params)
        except (ServerConnectionError, OSError):
            broken = True
            raise
        finally:
            await self.release(client, broken)

    async def drain(self) -> None:
        async with self._available:
            idle, self._idle = self._idle, []
        for client in idle:
            await client.aclose()

    def snapshot(self) -> Dict[str, object]:
        return {
            "address": self.address,
            "healthy": self.healthy,
            "failures": self.failures,
        }


def _route_key(kind: str, source: str) -> str:
    """The ring key for a submitted program: a digest of what the client sent.

    Deliberately *not* the registry's program id (that mixes in the
    environment fingerprint the router does not compute); any stable function
    of the submission works, because shards agree on ids themselves.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class FleetRouter:
    """The asyncio router daemon.  Construct, ``await start()``, then serve."""

    def __init__(self, config: RouterConfig) -> None:
        if not config.shards:
            raise ValueError("a fleet router needs at least one shard address")
        self.config = config
        self.shards: Dict[int, _Shard] = {
            index: _Shard(index, address, config.pool_size, config.max_request_bytes)
            for index, address in enumerate(config.shards)
        }
        self.ring = HashRing(list(self.shards))
        #: program_id -> {"shard": id, "source": str, "kind": str}; the
        #: replication ledger that makes failover re-analysis possible.
        self._owners: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        #: client-visible session id -> {"shard", "remote_id", "source",
        #: "kind", "edits"}; re-homed transparently on shard failure.
        self._sessions: Dict[str, Dict[str, object]] = {}
        self.metrics = install_default()
        self._server: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._started = 0.0
        self.requests_served = 0
        self.errors_returned = 0
        self.reanalyses = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_request_bytes,
        )
        self._started = time.monotonic()
        self._monitor = asyncio.create_task(self._health_monitor())
        sockname = self._server.sockets[0].getsockname()
        host, port = sockname[0], sockname[1]
        logger.info(
            "fleet router listening on %s:%d over %d shards", host, port, len(self.shards)
        )
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None and self._stopping is not None
        try:
            await self._stopping.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, finish live handlers, close pools."""
        if self._stopping is not None:
            self._stopping.set()
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
            self._monitor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = [task for task in self._conn_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for shard in self.shards.values():
            await shard.drain()

    # -- shard health ----------------------------------------------------------

    def _mark_failed(self, shard: _Shard, exc: BaseException) -> None:
        shard.failures += 1
        if shard.healthy:
            shard.healthy = False
            self.ring.remove(shard.shard_id)
            self.metrics.counter(
                "fleet_shard_failed_total", shard=str(shard.shard_id)
            ).inc()
            logger.warning(
                "shard %d (%s) marked unhealthy: %s", shard.shard_id, shard.address, exc
            )

    def _mark_healthy(self, shard: _Shard) -> None:
        if not shard.healthy:
            shard.healthy = True
            self.ring.add(shard.shard_id)
            logger.info("shard %d (%s) re-admitted", shard.shard_id, shard.address)

    async def _health_monitor(self) -> None:
        """Probe every shard each interval; flip health flags and the ring."""
        while True:
            await asyncio.sleep(self.config.health_interval)
            for shard in self.shards.values():
                try:
                    await shard.call("health")
                except (TypeQueryError, OSError) as exc:
                    if isinstance(exc, (ServerConnectionError, OSError)):
                        self._mark_failed(shard, exc)
                else:
                    self._mark_healthy(shard)

    def _healthy_shards(self) -> List[_Shard]:
        return [shard for shard in self.shards.values() if shard.healthy]

    def _preference(self, key: str) -> Iterator[_Shard]:
        """Healthy shards in the key's failover order (ring holds only healthy)."""
        for shard_id in self.ring.nodes_for(key):
            shard = self.shards[shard_id]
            if shard.healthy:
                yield shard

    # -- forwarding core -------------------------------------------------------

    async def _forward(
        self, key: str, op: str, params: Dict[str, object]
    ) -> Tuple[int, object]:
        """Send ``op`` to the key's shard, failing over down the ring.

        Connection deaths requeue on the next shard; a typed ``overloaded``
        also tries the next shard (the shared store makes any shard an equal
        substitute), while every other typed error is the shard's final
        answer and propagates.
        """
        last_error: Optional[BaseException] = None
        for shard in self._preference(key):
            try:
                result = await shard.call(op, params)
                return shard.shard_id, result
            except (ServerConnectionError, OSError) as exc:
                self._mark_failed(shard, exc)
                last_error = exc
            except TypeQueryError as exc:
                if exc.code != ErrorCode.OVERLOADED:
                    raise
                last_error = exc
        if isinstance(last_error, TypeQueryError):
            raise ProtocolError(last_error.code, last_error.message)
        raise ProtocolError(
            ErrorCode.INTERNAL_ERROR,
            f"no healthy shard could serve {op!r}"
            + (f" (last error: {last_error})" if last_error else ""),
        )

    def _remember_owner(self, program_id: str, shard_id: int, source: str, kind: str) -> None:
        self._owners[program_id] = {"shard": shard_id, "source": source, "kind": kind}
        self._owners.move_to_end(program_id)
        while len(self._owners) > self.config.owner_capacity:
            self._owners.popitem(last=False)

    async def _reanalyze(self, owner: Dict[str, object], program_id: str) -> int:
        """Re-home a program on a healthy shard via its remembered source.

        Near-free by construction: every SCC summary the original analysis
        produced is a warm hit in the shared store, so the new shard mostly
        reassembles sketches.
        """
        source, kind = str(owner["source"]), str(owner["kind"])
        shard_id, _ = await self._forward(
            _route_key(kind, source), "analyze", {"source": source, "kind": kind}
        )
        owner["shard"] = shard_id
        self.reanalyses += 1
        self.metrics.counter("fleet_reanalyses_total").inc()
        logger.info("re-analyzed %s on shard %d after failover", program_id, shard_id)
        return shard_id

    # -- connection handling (same framing discipline as the single server) ----

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.errors_returned += 1
                    writer.write(
                        protocol.encode(
                            protocol.make_error(
                                None,
                                ErrorCode.TOO_LARGE,
                                f"request line exceeds {self.config.max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(self, line: bytes) -> Dict[str, object]:
        request_id: Optional[int] = None
        op = "unknown"
        try:
            message = protocol.decode_line(line)
            candidate = message.get("id")
            if isinstance(candidate, (int, str)):
                request_id = candidate
            op, params, request_id = protocol.validate_request(message)
            shard_id, result = await self._dispatch(op, params)
            self.requests_served += 1
            self.metrics.counter("fleet_requests_total", verb=op).inc()
            response = protocol.make_response(request_id, result)
            # Routing metadata rides the *envelope*, never the result: the
            # payload must stay byte-identical to a single server's.
            response["shard"] = shard_id if shard_id is not None else "router"
            return response
        except ProtocolError as exc:
            self.errors_returned += 1
            self.metrics.counter("fleet_errors_total", verb=op, code=exc.code).inc()
            return protocol.make_error(request_id, exc.code, exc.message)
        except TypeQueryError as exc:
            # A shard's typed error, relayed verbatim.
            self.errors_returned += 1
            self.metrics.counter("fleet_errors_total", verb=op, code=exc.code).inc()
            return protocol.make_error(request_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - the router must not die
            logger.exception("internal error routing request")
            self.errors_returned += 1
            self.metrics.counter(
                "fleet_errors_total", verb=op, code=ErrorCode.INTERNAL_ERROR
            ).inc()
            return protocol.make_error(
                request_id, ErrorCode.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
            )

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(
        self, op: str, params: Dict[str, object]
    ) -> Tuple[Optional[int], object]:
        handler = {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "analyze": self._op_analyze,
            "query": self._op_query,
            "corpus": self._op_corpus,
            "session.open": self._op_session_open,
            "session.edit": self._op_session_edit,
            "session.close": self._op_session_close,
            "shutdown": self._op_shutdown,
        }[op]
        return await handler(params)

    def _pinned_shard(self, params: Dict[str, object]) -> Optional[_Shard]:
        """Honour a ``shard`` param on stats/metrics/health: pin one shard."""
        pin = params.get("shard")
        if pin is None:
            return None
        if not isinstance(pin, int) or pin not in self.shards:
            raise ProtocolError(
                ErrorCode.INVALID_PARAMS,
                f"unknown shard {pin!r} (fleet has shards 0..{len(self.shards) - 1})",
            )
        return self.shards[pin]

    async def _op_ping(self, params: Dict[str, object]) -> Tuple[None, object]:
        return None, {
            "server": ROUTER_NAME,
            "protocol": protocol.PROTOCOL_VERSION,
            "version": __version__,
            "pid": os.getpid(),
            "role": "router",
            "shards": len(self.shards),
        }

    async def _op_health(self, params: Dict[str, object]) -> Tuple[object, object]:
        pinned = self._pinned_shard(params)
        if pinned is not None:
            return pinned.shard_id, await pinned.call("health")
        rows: Dict[str, object] = {}
        healthy = 0
        for shard_id, shard in sorted(self.shards.items()):
            try:
                row = await shard.call("health")
                healthy += 1
            except (TypeQueryError, OSError) as exc:
                if isinstance(exc, (ServerConnectionError, OSError)):
                    self._mark_failed(shard, exc)
                row = {"healthy": False, "error": str(exc)}
            rows[str(shard_id)] = {**shard.snapshot(), **(row if isinstance(row, dict) else {})}
        return None, {
            "healthy": healthy > 0,
            "role": "router",
            "shards_total": len(self.shards),
            "shards_healthy": healthy,
            "store_addr": self.config.store_addr,
            "shards": rows,
        }

    async def _op_stats(self, params: Dict[str, object]) -> Tuple[object, object]:
        pinned = self._pinned_shard(params)
        if pinned is not None:
            forwarded = {k: v for k, v in params.items() if k != "shard"}
            return pinned.shard_id, await pinned.call("stats", forwarded)
        if params.get("program_id") is not None:
            # Per-program stats follow the same ownership routing as query.
            return await self._routed_program_op("stats", params)

        async def shard_row(shard: "_Shard") -> Dict[str, object]:
            """The shard's snapshot, enriched with its live serving-path
            counters (gate depth, coalesced/shed totals) when it answers --
            dead or unreachable shards keep the bare snapshot row."""
            row = shard.snapshot()
            if not shard.healthy:
                return row
            try:
                stats = await shard.call("stats")
            except (TypeQueryError, OSError):
                return row
            row["requests_served"] = stats.get("requests_served")
            row["gate"] = stats.get("gate")
            row["coalesced_total"] = stats.get("coalesced_total", 0)
            row["shed_total"] = stats.get("shed_total", 0)
            return row

        ordered = sorted(self.shards.items())
        rows = await asyncio.gather(*(shard_row(shard) for _, shard in ordered))
        shard_rows = {str(shard_id): row for (shard_id, _), row in zip(ordered, rows)}
        return None, {
            "role": "router",
            "uptime_seconds": time.monotonic() - self._started,
            "requests_served": self.requests_served,
            "errors_returned": self.errors_returned,
            "reanalyses": self.reanalyses,
            "owners_tracked": len(self._owners),
            "sessions_open": len(self._sessions),
            "store_addr": self.config.store_addr,
            # Fleet-wide serving-path totals, summed over the shards that
            # answered (a dead shard's counters are unknowable, not zero).
            "coalesced_total": sum(row.get("coalesced_total", 0) for row in rows),
            "shed_total": sum(row.get("shed_total", 0) for row in rows),
            "shards": shard_rows,
        }

    async def _op_metrics(self, params: Dict[str, object]) -> Tuple[object, object]:
        pinned = self._pinned_shard(params)
        if pinned is not None:
            forwarded = {k: v for k, v in params.items() if k != "shard"}
            return pinned.shard_id, await pinned.call("metrics", forwarded)
        fmt = params.get("format", "json")
        if not isinstance(fmt, str):
            raise ProtocolError(ErrorCode.INVALID_PARAMS, "format must be a string")
        return None, protocol.metrics_payload(self.metrics, fmt)

    async def _op_analyze(self, params: Dict[str, object]) -> Tuple[int, object]:
        source = protocol.require_str(params, "source")
        kind = protocol.source_kind(params)
        shard_id, result = await self._forward(_route_key(kind, source), "analyze", params)
        if isinstance(result, dict) and isinstance(result.get("program_id"), str):
            self._remember_owner(result["program_id"], shard_id, source, kind)
        return shard_id, result

    async def _routed_program_op(
        self, op: str, params: Dict[str, object]
    ) -> Tuple[int, object]:
        """query/per-program-stats routing: owner shard, else re-home, else
        broadcast (the owner record was evicted or predates this router)."""
        program_id = protocol.require_str(params, "program_id")
        owner = self._owners.get(program_id)
        if owner is not None:
            self._owners.move_to_end(program_id)
            shard = self.shards[int(owner["shard"])]
            if shard.healthy:
                try:
                    return shard.shard_id, await shard.call(op, params)
                except (ServerConnectionError, OSError) as exc:
                    self._mark_failed(shard, exc)
                except TypeQueryError as exc:
                    if exc.code != ErrorCode.UNKNOWN_PROGRAM:
                        raise
                    # The shard's registry evicted it; fall through to re-home.
            shard_id = await self._reanalyze(owner, program_id)
            return shard_id, await self.shards[shard_id].call(op, params)
        # Unknown owner: ask every healthy shard (cheap registry lookups).
        for shard in self._healthy_shards():
            try:
                result = await shard.call(op, params)
                return shard.shard_id, result
            except (ServerConnectionError, OSError) as exc:
                self._mark_failed(shard, exc)
            except TypeQueryError as exc:
                if exc.code != ErrorCode.UNKNOWN_PROGRAM:
                    raise
        raise ProtocolError(
            ErrorCode.UNKNOWN_PROGRAM,
            f"no shard has analyzed program {program_id!r} (analyze it first)",
        )

    async def _op_query(self, params: Dict[str, object]) -> Tuple[int, object]:
        return await self._routed_program_op("query", params)

    async def _op_corpus(self, params: Dict[str, object]) -> Tuple[int, object]:
        programs = params.get("programs")
        if not isinstance(programs, dict) or not programs:
            raise ProtocolError(
                ErrorCode.INVALID_PARAMS,
                "corpus needs a non-empty 'programs' object: name -> "
                "{'source': ..., 'kind': 'asm'|'c'}",
            )
        # One shard takes the whole batch (cluster members reuse each other's
        # summaries best in one store session); the key hashes the batch.
        digest = hashlib.sha256()
        for name in sorted(programs):
            digest.update(name.encode("utf-8", "replace"))
            digest.update(b"\x00")
        shard_id, result = await self._forward(digest.hexdigest(), "corpus", params)
        if isinstance(result, dict) and isinstance(result.get("programs"), dict):
            for name, row in result["programs"].items():
                entry = programs.get(name)
                if isinstance(entry, str):
                    entry = {"source": entry}
                if (
                    isinstance(row, dict)
                    and isinstance(row.get("program_id"), str)
                    and isinstance(entry, dict)
                    and isinstance(entry.get("source"), str)
                ):
                    self._remember_owner(
                        row["program_id"],
                        shard_id,
                        entry["source"],
                        str(entry.get("kind", "asm")),
                    )
        return shard_id, result

    # -- sessions --------------------------------------------------------------

    async def _op_session_open(self, params: Dict[str, object]) -> Tuple[int, object]:
        source = protocol.require_str(params, "source")
        kind = protocol.source_kind(params)
        shard_id, result = await self._forward(
            _route_key(kind, source), "session.open", params
        )
        if isinstance(result, dict) and isinstance(result.get("session_id"), str):
            self._sessions[result["session_id"]] = {
                "shard": shard_id,
                "remote_id": result["session_id"],
                "source": source,
                "kind": kind,
                "edits": 0,
            }
        return shard_id, result

    async def _op_session_edit(self, params: Dict[str, object]) -> Tuple[int, object]:
        session_id = protocol.require_str(params, "session_id")
        source = protocol.require_str(params, "source")
        kind = protocol.source_kind(params)
        state = self._sessions.get(session_id)
        if state is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        shard = self.shards[int(state["shard"])]
        if shard.healthy:
            try:
                forwarded = dict(params)
                forwarded["session_id"] = state["remote_id"]
                result = await shard.call("session.edit", forwarded)
                if isinstance(result, dict):
                    result["session_id"] = session_id
                    state["edits"] = result.get("edits", state["edits"])
                state["source"], state["kind"] = source, kind
                return shard.shard_id, result
            except (ServerConnectionError, OSError) as exc:
                self._mark_failed(shard, exc)
            except TypeQueryError as exc:
                if exc.code != ErrorCode.UNKNOWN_SESSION:
                    raise
                # The shard restarted (or reclaimed the slot); re-home below.
        # Re-home: open a fresh session on a healthy shard with the edited
        # source.  The client keeps its original session id; the incremental
        # diff against the pre-edit state is lost for this one edit (the new
        # shard analyzes from the shared warm store instead).
        new_shard_id, result = await self._forward(
            _route_key(kind, source), "session.open", params
        )
        if isinstance(result, dict) and isinstance(result.get("session_id"), str):
            edits = int(state.get("edits", 0)) + 1
            self._sessions[session_id] = {
                "shard": new_shard_id,
                "remote_id": result["session_id"],
                "source": source,
                "kind": kind,
                "edits": edits,
            }
            result["session_id"] = session_id
            result["edits"] = edits
        self.metrics.counter("fleet_sessions_rehomed_total").inc()
        return new_shard_id, result

    async def _op_session_close(self, params: Dict[str, object]) -> Tuple[object, object]:
        session_id = protocol.require_str(params, "session_id")
        state = self._sessions.pop(session_id, None)
        if state is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        shard = self.shards[int(state["shard"])]
        if shard.healthy:
            try:
                forwarded = dict(params)
                forwarded["session_id"] = state["remote_id"]
                result = await shard.call("session.close", forwarded)
                if isinstance(result, dict):
                    result["session_id"] = session_id
                return shard.shard_id, result
            except (ServerConnectionError, OSError) as exc:
                self._mark_failed(shard, exc)
            except TypeQueryError as exc:
                if exc.code != ErrorCode.UNKNOWN_SESSION:
                    raise
        # The owning shard is gone; the server-side state died with it, so
        # closing is trivially done.
        return None, {
            "session_id": session_id,
            "closed": True,
            "edits": state.get("edits", 0),
        }

    async def _op_shutdown(self, params: Dict[str, object]) -> Tuple[None, object]:
        if not self.config.allow_shutdown:
            raise ProtocolError(
                ErrorCode.SHUTDOWN_DISABLED,
                "remote shutdown is disabled (start the fleet with --allow-shutdown)",
            )
        stopped = []
        for shard in self._healthy_shards():
            try:
                await shard.call("shutdown")
                stopped.append(shard.shard_id)
            except (TypeQueryError, OSError):
                pass
        assert self._stopping is not None
        self._stopping.set()
        return None, {"stopping": True, "shards_stopped": stopped}
