"""Fleet process management: ``python -m repro.server --fleet N``.

One launcher owns the whole topology:

1. the shared :class:`~repro.fleet.storeserver.SummaryStoreServer` (a thread
   in the launcher process -- the cheapest component, and keeping it local
   means the fleet's warm pool dies last);
2. ``N`` shard subprocesses, each an ordinary ``python -m repro.server
   --port 0`` pointed at the store daemon via ``--store-addr`` and labelled
   with ``--shard-id``;
3. the :class:`~repro.fleet.router.FleetRouter` serving the client-facing
   address on the launcher's event loop.

Startup is fail-fast: every shard must print its listen address within
``startup_timeout`` and answer a ``ping``, or the launcher tears everything
down and raises.  Shutdown is graceful-then-firm: SIGTERM each shard, give
it a moment, then SIGKILL stragglers; the router drains its connections
first so no accepted request is abandoned.

Crashed shards are *not* respawned -- the router routes around them (see
:mod:`.router`); respawn policy belongs to the operator's supervisor.
"""

from __future__ import annotations

import asyncio
import logging
import os
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import __version__
from ..server.client import TypeQueryClient
from .router import ROUTER_NAME, FleetRouter, RouterConfig
from .storeserver import SummaryStoreServer

logger = logging.getLogger("repro.fleet.launcher")

_LISTEN_RE = re.compile(r"listening on ([0-9a-fA-F.:\[\]]+):(\d+)")


def child_environment() -> Dict[str, str]:
    """The parent's environment plus whatever path imports ``repro`` here.

    Subprocesses must resolve ``-m repro.server`` even when the parent found
    the package through ``sys.path`` surgery (benchmarks, test harnesses)
    rather than an installed distribution or an exported ``PYTHONPATH``.
    """
    env = dict(os.environ)
    # __file__ is <root>/repro/fleet/launcher.py; children need <root> on path.
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class FleetConfig:
    """Everything tunable about one fleet: topology plus per-shard knobs."""

    shards: int = 2
    host: str = "127.0.0.1"
    #: the router's client-facing port; 0 picks a free one.
    port: int = 8792
    #: disk tier under the shared store daemon (None = memory only); the
    #: fleet then survives a full restart with its summary pool intact.
    store_dir: Optional[str] = None
    #: shared store daemon LRU capacity (fleet-wide pool).
    store_capacity: int = 16384
    #: per-shard in-process LRU in front of the shared store.
    cache_capacity: int = 4096
    registry_capacity: int = 128
    max_concurrency: int = 4
    max_pending: int = 64
    backend: Optional[str] = None
    backend_workers: Optional[int] = None
    health_interval: float = 2.0
    allow_shutdown: bool = False
    verbose: bool = False
    #: seconds each shard gets to bind and answer its first ping.
    startup_timeout: float = 60.0


class FleetLauncher:
    """Spawns and supervises one fleet.  ``start()`` → work → ``close()``.

    The router still needs an event loop: call :meth:`start` (store daemon +
    shards), then ``await`` :meth:`run_router` -- or use :func:`run_fleet`,
    which does both and prints the client-facing address.
    """

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        if self.config.shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.store: Optional[SummaryStoreServer] = None
        self.processes: List[subprocess.Popen] = []
        self.shard_addresses: List[str] = []
        self.router: Optional[FleetRouter] = None

    # -- bring-up --------------------------------------------------------------

    def start(self) -> "FleetLauncher":
        """Start the store daemon and all shard subprocesses (blocking)."""
        try:
            self.store = SummaryStoreServer(
                host=self.config.host,
                capacity=self.config.store_capacity,
                cache_dir=self.config.store_dir,
            ).start()
            logger.info("shared summary store on %s", self.store.address)
            for shard_id in range(self.config.shards):
                self._spawn_shard(shard_id)
            self._await_shards()
        except BaseException:
            self.close()
            raise
        return self

    def _shard_command(self, shard_id: int) -> List[str]:
        assert self.store is not None
        command = [
            sys.executable,
            "-m",
            "repro.server",
            "--host",
            self.config.host,
            "--port",
            "0",
            "--store-addr",
            self.store.address,
            "--shard-id",
            str(shard_id),
            "--cache-capacity",
            str(self.config.cache_capacity),
            "--registry-capacity",
            str(self.config.registry_capacity),
            "--max-concurrency",
            str(self.config.max_concurrency),
            "--max-pending",
            str(self.config.max_pending),
        ]
        if self.config.backend:
            command += ["--backend", self.config.backend]
        if self.config.backend_workers:
            command += ["--backend-workers", str(self.config.backend_workers)]
        if self.config.allow_shutdown:
            command.append("--allow-shutdown")
        if self.config.verbose:
            command.append("--verbose")
        return command

    def _spawn_shard(self, shard_id: int) -> None:
        process = subprocess.Popen(
            self._shard_command(shard_id),
            stdout=subprocess.PIPE,
            stderr=None,  # shard logs interleave with the launcher's
            text=True,
            env=child_environment(),
        )
        self.processes.append(process)
        logger.info("spawned shard %d (pid %d)", shard_id, process.pid)

    def _await_shards(self) -> None:
        """Read each shard's banner line and confirm it answers a ping."""
        deadline = time.monotonic() + self.config.startup_timeout
        for shard_id, process in enumerate(self.processes):
            address = None
            assert process.stdout is not None
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    raise RuntimeError(
                        f"shard {shard_id} (pid {process.pid}) exited with "
                        f"{process.returncode} during startup"
                    )
                line = process.stdout.readline()
                if not line:
                    continue
                match = _LISTEN_RE.search(line)
                if match:
                    address = f"{match.group(1)}:{match.group(2)}"
                    break
            if address is None:
                raise RuntimeError(
                    f"shard {shard_id} did not report a listen address within "
                    f"{self.config.startup_timeout}s"
                )
            self.shard_addresses.append(address)
            host, _, port = address.rpartition(":")
            remaining = max(0.5, deadline - time.monotonic())
            with TypeQueryClient(
                host, int(port), connect_retries=int(remaining / 0.2), connect_delay=0.2
            ) as client:
                client.ping()
            logger.info("shard %d healthy on %s", shard_id, address)

    # -- the router ------------------------------------------------------------

    def router_config(self) -> RouterConfig:
        assert self.store is not None and self.shard_addresses
        return RouterConfig(
            shards=list(self.shard_addresses),
            host=self.config.host,
            port=self.config.port,
            store_addr=self.store.address,
            health_interval=self.config.health_interval,
            allow_shutdown=self.config.allow_shutdown,
        )

    async def run_router(self) -> None:
        """Start the router and serve until shutdown; then tear the fleet down."""
        self.router = FleetRouter(self.router_config())
        host, port = await self.router.start()
        print(
            f"{ROUTER_NAME} v{__version__} listening on {host}:{port} "
            f"({len(self.shard_addresses)} shards, store {self.store.address})",
            flush=True,
        )
        try:
            await self.router.serve_forever()
        finally:
            self.close()

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """SIGTERM every shard (SIGKILL stragglers), stop the store daemon."""
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for process in self.processes:
            try:
                process.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
            if process.stdout is not None:
                process.stdout.close()
        self.processes = []
        self.shard_addresses = []
        if self.store is not None:
            self.store.close()
            self.store = None

    def snapshot(self) -> Dict[str, object]:
        return {
            "shards": [
                {"pid": process.pid, "returncode": process.poll()}
                for process in self.processes
            ],
            "addresses": list(self.shard_addresses),
            "store": self.store.snapshot() if self.store is not None else None,
        }

    def __enter__(self) -> "FleetLauncher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


async def run_fleet(config: Optional[FleetConfig] = None) -> None:
    """Bring up a whole fleet and serve until shut down (the CLI entry)."""
    launcher = FleetLauncher(config)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, launcher.start)
    await launcher.run_router()
