"""The shared summary-store daemon: one warm pool for every fleet shard.

A thin socket front over one :class:`~repro.service.store.SummaryStore`
(in-memory LRU, optionally disk-backed).  Shards connect through
:class:`~repro.service.store.SocketStoreBackend` and speak one JSON object
per line:

========= ======================================== ==============================
op        request fields                           reply fields (plus ``ok``)
========= ======================================== ==============================
``ping``  --                                       ``server``, ``format``, ``pid``
``get``   ``key``                                  ``payload`` (or ``null``)
``put``   ``key``, ``payload``                     ``stored``
``contains`` ``key``                               ``contains``
``stats`` --                                       ``stats``, ``entries``, ``clients``
========= ======================================== ==============================

Malformed lines are answered with ``{"ok": false, "error": …}`` and the
connection stays open; the daemon never dies on client input.  The handshake
(``ping`` echoing ``STORE_FORMAT``) lets clients refuse version-skewed
daemons, so a format bump reads as an empty store, never as corruption.

Threading model: ``socketserver.ThreadingTCPServer`` -- one thread per
connected shard, all sharing the thread-safe store.  Shard counts are small
(one connection per shard process plus the router), so thread-per-connection
is the simple, correct choice here; the request path is a dict lookup.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import threading
from typing import Dict, Optional, Tuple

from ..obs.metrics import get_registry
from ..service.store import STORE_FORMAT, STORE_SERVER_NAME, SummaryStore

logger = logging.getLogger("repro.fleet.store")

#: cap on one request line (a serialized SCC summary is well under this).
MAX_STORE_LINE = 32 * 1024 * 1024


class _StoreHandler(socketserver.StreamRequestHandler):
    """One connected shard; loops over newline-JSON requests until hangup."""

    def handle(self) -> None:
        server: "_StoreTCPServer" = self.server  # type: ignore[assignment]
        server.clients_connected += 1
        server.live_connections.add(self.connection)
        try:
            while True:
                line = self.rfile.readline(MAX_STORE_LINE)
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    reply = server.respond(line)
                except Exception as exc:  # noqa: BLE001 - daemon must not die
                    logger.exception("store daemon internal error")
                    reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                self.wfile.write(
                    (json.dumps(reply, separators=(",", ":")) + "\n").encode("utf-8")
                )
                self.wfile.flush()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            server.clients_connected -= 1
            server.live_connections.discard(self.connection)


class _StoreTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], store: SummaryStore) -> None:
        super().__init__(address, _StoreHandler)
        self.store = store
        self.clients_connected = 0
        self.requests_served = 0
        self.live_connections: set = set()

    def respond(self, line: bytes) -> Dict[str, object]:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return {"ok": False, "error": f"unparseable request line: {exc}"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = message.get("op")
        self.requests_served += 1
        registry = get_registry()
        registry.counter("fleet_store_requests_total", op=str(op)).inc()
        if op == "ping":
            return {
                "ok": True,
                "server": STORE_SERVER_NAME,
                "format": STORE_FORMAT,
                "pid": os.getpid(),
            }
        if op == "get":
            key = message.get("key")
            if not isinstance(key, str):
                return {"ok": False, "error": "get needs a string 'key'"}
            return {"ok": True, "payload": self.store.get_payload(key)}
        if op == "put":
            key, payload = message.get("key"), message.get("payload")
            if not isinstance(key, str) or not isinstance(payload, dict):
                return {"ok": False, "error": "put needs 'key' (str) and 'payload' (object)"}
            if payload.get("format") != STORE_FORMAT:
                # A mis-versioned client must not poison the shared pool.
                return {"ok": False, "error": f"payload format is not {STORE_FORMAT}"}
            self.store.admit_payload(key, payload)
            return {"ok": True, "stored": True}
        if op == "contains":
            key = message.get("key")
            if not isinstance(key, str):
                return {"ok": False, "error": "contains needs a string 'key'"}
            return {"ok": True, "contains": key in self.store}
        if op == "stats":
            return {
                "ok": True,
                "stats": self.store.stats.snapshot(),
                "entries": len(self.store),
                "clients": self.clients_connected,
                "requests": self.requests_served,
            }
        return {"ok": False, "error": f"unknown store op {op!r}"}


class SummaryStoreServer:
    """The daemon: construct, :meth:`start`, read :attr:`port`, :meth:`close`.

    Runs its accept loop on a daemon thread, so the fleet launcher (or a
    test) hosts it in-process.  ``cache_dir`` adds the disk tier underneath
    the shared memory pool: the fleet then survives a store-daemon restart
    with its summaries intact.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 16384,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.store = SummaryStore(capacity=capacity, cache_dir=cache_dir)
        self._server = _StoreTCPServer((host, port), self.store)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "SummaryStoreServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-store-daemon",
            daemon=True,
        )
        self._thread.start()
        logger.info("summary-store daemon listening on %s", self.address)
        return self

    def snapshot(self) -> Dict[str, object]:
        return {
            "address": self.address,
            "entries": len(self.store),
            "clients": self._server.clients_connected,
            "requests": self._server.requests_served,
            "stats": self.store.stats.snapshot(),
        }

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        # Sever live shard connections too: a closed daemon must read as
        # *down* to its clients (they degrade to misses), not as hung.
        for connection in list(self._server.live_connections):
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "SummaryStoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
