"""Consistent hashing for shard placement: stdlib only, deterministic.

The classic construction: every shard contributes ``replicas`` points on a
2^64 circle (SHA-256 of ``"shard:<id>:<replica>"``), and a key lands on the
first point clockwise of its own hash.  Two properties make this the right
router primitive:

* **stability** -- adding or removing one shard remaps only the arcs that
  touch its points (~1/N of the keyspace), so a shard crash does not
  reshuffle every program's home and throw away every other shard's warm
  registry;
* **determinism** -- placement is a pure function of the key and the live
  shard set.  Two routers (or a router and a test) agree without talking.

``nodes_for`` yields the full preference order (each live shard exactly
once), which is exactly the failover sequence: the router walks it until a
healthy shard answers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple


def _point(token: str) -> int:
    """A position on the 2^64 circle (first 8 bytes of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over opaque shard ids."""

    def __init__(self, nodes: Sequence[object] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("a ring needs at least one replica per node")
        self.replicas = replicas
        self._points: List[Tuple[int, object]] = []
        self._keys: List[int] = []
        self._nodes: Dict[object, List[int]] = {}
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[object]:
        return sorted(self._nodes, key=str)

    def add(self, node: object) -> None:
        if node in self._nodes:
            return
        points = [_point(f"shard:{node}:{replica}") for replica in range(self.replicas)]
        self._nodes[node] = points
        for point in points:
            index = bisect.bisect(self._keys, point)
            self._keys.insert(index, point)
            self._points.insert(index, (point, node))

    def remove(self, node: object) -> None:
        points = self._nodes.pop(node, None)
        if points is None:
            return
        # Rebuild the sorted arrays; N*replicas stays tiny (fleets are tens
        # of shards, not thousands), so clarity beats cleverness here.
        self._points = [(p, n) for p, n in self._points if n != node]
        self._keys = [p for p, _ in self._points]

    def node_for(self, key: str) -> object:
        """The shard owning ``key``; raises ``LookupError`` on an empty ring."""
        if not self._points:
            raise LookupError("hash ring is empty (no healthy shards)")
        index = bisect.bisect(self._keys, _point(key)) % len(self._points)
        return self._points[index][1]

    def nodes_for(self, key: str) -> Iterator[object]:
        """All shards in preference (failover) order, each exactly once."""
        if not self._points:
            return
        seen = set()
        start = bisect.bisect(self._keys, _point(key))
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                yield node
