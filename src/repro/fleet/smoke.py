"""The fleet acceptance harness: ``python -m repro.fleet.smoke``.

Proves the three fleet guarantees end-to-end, the way CI consumes them:

1. **byte-identity** -- a fleet's ``query`` payloads are fingerprint-identical
   to a single server's over a generated corpus (routing must never alter a
   result);
2. **failover** -- with one shard SIGKILLed mid-corpus, every request still
   succeeds (no client-visible error beyond internally-retried transients)
   and the fingerprints still match;
3. **shared warmth** -- after failover, a surviving shard shows socket-store
   hits for programs it never analyzed (the re-homed analyses were served
   from the shared pool, not re-solved).

Both passes run real subprocesses via the public CLI, so this exercises the
launcher, the router, the store daemon and the shards exactly as an operator
would.  Exit status 0 means all three guarantees held; the JSON report on
stdout (and optionally ``--json``) carries the evidence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..gen import GenProfile, generate_corpus
from ..server.client import RetryPolicy, TypeQueryClient

_LISTEN_RE = re.compile(r"listening on ([0-9a-fA-F.:\[\]]+):(\d+)")


def payload_fingerprint(payload: Dict[str, object]) -> str:
    """Digest of a whole-program ``query`` payload, minus identity/timing.

    ``program_id`` differs from nothing (it is content-derived) but is
    excluded for symmetry with :func:`repro.gen.oracle.result_fingerprint`;
    ``stats`` is excluded because scheduling and cache state legitimately
    differ between a cold single server and a fleet.
    """
    scrubbed = {k: v for k, v in payload.items() if k not in ("program_id", "stats")}
    canonical = json.dumps(scrubbed, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _spawn(command: List[str], timeout: float) -> Tuple[subprocess.Popen, str, int]:
    """Start a server/fleet subprocess and parse its listen banner."""
    from .launcher import child_environment

    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=None, text=True, env=child_environment()
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"{' '.join(command)} exited with {process.returncode} during startup"
            )
        line = process.stdout.readline()
        if not line:
            continue
        match = _LISTEN_RE.search(line)
        if match:
            return process, match.group(1), int(match.group(2))
    process.kill()
    raise RuntimeError(f"no listen banner within {timeout}s from {' '.join(command)}")


def _stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
    if process.stdout is not None:
        process.stdout.close()


def _fingerprint_program(client: TypeQueryClient, source: str) -> Tuple[str, str]:
    result = client.analyze(source, kind="c")
    program_id = result["program_id"]
    return program_id, payload_fingerprint(client.query(program_id))


def run_smoke(
    programs: int = 20,
    shards: int = 2,
    seed: int = 20160613,
    kill_after: Optional[int] = None,
    startup_timeout: float = 120.0,
) -> Dict[str, object]:
    """The full harness; returns the report dict (``report["ok"]`` gates CI)."""
    corpus = generate_corpus(programs, seed, GenProfile.smoke(), name_prefix="fleetsmoke")
    kill_index = kill_after if kill_after is not None else max(1, programs // 3)
    report: Dict[str, object] = {
        "programs": programs,
        "shards": shards,
        "seed": seed,
        "kill_after": kill_index,
        "mismatches": [],
        "requery_mismatches": [],
    }

    # -- pass 1: the single-server reference --------------------------------
    reference: Dict[str, str] = {}
    single_cmd = [sys.executable, "-m", "repro.server", "--port", "0"]
    process, host, port = _spawn(single_cmd, startup_timeout)
    try:
        with TypeQueryClient(host, port, timeout=300.0, connect_retries=50) as client:
            for program in corpus:
                program_id, fingerprint = _fingerprint_program(client, program.source)
                reference[program.name] = fingerprint
    finally:
        _stop(process)

    # -- pass 2: the fleet, with one shard killed mid-corpus ----------------
    fleet_cmd = [
        sys.executable,
        "-m",
        "repro.server",
        "--fleet",
        str(shards),
        "--port",
        "0",
    ]
    process, host, port = _spawn(fleet_cmd, startup_timeout)
    killed_pid: Optional[int] = None
    try:
        retry = RetryPolicy(attempts=8, base_delay=0.2, max_delay=3.0)
        with TypeQueryClient(
            host, port, timeout=300.0, connect_retries=50, retry=retry
        ) as client:
            ids: Dict[str, str] = {}
            for index, program in enumerate(corpus):
                if index == kill_index and shards > 1:
                    killed_pid = _kill_one_shard(client)
                    report["killed_pid"] = killed_pid
                program_id, fingerprint = _fingerprint_program(client, program.source)
                ids[program.name] = program_id
                if fingerprint != reference[program.name]:
                    report["mismatches"].append(program.name)
            # Re-query everything: programs homed on the dead shard must be
            # served anyway (lazy replication + shared-store re-analysis).
            for program in corpus:
                fingerprint = payload_fingerprint(client.query(ids[program.name]))
                if fingerprint != reference[program.name]:
                    report["requery_mismatches"].append(program.name)
            report["shard_stats"] = _collect_shard_stats(client)
            router_stats = client.stats()
            report["reanalyses"] = router_stats.get("reanalyses")
    finally:
        _stop(process)

    remote_hits = sum(
        row.get("store", {}).get("remote_hits", 0)
        for row in report["shard_stats"].values()
    )
    report["remote_hits"] = remote_hits
    report["ok"] = (
        not report["mismatches"]
        and not report["requery_mismatches"]
        and remote_hits > 0
        and (shards < 2 or killed_pid is not None)
    )
    return report


def _kill_one_shard(client: TypeQueryClient) -> int:
    """SIGKILL the first healthy shard the router reports; returns its pid."""
    health = client.health()
    for row in health.get("shards", {}).values():
        pid = row.get("pid")
        if row.get("healthy") and isinstance(pid, int):
            os.kill(pid, signal.SIGKILL)
            return pid
    raise RuntimeError(f"no healthy shard to kill in {health!r}")


def _collect_shard_stats(client: TypeQueryClient) -> Dict[str, Dict[str, object]]:
    """Per-live-shard daemon stats (store hit counters included)."""
    rows: Dict[str, Dict[str, object]] = {}
    health = client.health()
    for shard_id, row in health.get("shards", {}).items():
        if not row.get("healthy"):
            rows[shard_id] = {"healthy": False}
            continue
        stats = client.request("stats", {"shard": int(shard_id)})
        rows[shard_id] = {
            "healthy": True,
            "store": stats.get("store", {}),
            "requests_served": stats.get("requests_served"),
        }
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.smoke",
        description="Fleet acceptance: byte-identity, failover, shared warmth.",
    )
    parser.add_argument("--programs", type=int, default=20, help="corpus size (default: %(default)s)")
    parser.add_argument("--shards", type=int, default=2, help="fleet width (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=20160613, help="corpus seed (default: %(default)s)")
    parser.add_argument(
        "--kill-after",
        type=int,
        default=None,
        help="kill one shard after this many programs (default: a third in)",
    )
    parser.add_argument("--json", default=None, help="also write the report to this path")
    args = parser.parse_args(argv)
    report = run_smoke(
        programs=args.programs,
        shards=args.shards,
        seed=args.seed,
        kill_after=args.kill_after,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
