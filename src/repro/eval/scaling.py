"""Scaling measurements and power-law fits (Figures 11 and 12).

The paper reports that type-inference time scales as ``T = 0.000725 * N^1.098``
(memory: ``m = 0.037 * N^0.846``) over programs from 2K to 840K instructions,
i.e. essentially linearly despite the cubic worst case of the per-procedure
simplification.  This module measures the reproduction's wall-clock time and
peak memory over a generated size sweep and fits the same ``a * N^b`` model,
numerically in (N, T) space as the paper specifies (not log-log).
"""

from __future__ import annotations

import math
import time
import tracemalloc
from dataclasses import dataclass, field as dc_field
from typing import Callable, List, Optional, Sequence, Tuple

from ..baselines import RetypdEngine, TypeInferenceEngine
from .workloads import Workload


@dataclass
class ScalingPoint:
    name: str
    cfg_nodes: int
    instructions: int
    seconds: float
    peak_memory_bytes: int


@dataclass
class PowerLawFit:
    """``y = a * x^b`` with a coefficient of determination."""

    a: float
    b: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.a * (x ** self.b)

    def __str__(self) -> str:
        return f"y = {self.a:.3g} * N^{self.b:.3f} (R^2 = {self.r_squared:.3f})"


def measure_scaling(
    workloads: Sequence[Workload],
    engine: Optional[TypeInferenceEngine] = None,
    measure_memory: bool = True,
) -> List[ScalingPoint]:
    """Run the engine over a size sweep, recording time and peak memory."""
    engine = engine or RetypdEngine()
    points: List[ScalingPoint] = []
    for workload in workloads:
        if measure_memory:
            tracemalloc.start()
        start = time.perf_counter()
        types = engine.analyze(workload.program)
        elapsed = time.perf_counter() - start
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
        points.append(
            ScalingPoint(
                name=workload.name,
                cfg_nodes=int(types.stats.get("cfg_nodes", 0)),
                instructions=workload.instructions,
                seconds=elapsed,
                peak_memory_bytes=peak,
            )
        )
    return points


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * x^b`` minimizing the error in y (as the paper does).

    A log-log least-squares fit provides the starting point; a short
    Gauss-Newton refinement then minimizes the untransformed residuals.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return PowerLawFit(a=0.0, b=0.0, r_squared=0.0)
    xs_f = [float(x) for x, _ in pairs]
    ys_f = [float(y) for _, y in pairs]

    # Initial estimate in log-log space.
    log_x = [math.log(x) for x in xs_f]
    log_y = [math.log(y) for y in ys_f]
    n = len(pairs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    sxx = sum((x - mean_x) ** 2 for x in log_x) or 1e-12
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    b = sxy / sxx
    a = math.exp(mean_y - b * mean_x)

    # Gauss-Newton refinement on the untransformed residuals.
    for _ in range(200):
        residuals = [y - a * (x ** b) for x, y in zip(xs_f, ys_f)]
        # Jacobian columns: d/da = x^b ; d/db = a * x^b * ln(x)
        j_a = [x ** b for x in xs_f]
        j_b = [a * (x ** b) * math.log(x) for x in xs_f]
        jtj = [
            [sum(ja * ja2 for ja, ja2 in zip(j_a, j_a)), sum(ja * jb for ja, jb in zip(j_a, j_b))],
            [sum(jb * ja for ja, jb in zip(j_a, j_b)), sum(jb * jb2 for jb, jb2 in zip(j_b, j_b))],
        ]
        jtr = [
            sum(ja * r for ja, r in zip(j_a, residuals)),
            sum(jb * r for jb, r in zip(j_b, residuals)),
        ]
        det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0]
        if abs(det) < 1e-18:
            break
        delta_a = (jtr[0] * jtj[1][1] - jtr[1] * jtj[0][1]) / det
        delta_b = (jtr[1] * jtj[0][0] - jtr[0] * jtj[1][0]) / det
        a += 0.5 * delta_a
        b += 0.5 * delta_b
        if abs(delta_a) < 1e-12 and abs(delta_b) < 1e-9:
            break
        if a <= 0:
            a = max(a, 1e-12)

    predictions = [a * (x ** b) for x in xs_f]
    mean = sum(ys_f) / n
    ss_tot = sum((y - mean) ** 2 for y in ys_f) or 1e-12
    ss_res = sum((y - p) ** 2 for y, p in zip(ys_f, predictions))
    return PowerLawFit(a=a, b=b, r_squared=1.0 - ss_res / ss_tot)


def figure11_fit(points: Sequence[ScalingPoint]) -> PowerLawFit:
    """Time-vs-size fit (the paper finds an exponent of about 1.1)."""
    return fit_power_law([p.cfg_nodes or p.instructions for p in points], [p.seconds for p in points])


def figure12_fit(points: Sequence[ScalingPoint]) -> PowerLawFit:
    """Memory-vs-size fit (the paper finds an exponent of about 0.85)."""
    return fit_power_law(
        [p.cfg_nodes or p.instructions for p in points],
        [max(1.0, p.peak_memory_bytes / 1e6) for p in points],
    )
