"""Evaluation: metrics, synthetic benchmark suites, harness, scaling fits."""

from .metrics import (
    ProgramMetrics,
    VariableComparison,
    aggregate,
    evaluate_program,
    interval_size_from_sketch,
    is_conservative,
    pointer_accuracy,
    type_distance,
)
from .workloads import (
    SourceGenerator,
    Workload,
    generate_program_source,
    make_cluster,
    make_workload,
    scaling_suite,
    standard_suite,
)
from .harness import (
    EngineReport,
    compare_engines,
    figure8_rows,
    figure9_rows,
    figure10_rows,
    format_rows,
    run_engine,
)
from .scaling import (
    PowerLawFit,
    ScalingPoint,
    figure11_fit,
    figure12_fit,
    fit_power_law,
    measure_scaling,
)

__all__ = [
    "EngineReport",
    "PowerLawFit",
    "ProgramMetrics",
    "ScalingPoint",
    "SourceGenerator",
    "VariableComparison",
    "Workload",
    "aggregate",
    "compare_engines",
    "evaluate_program",
    "figure10_rows",
    "figure11_fit",
    "figure12_fit",
    "figure8_rows",
    "figure9_rows",
    "fit_power_law",
    "format_rows",
    "generate_program_source",
    "interval_size_from_sketch",
    "is_conservative",
    "make_cluster",
    "make_workload",
    "measure_scaling",
    "pointer_accuracy",
    "run_engine",
    "scaling_suite",
    "standard_suite",
    "type_distance",
]
