"""Synthetic benchmark-suite generation.

The paper's corpus (coreutils, SPEC CPU2006, Windows DLLs -- Figures 7 and 10)
cannot be redistributed or rebuilt here, so the evaluation uses a seeded
generator that manufactures mini-C programs exhibiting the idioms the corpus
is interesting for:

* recursive linked structures and trees (section 2.3),
* getters/setters over structs (pointer-to-field idioms, section 2.4),
* user allocation wrappers around ``malloc`` (polymorphism, section 2.2),
* const and non-const pointer parameters (section 6.4),
* file-descriptor plumbing through the modelled libc (semantic tags),
* integer/flag logic that should *not* become pointers,
* drivers sharing a statically-linked "library" of common code, grouped into
  clusters the way Figure 10 groups coreutils/vpx/putty binaries.

Everything is deterministic given the seed, so every figure regenerates
identically.

Relationship to :mod:`repro.gen`: the profile-driven generator there is the
maintained, feature-complete source of ground-truth programs (trees,
multi-level pointers, handler slots, mutual recursion, dead code) and backs
the open-ended ``generated`` family below; the :class:`SourceGenerator`
templates in this module are deliberately frozen so the *fixed* figure suites
stay byte-stable against the recorded ``benchmarks/results/`` numbers.  New
idioms belong in ``repro.gen``, not here.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import CompilationResult, compile_c


@dataclass
class Workload:
    """One synthetic "binary": its source, compiled program and ground truth."""

    name: str
    cluster: str
    source: str
    compilation: CompilationResult

    @property
    def program(self):
        return self.compilation.program

    @property
    def ground_truth(self):
        return self.compilation.ground_truth

    @property
    def instructions(self) -> int:
        return self.program.instruction_count


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


class SourceGenerator:
    """Generates a library of struct types and functions over them."""

    def __init__(self, seed: int, prefix: str = "lib") -> None:
        self.rng = random.Random(seed)
        self.prefix = prefix
        self.struct_defs: List[str] = []
        self.struct_names: List[str] = []
        self.recursive_structs: List[str] = []
        self.struct_fields: Dict[str, List[Tuple[str, str]]] = {}
        self.functions: List[str] = []
        #: generated function signatures: name -> (param spec list, returns_value)
        self.function_sigs: Dict[str, Tuple[List[str], bool]] = {}

    # -- structs --------------------------------------------------------------------

    def add_struct(self, recursive: bool) -> str:
        index = len(self.struct_names)
        name = f"{self.prefix}_s{index}"
        fields: List[Tuple[str, str]] = []
        if recursive:
            fields.append(("next", f"struct {name} *"))
        n_fields = self.rng.randint(2, 4)
        for i in range(n_fields):
            kind = self.rng.random()
            if kind < 0.6:
                fields.append((f"value{i}", "int"))
            elif kind < 0.8:
                fields.append((f"count{i}", "unsigned"))
            elif self.struct_names and kind < 0.9:
                other = self.rng.choice(self.struct_names)
                fields.append((f"ref{i}", f"struct {other} *"))
            else:
                fields.append((f"fd{i}", "int"))
        body = "\n".join(f"    {ftype} {fname};" for fname, ftype in fields)
        self.struct_defs.append(f"struct {name} {{\n{body}\n}};")
        self.struct_names.append(name)
        self.struct_fields[name] = fields
        if recursive:
            self.recursive_structs.append(name)
        return name

    def _int_fields(self, struct: str) -> List[str]:
        return [
            fname
            for fname, ftype in self.struct_fields[struct]
            if ftype in ("int", "unsigned")
        ]

    # -- function templates -----------------------------------------------------------

    def _register(self, name: str, params: List[str], returns: bool, body: str) -> None:
        self.functions.append(body)
        self.function_sigs[name] = (params, returns)

    def add_getter(self, struct: str) -> None:
        fields = self._int_fields(struct)
        if not fields:
            return
        fname = self.rng.choice(fields)
        name = f"get_{struct}_{fname}"
        if name in self.function_sigs:
            return
        body = (
            f"int {name}(const struct {struct} * obj) {{\n"
            f"    return obj->{fname};\n"
            f"}}"
        )
        self._register(name, [f"const struct {struct} *"], True, body)

    def add_setter(self, struct: str) -> None:
        fields = self._int_fields(struct)
        if not fields:
            return
        fname = self.rng.choice(fields)
        name = f"set_{struct}_{fname}"
        if name in self.function_sigs:
            return
        body = (
            f"void {name}(struct {struct} * obj, int value) {{\n"
            f"    obj->{fname} = value;\n"
            f"}}"
        )
        self._register(name, [f"struct {struct} *", "int"], False, body)

    def add_constructor(self, struct: str) -> None:
        name = f"new_{struct}"
        if name in self.function_sigs:
            return
        fields = self.struct_fields[struct]
        lines = [
            f"struct {struct} * {name}(int seed) {{",
            f"    struct {struct} * obj;",
            f"    obj = (struct {struct} *) malloc(sizeof(struct {struct}));",
        ]
        for fname, ftype in fields:
            if ftype in ("int", "unsigned"):
                lines.append(f"    obj->{fname} = seed + {self.rng.randint(0, 8)};")
            elif ftype.endswith("*"):
                lines.append(f"    obj->{fname} = NULL;")
        lines.append("    return obj;")
        lines.append("}")
        self._register(name, ["int"], True, "\n".join(lines))

    def add_list_walker(self, struct: str) -> None:
        if struct not in self.recursive_structs:
            return
        name = f"count_{struct}"
        if name in self.function_sigs:
            return
        body = (
            f"int {name}(const struct {struct} * head) {{\n"
            f"    int n;\n"
            f"    n = 0;\n"
            f"    while (head != NULL) {{\n"
            f"        n = n + 1;\n"
            f"        head = head->next;\n"
            f"    }}\n"
            f"    return n;\n"
            f"}}"
        )
        self._register(name, [f"const struct {struct} *"], True, body)

    def add_list_sum(self, struct: str) -> None:
        if struct not in self.recursive_structs:
            return
        fields = self._int_fields(struct)
        if not fields:
            return
        fname = self.rng.choice(fields)
        name = f"sum_{struct}_{fname}"
        if name in self.function_sigs:
            return
        body = (
            f"int {name}(const struct {struct} * head) {{\n"
            f"    int total;\n"
            f"    total = 0;\n"
            f"    while (head != NULL) {{\n"
            f"        total = total + head->{fname};\n"
            f"        head = head->next;\n"
            f"    }}\n"
            f"    return total;\n"
            f"}}"
        )
        self._register(name, [f"const struct {struct} *"], True, body)

    def add_push_front(self, struct: str) -> None:
        if struct not in self.recursive_structs:
            return
        name = f"push_{struct}"
        if name in self.function_sigs:
            return
        constructor = f"new_{struct}"
        if constructor not in self.function_sigs:
            self.add_constructor(struct)
        body = (
            f"struct {struct} * {name}(struct {struct} * head, int value) {{\n"
            f"    struct {struct} * node;\n"
            f"    node = {constructor}(value);\n"
            f"    node->next = head;\n"
            f"    return node;\n"
            f"}}"
        )
        self._register(name, [f"struct {struct} *", "int"], True, body)

    def add_free_all(self, struct: str) -> None:
        if struct not in self.recursive_structs:
            return
        name = f"release_{struct}"
        if name in self.function_sigs:
            return
        body = (
            f"void {name}(struct {struct} * head) {{\n"
            f"    while (head != NULL) {{\n"
            f"        struct {struct} * next;\n"
            f"        next = head->next;\n"
            f"        free(head);\n"
            f"        head = next;\n"
            f"    }}\n"
            f"}}"
        )
        self._register(name, [f"struct {struct} *"], False, body)

    def add_allocator_wrapper(self) -> None:
        name = f"{self.prefix}_xmalloc"
        if name in self.function_sigs:
            return
        body = (
            f"void * {name}(unsigned size) {{\n"
            f"    void * p;\n"
            f"    p = malloc(size);\n"
            f"    if (p == NULL) {{\n"
            f"        abort();\n"
            f"    }}\n"
            f"    return p;\n"
            f"}}"
        )
        self._register(name, ["unsigned"], True, body)

    def add_array_sum(self) -> None:
        name = f"{self.prefix}_array_sum"
        if name in self.function_sigs:
            return
        body = (
            f"int {name}(const int * values, int count) {{\n"
            f"    int total;\n"
            f"    int i;\n"
            f"    total = 0;\n"
            f"    i = 0;\n"
            f"    while (i < count) {{\n"
            f"        total = total + values[i];\n"
            f"        i = i + 1;\n"
            f"    }}\n"
            f"    return total;\n"
            f"}}"
        )
        self._register(name, ["const int *", "int"], True, body)

    def add_fd_helper(self) -> None:
        name = f"{self.prefix}_read_all"
        if name in self.function_sigs:
            return
        body = (
            f"int {name}(const char * path, int * buffer, unsigned size) {{\n"
            f"    int fd;\n"
            f"    int got;\n"
            f"    fd = open(path, 0);\n"
            f"    if (fd < 0) {{\n"
            f"        return 0 - 1;\n"
            f"    }}\n"
            f"    got = read(fd, buffer, size);\n"
            f"    close(fd);\n"
            f"    return got;\n"
            f"}}"
        )
        self._register(name, ["const char *", "int *", "unsigned"], True, body)

    def add_buffer_copy(self) -> None:
        name = f"{self.prefix}_clone_buffer"
        if name in self.function_sigs:
            return
        wrapper = f"{self.prefix}_xmalloc"
        if wrapper not in self.function_sigs:
            self.add_allocator_wrapper()
        body = (
            f"int * {name}(const int * source, unsigned count) {{\n"
            f"    int * copy;\n"
            f"    copy = (int *) {wrapper}(count * 4);\n"
            f"    memcpy(copy, source, count * 4);\n"
            f"    return copy;\n"
            f"}}"
        )
        self._register(name, ["const int *", "unsigned"], True, body)

    def add_logic_function(self, index: int) -> None:
        name = f"{self.prefix}_decide{index}"
        if name in self.function_sigs:
            return
        threshold = self.rng.randint(1, 100)
        body = (
            f"int {name}(int a, int b, int flags) {{\n"
            f"    int result;\n"
            f"    result = 0;\n"
            f"    if (a > b) {{\n"
            f"        result = a - b;\n"
            f"    }} else {{\n"
            f"        result = b - a;\n"
            f"    }}\n"
            f"    if (flags > {threshold}) {{\n"
            f"        result = result * 2;\n"
            f"    }}\n"
            f"    return result;\n"
            f"}}"
        )
        self._register(name, ["int", "int", "int"], True, body)

    def add_driver(self, index: int) -> None:
        """A function that calls several previously generated functions."""
        name = f"{self.prefix}_driver{index}"
        if name in self.function_sigs or not self.function_sigs:
            return
        callable_names = [
            fname
            for fname, (params, _) in self.function_sigs.items()
            if all(self._can_synthesize(p) for p in params)
        ]
        if not callable_names:
            return
        lines = [f"int {name}(int seed) {{", "    int acc;", "    acc = seed;"]
        locals_needed: Dict[str, str] = {}
        chosen = self.rng.sample(callable_names, min(len(callable_names), self.rng.randint(2, 5)))
        for callee in chosen:
            params, returns = self.function_sigs[callee]
            args = []
            for param in params:
                args.append(self._synthesize_argument(param, locals_needed))
            call = f"{callee}({', '.join(args)})"
            if returns:
                lines.append(f"    acc = acc + {call};")
            else:
                lines.append(f"    {call};")
        declarations = [f"    {ctype} {vname};" for vname, ctype in locals_needed.items()]
        init = [f"    {vname} = {self._initializer(ctype)};" for vname, ctype in locals_needed.items()]
        body = [lines[0], lines[1]] + declarations + [lines[2]] + init + lines[3:]
        body.append("    return acc;")
        body.append("}")
        self._register(name, ["int"], True, "\n".join(body))

    def _can_synthesize(self, param: str) -> bool:
        if param in ("int", "unsigned"):
            return True
        if param.startswith("const struct") or param.startswith("struct"):
            struct = param.split()[-2]
            return f"new_{struct}" in self.function_sigs
        if param in ("const int *", "int *", "const char *", "void *", "unsigned *"):
            return False  # would need arrays; drivers skip these
        return False

    def _synthesize_argument(self, param: str, locals_needed: Dict[str, str]) -> str:
        if param in ("int", "unsigned"):
            return str(self.rng.randint(0, 64))
        struct = param.split()[-2]
        var = f"tmp_{struct}"
        locals_needed[var] = f"struct {struct} *"
        return var

    def _initializer(self, ctype: str) -> str:
        if ctype.endswith("*"):
            struct = ctype.split()[1]
            constructor = f"new_{struct}"
            if constructor in self.function_sigs:
                return f"{constructor}({self.rng.randint(0, 9)})"
            return "NULL"
        return "0"

    # -- assembly of a translation unit -------------------------------------------------

    def library_source(self, n_structs: int, n_functions: int) -> str:
        """Generate the shared library portion."""
        for i in range(n_structs):
            self.add_struct(recursive=(i % 2 == 0))
        self.add_allocator_wrapper()
        self.add_array_sum()
        self.add_fd_helper()
        self.add_buffer_copy()
        generators = [
            self.add_getter,
            self.add_setter,
            self.add_constructor,
            self.add_list_walker,
            self.add_list_sum,
            self.add_push_front,
            self.add_free_all,
        ]
        attempts = 0
        while len(self.function_sigs) < n_functions and attempts < n_functions * 10:
            attempts += 1
            action = self.rng.random()
            if action < 0.75 and self.struct_names:
                struct = self.rng.choice(self.struct_names)
                self.rng.choice(generators)(struct)
            elif action < 0.9:
                self.add_logic_function(len(self.function_sigs))
            else:
                self.add_driver(len(self.function_sigs))
        return self.source()

    def source(self) -> str:
        return "\n\n".join(self.struct_defs + self.functions) + "\n"


def generate_program_source(
    name: str, n_functions: int, seed: int, n_structs: Optional[int] = None
) -> str:
    """Generate a standalone program with roughly ``n_functions`` functions."""
    generator = SourceGenerator(seed, prefix=name.replace("-", "_"))
    structs = n_structs if n_structs is not None else max(2, n_functions // 8)
    return generator.library_source(structs, n_functions)


def make_workload(
    name: str, n_functions: int, seed: int, cluster: str = "", n_structs: Optional[int] = None
) -> Workload:
    source = generate_program_source(name, n_functions, seed, n_structs)
    compilation = compile_c(source)
    return Workload(name=name, cluster=cluster or name, source=source, compilation=compilation)


def make_cluster(
    cluster: str,
    members: int,
    shared_functions: int,
    member_functions: int,
    seed: int,
) -> List[Workload]:
    """A cluster of binaries sharing a statically-linked library (Figure 10)."""
    shared_generator = SourceGenerator(seed, prefix=cluster.replace("-", "_"))
    shared_source = shared_generator.library_source(
        max(2, shared_functions // 8), shared_functions
    )
    workloads = []
    safe_cluster = cluster.replace("-", "_")
    for index in range(members):
        member_name = f"{cluster}_{index}"
        member_prefix = f"m{index}_{safe_cluster}"[:12].rstrip("_")
        member_generator = SourceGenerator(seed * 1000 + index, prefix=member_prefix)
        member_source = member_generator.library_source(1, member_functions)
        source = shared_source + "\n" + member_source
        compilation = compile_c(source)
        workloads.append(
            Workload(name=member_name, cluster=cluster, source=source, compilation=compilation)
        )
    return workloads


# ---------------------------------------------------------------------------
# Standard suites
# ---------------------------------------------------------------------------


def standard_suite(scale: float = 1.0, seed: int = 20160613) -> List[Workload]:
    """The clustered benchmark suite used for Figures 8, 9 and 10.

    ``scale`` multiplies the per-program function counts; the default keeps the
    whole-suite analysis in the tens of seconds so the figures can be
    regenerated quickly.
    """
    def scaled(value: int) -> int:
        return max(4, int(value * scale))

    suite: List[Workload] = []
    # Clusters modelled on Figure 10 (names kept, member counts reduced).
    suite += make_cluster("freeglut-demos", 3, scaled(8), scaled(4), seed + 1)
    suite += make_cluster("coreutils", 8, scaled(16), scaled(5), seed + 2)
    suite += make_cluster("vpx-d", 4, scaled(20), scaled(6), seed + 3)
    suite += make_cluster("vpx-e", 3, scaled(24), scaled(6), seed + 4)
    suite += make_cluster("sphinx2", 4, scaled(22), scaled(8), seed + 5)
    suite += make_cluster("putty", 4, scaled(24), scaled(8), seed + 6)
    # Standalone programs modelled on Figure 7 entries (smallest to largest).
    for name, functions in [
        ("libidn", 10),
        ("zlib", 14),
        ("ogg", 18),
        ("libbz2", 24),
        ("mcf", 8),
        ("bzip2", 16),
        ("sjeng", 22),
        ("hmmer", 30),
    ]:
        # crc32, not hash(): the per-name seed (and therefore the workload's
        # *content*) must not vary with PYTHONHASHSEED across processes --
        # the same latent sensitivity the process backend forced out of the
        # constraint-graph core.
        suite.append(make_workload(name, scaled(functions), seed + zlib.crc32(name.encode()) % 1000))
    return suite


def scaling_suite(
    sizes: Sequence[int] = (6, 12, 25, 50, 100, 200), seed: int = 20160614
) -> List[Workload]:
    """Programs of increasing size for the Figure 11/12 scaling sweeps."""
    return [
        make_workload(f"scale_{n}", n, seed + n)
        for n in sizes
    ]


def generated_suite(
    count: int = 8,
    seed: int = 20160615,
    profile: Optional[object] = None,
    cluster: str = "generated",
) -> List[Workload]:
    """The ``generated`` workload family: profile-driven ground-truth programs.

    Unlike the fixed figure suites above, this family is backed by
    :mod:`repro.gen` -- an effectively unbounded, seed-reproducible source of
    programs with recursive structs, multi-level pointers, handler slots,
    const parameters, deep and mutually-recursive call graphs, dead code and
    polymorphic helpers.  Every workload carries the generator's answer key
    as its ground truth, so the whole evaluation harness (engines, metrics,
    figures) runs over it unchanged.
    """
    from ..gen import GenProfile, generate_corpus

    resolved = profile if profile is not None else GenProfile.default()
    workloads = []
    for program in generate_corpus(count, seed, resolved, name_prefix=f"{cluster}_"):
        compilation = program.compile()
        workloads.append(
            Workload(
                name=program.name,
                cluster=cluster,
                source=program.source,
                compilation=compilation,
            )
        )
    return workloads


def family_suite(
    families: int = 4,
    seed: int = 20160616,
    profile: Optional[object] = None,
    members: int = 4,
    cluster: str = "family",
) -> List[Workload]:
    """The ``family`` workload: toggle-derived program *families*.

    Each family is one :func:`repro.gen.family.generate_family` product line
    -- a base program plus variants differing by declared feature toggles --
    flattened member-by-member.  Members of one family share most procedures
    byte-for-byte, so this is the canonical workload for summary-store reuse
    and incremental-session studies; every member still carries its own
    re-derived answer key, so metrics and figures run over it unchanged.
    Workloads are clustered per family (``family:<name>``), mirroring how
    Figure 10 clusters binaries built from one code base.
    """
    from ..gen import GenProfile
    from ..gen.family import generate_families

    resolved = profile if profile is not None else GenProfile.default()
    workloads = []
    for family in generate_families(
        families, seed, resolved, members=members, name_prefix=f"{cluster}_"
    ):
        for member in family.members:
            workloads.append(
                Workload(
                    name=member.name,
                    cluster=f"{cluster}:{family.name}",
                    source=member.source,
                    compilation=member.program.compile(),
                )
            )
    return workloads
