"""Evaluation metrics: the TIE metrics, pointer accuracy, and const recall.

The paper evaluates with the metric suite introduced by TIE (Lee et al.) plus
SecondWrite's multi-level pointer accuracy and its own const-recall figure:

* **distance** -- a 0..4 lattice distance between the displayed type and the
  ground-truth type (0 = exact, 4 = nothing in common), with the recursive
  treatment of pointers and structures;
* **interval size** -- how wide the gap between the inferred upper and lower
  bound is (0 = pinned exactly, 4 = completely unconstrained);
* **conservativeness** -- whether the inferred type over-approximates the
  ground truth (claims nothing that is false);
* **multi-level pointer accuracy** -- for ground-truth pointers, how many
  levels of pointer structure were recovered;
* **const recall** -- how many pointer parameters declared ``const`` in the
  source were annotated ``const`` by the inference (section 6.4).

Inferred types are compared at function boundaries (parameters and return
values), matched to ground truth by calling-convention location.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.ctype import (
    BoolType,
    CType,
    CodeType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructField,
    StructRef,
    StructType,
    TypedefType,
    UnionType,
    UnknownType,
    VoidType,
)
from ..core.labels import InLabel
from ..core.lattice import BOTTOM, TOP
from ..core.sketches import Sketch
from ..core.variables import DerivedTypeVariable
from ..frontend import FunctionGroundTruth, GroundTruth
from ..pipeline import FunctionTypes, ProgramTypes

MAX_DISTANCE = 4.0


def _resolve(ctype: CType, structs: Mapping[str, StructType]) -> CType:
    """Strip typedefs and resolve struct references against a struct table."""
    seen = 0
    while True:
        if isinstance(ctype, TypedefType):
            ctype = ctype.underlying
        elif isinstance(ctype, StructRef) and ctype.name in structs and seen < 4:
            ctype = structs[ctype.name]
            seen += 1
        else:
            return ctype


def type_distance(
    inferred: Optional[CType],
    truth: CType,
    inferred_structs: Mapping[str, StructType] = {},
    truth_structs: Mapping[str, StructType] = {},
    depth: int = 0,
) -> float:
    """The TIE-style distance between an inferred type and the ground truth."""
    if depth > 4:
        return 0.0
    if inferred is None:
        return MAX_DISTANCE
    a = _resolve(inferred, inferred_structs)
    b = _resolve(truth, truth_structs)

    if isinstance(a, UnionType):
        return min(
            type_distance(member, truth, inferred_structs, truth_structs, depth)
            for member in a.members
        ) + 0.5

    if isinstance(a, UnknownType) or isinstance(a, VoidType):
        # Nothing was claimed: maximal uncertainty but not maximal error.
        return 2.0 if not isinstance(b, (UnknownType, VoidType)) else 0.0

    if isinstance(b, PointerType):
        if isinstance(a, PointerType):
            return 0.5 * type_distance(
                a.pointee, b.pointee, inferred_structs, truth_structs, depth + 1
            )
        if isinstance(a, (StructType, StructRef)):
            return 1.5
        return 2.5  # claimed a scalar where the truth is a pointer

    if isinstance(b, (StructType, StructRef)):
        b_struct = _resolve(b, truth_structs)
        if isinstance(a, (StructType, StructRef)):
            a_struct = _resolve(a, inferred_structs)
            if isinstance(a_struct, StructType) and isinstance(b_struct, StructType):
                return _struct_distance(
                    a_struct, b_struct, inferred_structs, truth_structs, depth
                )
            return 1.0
        if isinstance(a, PointerType):
            return 1.5
        return 2.5

    if isinstance(b, (IntType, BoolType)):
        if isinstance(a, (IntType, BoolType)):
            size_a = a.size_bits or 32
            size_b = b.size_bits or 32
            distance = 0.0
            if size_a != size_b:
                distance += 1.0
            if isinstance(a, IntType) and isinstance(b, IntType) and a.signed != b.signed:
                distance += 0.5
            return distance
        if isinstance(a, FloatType):
            return 2.0
        if isinstance(a, PointerType):
            return 2.5
        return 2.0

    if isinstance(b, FloatType):
        if isinstance(a, FloatType):
            return 0.0 if a.size_bits == b.size_bits else 1.0
        return 2.5

    if isinstance(b, (UnknownType, VoidType)):
        return 0.0 if isinstance(a, (UnknownType, VoidType)) else 1.0

    return 2.0


def _struct_distance(
    a: StructType,
    b: StructType,
    inferred_structs: Mapping[str, StructType],
    truth_structs: Mapping[str, StructType],
    depth: int,
) -> float:
    offsets = {f.offset for f in b.fields}
    if not offsets:
        return 0.0
    total = 0.0
    for field in b.fields:
        match = a.field_at(field.offset)
        if match is None:
            total += 2.0
        else:
            total += type_distance(
                match.ctype, field.ctype, inferred_structs, truth_structs, depth + 1
            )
    return min(MAX_DISTANCE, total / len(b.fields))


def is_conservative(
    inferred: Optional[CType],
    truth: CType,
    inferred_structs: Mapping[str, StructType] = {},
    truth_structs: Mapping[str, StructType] = {},
    depth: int = 0,
) -> bool:
    """Does the inferred type avoid claiming anything false about the truth?"""
    if depth > 4 or inferred is None:
        return True
    a = _resolve(inferred, inferred_structs)
    b = _resolve(truth, truth_structs)

    if isinstance(a, (UnknownType, VoidType)):
        return True
    if isinstance(a, UnionType):
        return any(
            is_conservative(member, truth, inferred_structs, truth_structs, depth)
            for member in a.members
        )

    if isinstance(b, PointerType):
        if isinstance(a, PointerType):
            return is_conservative(
                a.pointee, b.pointee, inferred_structs, truth_structs, depth + 1
            )
        if isinstance(a, (StructType, StructRef)):
            # a pointer to the first member / enclosing object view
            return True
        return False

    if isinstance(b, (StructType, StructRef)):
        b_struct = _resolve(b, truth_structs)
        if isinstance(a, (StructType, StructRef)):
            a_struct = _resolve(a, inferred_structs)
            if not isinstance(a_struct, StructType) or not isinstance(b_struct, StructType):
                return True
            for field in a_struct.fields:
                truth_field = b_struct.field_at(field.offset)
                if truth_field is None:
                    size = b_struct.size_bits or 0
                    if field.offset * 8 < size:
                        return False
                    continue
                if not is_conservative(
                    field.ctype, truth_field.ctype, inferred_structs, truth_structs, depth + 1
                ):
                    return False
            return True
        if isinstance(a, PointerType):
            return False
        # scalar view of a struct: only fine if the struct is word sized
        return (b_struct.size_bits or 32) <= 32 if isinstance(b_struct, StructType) else True

    if isinstance(b, (IntType, BoolType)):
        if isinstance(a, (IntType, BoolType)):
            return (a.size_bits or 32) >= (b.size_bits or 32)
        if isinstance(a, (PointerType, StructType, StructRef)):
            return False
        return True

    return True


def _atom_for_scalar(ctype: CType) -> Optional[str]:
    """Lattice atom naming a ground-truth scalar type (for bound bracketing)."""
    if isinstance(ctype, BoolType):
        return "bool"
    if isinstance(ctype, IntType):
        if ctype.size_bits == 8:
            return "int8" if ctype.signed else "uint8"
        if ctype.size_bits == 16:
            return "int16" if ctype.signed else "uint16"
        if ctype.size_bits == 64:
            return "int64" if ctype.signed else "uint64"
        return "int" if ctype.signed else "uint"
    if isinstance(ctype, FloatType):
        return "float" if ctype.size_bits == 32 else "double"
    return None


def sketch_conservative(
    sketch: Sketch,
    truth: CType,
    truth_structs: Mapping[str, StructType] = {},
    node: Optional[int] = None,
    depth: int = 0,
    visiting: Optional[set] = None,
) -> bool:
    """Conservativeness judged on the inferred *interval* (the sketch), not the
    displayed type.

    A sketch is conservative for a ground-truth type when every capability and
    every lattice bound it asserts is consistent with the truth: asserting
    pointer structure for an integer, a field beyond the real struct, or a
    scalar bound incomparable with the declared scalar makes it
    non-conservative; unconstrained nodes (bounds BOTTOM/TOP, no capabilities)
    are always conservative.
    """
    if visiting is None:
        visiting = set()
    node = sketch.root if node is None else node
    key = (node, str(truth), depth)
    if depth > 5 or key in visiting:
        return True
    visiting.add(key)

    lattice = sketch.lattice
    resolved = _resolve(truth, truth_structs)
    successors = sketch.successors(node)
    data = sketch.node(node)
    load_child = next((t for lab, t in successors.items() if str(lab) == "load"), None)
    store_child = next((t for lab, t in successors.items() if str(lab) == "store"), None)
    field_children = {
        lab: t for lab, t in successors.items() if str(lab).startswith("sigma")
    }

    def bounds_compatible(atom: Optional[str]) -> bool:
        if atom is None or atom not in lattice:
            return True
        for bound in (data.lower, data.upper):
            if bound in (BOTTOM, TOP):
                continue
            if not (lattice.leq(bound, atom) or lattice.leq(atom, bound)):
                return False
        return True

    if isinstance(resolved, PointerType):
        if not bounds_compatible("ptr"):
            return False
        child = load_child if load_child is not None else store_child
        if child is None:
            return True
        return sketch_conservative(
            sketch, resolved.pointee, truth_structs, child, depth + 1, visiting
        )

    if isinstance(resolved, StructType):
        if load_child is not None or store_child is not None:
            # Claiming the struct is a pointer: acceptable only as the
            # pointer-to-first-member view (section 2.4).
            first = resolved.field_at(0)
            if first is None:
                return False
            return sketch_conservative(
                sketch, first.ctype, truth_structs, node, depth + 1, visiting
            )
        size_bits = resolved.size_bits or 32
        for label, child in field_children.items():
            offset = getattr(label, "offset", 0)
            truth_field = resolved.field_at(offset)
            if truth_field is None:
                if offset * 8 < size_bits:
                    return False
                continue
            if not sketch_conservative(
                sketch, truth_field.ctype, truth_structs, child, depth + 1, visiting
            ):
                return False
        return True

    if isinstance(resolved, (IntType, BoolType, FloatType)):
        if load_child is not None or store_child is not None:
            return False
        size_bits = resolved.size_bits or 32
        for label, child in field_children.items():
            # A field view that fits inside the scalar is a view of the cell
            # itself (``sigma8@0`` over a ``char`` cell is exactly the char);
            # fields before the cell, past its end, or wider than it claim
            # something false.  Same-size views recurse with the scalar truth
            # (atom bounds included); narrower views are checked structurally
            # -- claiming pointer capabilities for a slice of a scalar is
            # still false, but the slice's signedness is not knowable, so its
            # atom bounds are not judged.
            offset = getattr(label, "offset", 0)
            field_bits = getattr(label, "size_bits", None) or size_bits
            if offset < 0 or offset * 8 + field_bits > size_bits:
                return False
            if field_bits == size_bits:
                if not sketch_conservative(
                    sketch, resolved, truth_structs, child, depth + 1, visiting
                ):
                    return False
            elif not _scalar_slice_structure_ok(sketch, child, field_bits):
                return False
        return bounds_compatible(_atom_for_scalar(resolved))

    return True


def _scalar_slice_structure_ok(
    sketch: Sketch,
    node: int,
    size_bits: int,
    depth: int = 0,
    visiting: Optional[set] = None,
) -> bool:
    """May ``node`` describe a ``size_bits``-wide slice of a scalar cell?

    True only when the subtree asserts no pointer structure (no load/store
    capability anywhere) and every nested field view stays inside the slice.
    """
    if visiting is None:
        visiting = set()
    if depth > 5 or node in visiting:
        return True
    visiting.add(node)
    for label, child in sketch.successors(node).items():
        text = str(label)
        if text in ("load", "store"):
            return False
        offset = getattr(label, "offset", 0)
        field_bits = getattr(label, "size_bits", None) or size_bits
        if offset < 0 or offset * 8 + field_bits > size_bits:
            return False
        if not _scalar_slice_structure_ok(sketch, child, field_bits, depth + 1, visiting):
            return False
    return True


def pointer_accuracy(
    inferred: Optional[CType],
    truth: CType,
    inferred_structs: Mapping[str, StructType] = {},
    truth_structs: Mapping[str, StructType] = {},
) -> Optional[float]:
    """Multi-level pointer accuracy (ElWazeer et al.); None when truth is not a pointer."""
    truth_resolved = _resolve(truth, truth_structs)
    truth_depth = truth_resolved.pointer_depth()
    if truth_depth == 0:
        return None
    if inferred is None:
        return 0.0
    inferred_depth = _resolve(inferred, inferred_structs).pointer_depth()
    if inferred_depth == 0:
        return 0.0
    if inferred_depth <= truth_depth:
        return inferred_depth / truth_depth
    return truth_depth / inferred_depth


def interval_size_from_sketch(sketch: Optional[Sketch], max_depth: int = 2) -> float:
    """Average width of the [lower, upper] decoration over the sketch's shallow nodes."""
    if sketch is None:
        return MAX_DISTANCE
    lattice = sketch.lattice
    gaps: List[float] = []
    for word, node in sketch.paths(max_depth=max_depth):
        data = sketch.node(node)
        has_structure = bool(sketch.successors(node))
        if has_structure:
            gaps.append(0.5)
            continue
        lower, upper = data.lower, data.upper
        if lower == BOTTOM and upper == TOP:
            gaps.append(MAX_DISTANCE)
        elif lower == BOTTOM or upper == TOP:
            gaps.append(2.0)
        elif lower == upper:
            gaps.append(0.0)
        else:
            gaps.append(1.0)
    return sum(gaps) / len(gaps) if gaps else MAX_DISTANCE


# ---------------------------------------------------------------------------
# Program-level aggregation
# ---------------------------------------------------------------------------


@dataclass
class VariableComparison:
    function: str
    location: str
    truth: CType
    inferred: Optional[CType]
    distance: float
    conservative: bool
    interval: float
    pointer_score: Optional[float]
    const_truth: bool = False
    const_inferred: bool = False


@dataclass
class ProgramMetrics:
    """Aggregated metrics for one program (one binary of the benchmark suite)."""

    name: str
    comparisons: List[VariableComparison] = dc_field(default_factory=list)
    analysis_seconds: float = 0.0
    instructions: int = 0
    cfg_nodes: int = 0
    memory_bytes: int = 0

    @property
    def variable_count(self) -> int:
        return len(self.comparisons)

    @property
    def mean_distance(self) -> float:
        if not self.comparisons:
            return 0.0
        return sum(c.distance for c in self.comparisons) / len(self.comparisons)

    @property
    def mean_interval(self) -> float:
        if not self.comparisons:
            return 0.0
        return sum(c.interval for c in self.comparisons) / len(self.comparisons)

    @property
    def conservativeness(self) -> float:
        if not self.comparisons:
            return 1.0
        return sum(1 for c in self.comparisons if c.conservative) / len(self.comparisons)

    @property
    def pointer_accuracy(self) -> float:
        scores = [c.pointer_score for c in self.comparisons if c.pointer_score is not None]
        return sum(scores) / len(scores) if scores else 1.0

    @property
    def const_recall(self) -> float:
        const_params = [c for c in self.comparisons if c.const_truth]
        if not const_params:
            return 1.0
        return sum(1 for c in const_params if c.const_inferred) / len(const_params)

    def summary(self) -> Dict[str, float]:
        return {
            "distance": self.mean_distance,
            "interval": self.mean_interval,
            "conservativeness": self.conservativeness,
            "pointer_accuracy": self.pointer_accuracy,
            "const_recall": self.const_recall,
            "variables": float(self.variable_count),
        }


def evaluate_program(
    name: str, types: ProgramTypes, truth: GroundTruth
) -> ProgramMetrics:
    """Compare an engine's output against ground truth for one program."""
    metrics = ProgramMetrics(
        name=name,
        analysis_seconds=float(types.stats.get("total_seconds", 0.0)),
        instructions=int(types.stats.get("instructions", 0)),
        cfg_nodes=int(types.stats.get("cfg_nodes", 0)),
    )
    inferred_structs = types.struct_definitions()
    for function_name, function_truth in truth.functions.items():
        if function_name not in types:
            continue
        info = types[function_name]
        metrics.comparisons.extend(
            _compare_function(info, function_truth, inferred_structs, truth.structs)
        )
    return metrics


def _compare_function(
    info: FunctionTypes,
    truth: FunctionGroundTruth,
    inferred_structs: Mapping[str, StructType],
    truth_structs: Mapping[str, StructType],
) -> List[VariableComparison]:
    comparisons: List[VariableComparison] = []
    location_to_index = {loc: i for i, loc in enumerate(info.param_locations)}

    for index, (location, truth_type) in enumerate(truth.params):
        inferred_type: Optional[CType] = None
        sketch = None
        if location in location_to_index:
            inferred_type = info.function_type.params[location_to_index[location]]
            dtv = DerivedTypeVariable(info.name, (InLabel(location),))
            sketch = info.result.formal_in_sketches.get(dtv)
        const_truth = truth.param_const[index] if index < len(truth.param_const) else False
        const_inferred = isinstance(inferred_type, PointerType) and inferred_type.const
        if sketch is not None:
            conservative = sketch_conservative(sketch, truth_type, truth_structs)
        else:
            conservative = is_conservative(
                inferred_type, truth_type, inferred_structs, truth_structs
            )
        comparisons.append(
            VariableComparison(
                function=info.name,
                location=location,
                truth=truth_type,
                inferred=inferred_type,
                distance=type_distance(inferred_type, truth_type, inferred_structs, truth_structs),
                conservative=conservative,
                interval=interval_size_from_sketch(sketch),
                pointer_score=pointer_accuracy(
                    inferred_type, truth_type, inferred_structs, truth_structs
                ),
                const_truth=const_truth,
                const_inferred=const_inferred,
            )
        )

    if truth.return_type is not None:
        inferred_return = info.return_type
        out_sketch = None
        if info.result.formal_out_sketches:
            out_sketch = next(iter(info.result.formal_out_sketches.values()))
        if out_sketch is not None:
            return_conservative = sketch_conservative(
                out_sketch, truth.return_type, truth_structs
            )
        else:
            return_conservative = is_conservative(
                inferred_return, truth.return_type, inferred_structs, truth_structs
            )
        comparisons.append(
            VariableComparison(
                function=info.name,
                location="return",
                truth=truth.return_type,
                inferred=inferred_return,
                distance=type_distance(
                    inferred_return, truth.return_type, inferred_structs, truth_structs
                ),
                conservative=return_conservative,
                interval=interval_size_from_sketch(out_sketch),
                pointer_score=pointer_accuracy(
                    inferred_return, truth.return_type, inferred_structs, truth_structs
                ),
            )
        )
    return comparisons


def aggregate(metrics: Sequence[ProgramMetrics]) -> Dict[str, float]:
    """Unweighted average of program-level summaries (the paper's cluster averaging)."""
    if not metrics:
        return {}
    keys = ["distance", "interval", "conservativeness", "pointer_accuracy", "const_recall"]
    result: Dict[str, float] = {}
    for key in keys:
        result[key] = sum(m.summary()[key] for m in metrics) / len(metrics)
    result["programs"] = float(len(metrics))
    result["variables"] = float(sum(m.variable_count for m in metrics))
    return result
