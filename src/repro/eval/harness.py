"""The evaluation harness: run engines over benchmark suites and build the
tables behind Figures 8, 9 and 10.

The paper's aggregation has one twist that is reproduced here: programs that
belong to a *cluster* (coreutils, vpx, ...) share most of their code, so each
cluster contributes a single averaged data point to the overall numbers rather
than one point per binary (section 6.2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..baselines import ALL_ENGINES, TypeInferenceEngine
from ..service import AnalysisService, analyze_corpus
from .metrics import ProgramMetrics, aggregate, evaluate_program
from .workloads import Workload


@dataclass
class EngineReport:
    """Results of one engine over one suite."""

    engine: str
    per_program: Dict[str, ProgramMetrics] = dc_field(default_factory=dict)
    clusters: Dict[str, List[str]] = dc_field(default_factory=dict)
    #: corpus-level cache/wave statistics when the suite ran through the batch
    #: service API (a :class:`repro.service.CorpusReport`), else None.
    batch: Optional[object] = None

    # -- aggregation ---------------------------------------------------------------

    def cluster_summary(self, cluster: str) -> Dict[str, float]:
        members = [self.per_program[name] for name in self.clusters.get(cluster, [])]
        return aggregate(members)

    def overall(self, clustered: bool = True) -> Dict[str, float]:
        """Suite-wide averages; ``clustered`` reproduces the paper's averaging."""
        if not clustered:
            return aggregate(list(self.per_program.values()))
        points: List[Dict[str, float]] = []
        for cluster, members in self.clusters.items():
            metrics = [self.per_program[name] for name in members]
            if len(members) > 1:
                points.append(aggregate(metrics))
            else:
                points.extend(m.summary() for m in metrics)
        if not points:
            return {}
        keys = ["distance", "interval", "conservativeness", "pointer_accuracy", "const_recall"]
        return {key: sum(p[key] for p in points) / len(points) for key in keys}

    def subset(self, clusters: Iterable[str]) -> Dict[str, float]:
        """Average over a subset of clusters (e.g. just coreutils, just SPEC-like)."""
        wanted = set(clusters)
        metrics: List[ProgramMetrics] = []
        for cluster, members in self.clusters.items():
            if cluster in wanted:
                metrics.extend(self.per_program[name] for name in members)
        return aggregate(metrics)


def run_engine(
    engine: TypeInferenceEngine, workloads: Sequence[Workload]
) -> EngineReport:
    """Analyze every workload with one engine and score it against ground truth."""
    report = EngineReport(engine=engine.name)
    for workload in workloads:
        types = engine.analyze(workload.program)
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        report.per_program[workload.name] = metrics
        report.clusters.setdefault(workload.cluster, []).append(workload.name)
    return report


def run_suite_batched(
    workloads: Sequence[Workload], service: Optional[AnalysisService] = None
) -> EngineReport:
    """Run the Retypd engine over a suite through the batch service API.

    All workloads are analyzed against one shared summary store, so cluster
    members that statically link the same library code reuse each other's SCC
    summaries; the per-program cache statistics land in the report's
    ``batch`` attribute (a :class:`repro.service.CorpusReport`).  The inferred
    types -- and therefore every metric -- are identical to the unbatched
    :func:`run_engine` path.
    """
    corpus = analyze_corpus(
        ((workload.name, workload.program) for workload in workloads), service=service
    )
    report = EngineReport(engine="retypd")
    for workload in workloads:
        types = corpus[workload.name].types
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        report.per_program[workload.name] = metrics
        report.clusters.setdefault(workload.cluster, []).append(workload.name)
    report.batch = corpus
    return report


def compare_engines(
    workloads: Sequence[Workload],
    engine_names: Sequence[str] = ("retypd", "unification", "tie", "propagation"),
    service: Optional[AnalysisService] = None,
) -> Dict[str, EngineReport]:
    """Run several engines over the same suite.

    When ``service`` is given, the Retypd engine runs through the batched
    corpus API against that service's shared summary store (the baselines
    have no summary notion and always run unbatched).
    """
    reports: Dict[str, EngineReport] = {}
    for name in engine_names:
        if name == "retypd" and service is not None:
            reports[name] = run_suite_batched(workloads, service=service)
            continue
        engine = ALL_ENGINES[name]()
        reports[name] = run_engine(engine, workloads)
    return reports


# ---------------------------------------------------------------------------
# Figure-shaped tables
# ---------------------------------------------------------------------------


def figure8_rows(reports: Mapping[str, EngineReport]) -> List[Dict[str, object]]:
    """Distance to ground truth and interval size per engine (Figure 8)."""
    rows = []
    for name, report in reports.items():
        overall = report.overall()
        coreutils = report.subset(["coreutils"])
        rows.append(
            {
                "engine": name,
                "coreutils_distance": coreutils.get("distance"),
                "coreutils_interval": coreutils.get("interval"),
                "overall_distance": overall.get("distance"),
                "overall_interval": overall.get("interval"),
            }
        )
    return rows


def figure9_rows(reports: Mapping[str, EngineReport]) -> List[Dict[str, object]]:
    """Conservativeness and pointer accuracy per engine (Figure 9)."""
    rows = []
    for name, report in reports.items():
        overall = report.overall()
        coreutils = report.subset(["coreutils"])
        rows.append(
            {
                "engine": name,
                "coreutils_conservativeness": coreutils.get("conservativeness"),
                "overall_conservativeness": overall.get("conservativeness"),
                "overall_pointer_accuracy": overall.get("pointer_accuracy"),
            }
        )
    return rows


def figure10_rows(report: EngineReport, workloads: Sequence[Workload]) -> List[Dict[str, object]]:
    """Per-cluster metrics for the Retypd engine (Figure 10)."""
    sizes: Dict[str, int] = defaultdict(int)
    counts: Dict[str, int] = defaultdict(int)
    for workload in workloads:
        sizes[workload.cluster] += workload.instructions
        counts[workload.cluster] += 1
    rows = []
    for cluster in sorted(report.clusters):
        summary = report.cluster_summary(cluster)
        rows.append(
            {
                "cluster": cluster,
                "count": counts[cluster],
                "instructions": sizes[cluster],
                "distance": summary.get("distance"),
                "interval": summary.get("interval"),
                "conservativeness": summary.get("conservativeness"),
                "pointer_accuracy": summary.get("pointer_accuracy"),
                "const_recall": summary.get("const_recall"),
            }
        )
    overall_clustered = report.overall(clustered=True)
    overall_unclustered = report.overall(clustered=False)
    rows.append({"cluster": "OVERALL (clustered)", **overall_clustered})
    rows.append({"cluster": "OVERALL (unclustered)", **overall_unclustered})
    return rows


def format_rows(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no data)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append([_format_cell(row.get(column)) for column in columns])
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    ]
    return "\n".join([header, separator] + body)


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
