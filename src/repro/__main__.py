"""One-shot command line interface: ``python -m repro analyze <file.s> [--json]``.

Analyzes a single program without a server round trip and prints either the
human-readable signatures or the full JSON payload.  The JSON output is built
by the same :func:`repro.server.protocol.program_payload` the type-query
server uses, so dumps produced here are byte-compatible with what a server
returns for the same source -- a saved ``--json`` file *is* a valid ``query``
result.

``python -m repro gen ...`` drives the ground-truth program generator: emit
a seeded corpus to disk (``--out``) and/or run the differential oracle sweep
across executor backends and cache states (``--oracle``); see ``repro.gen``.

``python -m repro serve ...`` is a convenience alias for
``python -m repro.server ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence


def _infer_kind(path: str, kind: str) -> str:
    if kind != "auto":
        return kind
    return "c" if path.endswith(".c") else "asm"


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_analyze(args: argparse.Namespace) -> int:
    from .server import protocol
    from .server.registry import ProgramRegistry
    from .service.incremental import AnalysisService, ServiceConfig
    from .service.store import environment_fingerprint

    source = _read_source(args.path)
    kind = _infer_kind(args.path, args.kind)
    service = AnalysisService(
        ServiceConfig(use_cache=False, executor=args.backend)
    )
    tracer = None
    if args.trace_out:
        from .obs import Tracer, tracing

        tracer = Tracer()
    try:
        if kind == "c":
            from .frontend import compile_c

            program = compile_c(source).program
        else:
            from .ir.asmparser import parse_program

            program = parse_program(source)
        if tracer is not None:
            with tracing(tracer):
                types = service.analyze(program)
        else:
            types = service.analyze(program)
    except Exception as exc:
        print(f"error: {kind} analysis of {args.path} failed: {exc}", file=sys.stderr)
        return 1
    finally:
        service.close()

    if tracer is not None:
        # Extension picks the format: .jsonl -> the line-delimited span log,
        # anything else -> Chrome trace-event JSON (Perfetto-loadable).
        if args.trace_out.endswith(".jsonl"):
            tracer.export_jsonl(args.trace_out)
        else:
            tracer.export_chrome(args.trace_out)
        print(
            f"trace: {len(tracer.spans())} spans -> {args.trace_out}", file=sys.stderr
        )

    if args.procedure is not None and args.procedure not in types.functions:
        known = ", ".join(sorted(types.functions)) or "<none>"
        print(
            f"error: no procedure {args.procedure!r} (known: {known})", file=sys.stderr
        )
        return 1

    # The same environment-qualified content hash a default-configured server
    # would assign, so ids in saved dumps resolve against a live daemon.
    environment = environment_fingerprint(
        service.lattice, service.extern_table, service.config.solver
    )
    program_id = ProgramRegistry.make_id(kind, source, environment)
    if args.json:
        if args.procedure is not None:
            payload = protocol.procedure_payload(types, program_id, args.procedure)
        else:
            payload = protocol.program_payload(types, program_id)
        json.dump(payload, sys.stdout, indent=2, sort_keys=True, default=str)
        print()
    elif args.procedure is not None:
        print(types.signature(args.procedure))
        for name, struct in sorted(types.procedure_structs(args.procedure).items()):
            print(f"{struct};")
    else:
        print(types.report())
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    from .gen import (
        generate_corpus,
        generate_family,
        named_profiles,
        run_oracle,
        write_corpus,
    )

    profiles = named_profiles()
    profile = profiles[args.profile]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]

    status = 0
    corpus = None
    if args.out:
        if args.families > 0:
            # Family mode writes every member (variants included), so the
            # emitted corpus is the exact program set a family sweep checks.
            corpus = [
                member.program
                for index in range(args.families)
                for member in generate_family(
                    args.seed + index,
                    profile,
                    members=args.members,
                    name=f"fam{args.seed}_{index}",
                ).members
            ]
        else:
            corpus = generate_corpus(args.count, args.seed, profile)
        manifest = write_corpus(
            corpus,
            args.out,
            seed=args.seed,
            profile_name=args.profile,
            members=args.members if args.families > 0 else 0,
        )
        total = sum(len(program.functions) for program in corpus)
        print(
            f"wrote {len(corpus)} programs ({total} functions) to {args.out} "
            f"(manifest: {manifest})"
        )
        if args.families > 0:
            corpus = None  # family members are not the independent-mode corpus
    if args.oracle:
        def progress(done: int, total: int) -> None:
            if done % 50 == 0 or done == total:
                print(f"  ... {done}/{total} programs checked", file=sys.stderr)

        report = run_oracle(
            count=args.count,
            seed=args.seed,
            profile=profile,
            profile_name=args.profile,
            backends=backends,
            derives_samples=args.derives_samples,
            min_conservativeness=args.min_conservativeness,
            progress=progress if not args.quiet else None,
            corpus=corpus,
            families=args.families,
            family_members=args.members,
            minimize_dir=args.minimize_out if args.minimize else None,
        )
        print(report.summary())
        status = 0 if report.ok else 1
    if not args.out and not args.oracle:
        for program in generate_corpus(args.count, args.seed, profile):
            print(
                f"{program.name}: seed {program.seed}, "
                f"{len(program.functions)} functions "
                f"({len(program.dead_functions)} dead), "
                f"{len(program.source.splitlines())} lines"
            )
        print("(use --out DIR to write sources+answer keys, --oracle to verify)")
    return status


def cmd_serve(args: argparse.Namespace) -> int:
    from .server.__main__ import main as serve_main

    return serve_main(args.server_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Retypd reproduction: machine-code type inference.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="analyze one assembly (.s) or mini-C (.c) file and print its types"
    )
    analyze.add_argument("path", help="input file, or '-' for stdin")
    analyze.add_argument(
        "--kind",
        choices=["auto", "asm", "c"],
        default="auto",
        help="source language (default: by extension, .c -> mini-C, else asm)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the full JSON payload (server-protocol encoding) instead of signatures",
    )
    analyze.add_argument(
        "--procedure", default=None, help="restrict output to one procedure"
    )
    analyze.add_argument(
        "--backend",
        choices=["serial", "threads", "processes", "auto"],
        default=None,
        help="wave executor for the solve (default: serial)",
    )
    analyze.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export a span trace of the analysis: .jsonl writes the span log, "
        "any other extension writes Chrome trace-event JSON (Perfetto)",
    )
    analyze.set_defaults(func=cmd_analyze)

    gen = sub.add_parser(
        "gen",
        help="generate ground-truth mini-C corpora and run the differential oracle",
    )
    gen.add_argument("--count", type=int, default=10, help="number of programs")
    gen.add_argument("--seed", type=int, default=20160613, help="corpus seed")
    gen.add_argument(
        "--profile",
        choices=["smoke", "default", "stress"],
        default="default",
        help="feature-mix preset (see repro.gen.GenProfile)",
    )
    gen.add_argument("--out", default=None, help="emit .c sources + answer keys here")
    gen.add_argument(
        "--oracle",
        action="store_true",
        help="run the differential oracle sweep (exit 1 on any mismatch)",
    )
    gen.add_argument(
        "--backends",
        default="serial,threads,processes,auto",
        help="comma-separated executor backends for the oracle sweep",
    )
    gen.add_argument(
        "--derives-samples",
        type=int,
        default=1,
        help="constraint sets per program checked against the seed oracles (0 disables)",
    )
    gen.add_argument(
        "--min-conservativeness",
        type=float,
        default=0.85,
        help="per-program conservativeness floor for the oracle",
    )
    gen.add_argument(
        "--families",
        type=int,
        default=0,
        help="additionally sweep this many toggle-derived variant families "
        "(store reuse + incremental-session equivalence checks; see "
        "repro.gen.family)",
    )
    gen.add_argument(
        "--members",
        type=int,
        default=4,
        help="members per family, base included (with --families)",
    )
    gen.add_argument(
        "--minimize",
        action="store_true",
        help="ddmin any oracle failure and emit a pytest reproducer "
        "(see repro.gen.minimize)",
    )
    gen.add_argument(
        "--minimize-out",
        default="tests/regress",
        metavar="DIR",
        help="directory for emitted reproducers (default: tests/regress)",
    )
    gen.add_argument("--quiet", action="store_true", help="suppress progress output")
    gen.set_defaults(func=cmd_gen)

    serve = sub.add_parser(
        "serve", help="run the type-query server (alias for python -m repro.server)"
    )
    serve.add_argument("server_args", nargs=argparse.REMAINDER, help="arguments for repro.server")
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
