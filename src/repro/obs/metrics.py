"""Thread-safe metrics: counters, gauges, fixed-bucket latency histograms.

One :class:`MetricsRegistry` holds every instrument, keyed by metric name plus
a sorted label set (``server_requests_total{verb="analyze"}``).  The process
default is :data:`NULL_REGISTRY` -- every instrument lookup returns one shared
no-op object, so the instrumentation seams baked into the server, store,
registry and procpool cost almost nothing until :func:`install_default` (or
:func:`set_registry`) swaps in a real registry.  The server does exactly that
on construction, which is what feeds its ``metrics`` verb (JSON snapshot or
Prometheus text exposition; see ``docs/protocol.md`` and
``docs/observability.md``).

Histograms use fixed bucket upper bounds (default: latency-shaped, 1ms..10s)
and estimate quantiles by walking the cumulative counts to the containing
bucket, then interpolating linearly inside it -- the observed min and max
bound the open-ended edge buckets, so estimates never leave the observed
range.  That gives p50/p95/p99 with bounded error and O(buckets) memory,
which is what the SLO work needs from ``BENCH_server.json``.

:meth:`MetricsRegistry.record_stage_stats` folds the solver's existing
:class:`~repro.core.solver.SolveStats` record into the registry
(``solver_stage_seconds_total{stage=...}`` and friends) so the per-stage
telemetry keeps flowing through its existing call sites while also appearing
in the unified snapshot.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: stamped into snapshots; bump on layout change.
METRICS_FORMAT = "repro-metrics-v1"

#: default histogram bucket upper bounds, in seconds: latency-shaped,
#: log-ish spaced from 1ms to 10s (an implicit +inf bucket catches the rest).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, in-flight count)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket distribution with interpolated quantile estimation.

    ``buckets`` are the finite upper bounds; an implicit +inf bucket catches
    everything above the last bound.  ``observe`` is O(buckets) worst case
    (linear scan -- bucket lists are short and the scan beats bisect overhead
    at this size); memory is O(buckets) regardless of observation count.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing and non-empty")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); ``None`` when empty.

        Walks cumulative bucket counts to the containing bucket and
        interpolates linearly within it.  The first bucket's lower edge is the
        observed min (not 0) and the +inf bucket's upper edge is the observed
        max, so the estimate is always within ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            if self._min == self._max:
                # Degenerate distributions -- a single sample, or many equal
                # ones: the quantile IS the observed value.  Short-circuit
                # before bucket walking so no interpolation can ever invent a
                # value outside what was observed.
                return self._min
            target = q * self._count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    # Bucket edges, clamped to the observed range so estimates
                    # for sparse/edge buckets stay honest.
                    lo = self.bounds[i - 1] if i > 0 else self._min
                    hi = self.bounds[i] if i < len(self.bounds) else self._max
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return lo
                    fraction = (target - cumulative) / bucket_count
                    return lo + (hi - lo) * fraction
                cumulative += bucket_count
            return self._max  # pragma: no cover - unreachable (target <= count)

    def percentiles(self) -> Dict[str, Optional[float]]:
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95), "p99": self.quantile(0.99)}

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        snap = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "buckets": [
                {"le": bound, "count": counts[i]} for i, bound in enumerate(self.bounds)
            ] + [{"le": "+inf", "count": counts[-1]}],
        }
        snap.update(self.percentiles())
        return snap


class _NullInstrument:
    """Shared stand-in for every instrument when metrics are disabled."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def percentiles(self) -> Dict[str, None]:
        return {"p50": None, "p95": None, "p99": None}

    def snapshot(self) -> Dict[str, object]:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()

LabelPairs = Tuple[Tuple[str, str], ...]


def _key(name: str, labels: Mapping[str, object]) -> Tuple[str, LabelPairs]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create instrument store with JSON and Prometheus views."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}

    def _get(self, factory, name: str, labels: Mapping[str, object]):
        key = _key(name, labels)
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = self._metrics[key] = factory()
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        instrument = self._get(Counter, name, labels)
        if not isinstance(instrument, Counter):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        instrument = self._get(Gauge, name, labels)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: object
    ) -> Histogram:
        instrument = self._get(lambda: Histogram(buckets), name, labels)
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def record_stage_stats(self, stage_stats: Mapping[str, object]) -> None:
        """Fold one :meth:`SolveStats.to_json` record into the registry.

        Stage seconds land in ``solver_stage_seconds_total{stage=...}``; the
        SCC and failure tallies in ``solver_sccs_solved_total`` /
        ``solver_worker_failed_total``.  Additive, so per-request records
        accumulate into process-lifetime totals.
        """
        for stage in ("graph", "saturate", "simplify", "sketch", "codec"):
            seconds = float(stage_stats.get(f"{stage}_seconds", 0.0) or 0.0)
            if seconds:
                self.counter("solver_stage_seconds_total", stage=stage).inc(seconds)
        sccs = int(stage_stats.get("sccs_timed", 0) or 0)
        if sccs:
            self.counter("solver_sccs_solved_total").inc(sccs)
        failed = int(stage_stats.get("worker_failed", 0) or 0)
        if failed:
            self.counter("solver_worker_failed_total").inc(failed)

    def snapshot(self) -> Dict[str, object]:
        """Every instrument, keyed by its rendered name, sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            "format": METRICS_FORMAT,
            "metrics": {
                _render_key(name, labels): instrument.snapshot()
                for (name, labels), instrument in items
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters/gauges/histogram series)."""
        with self._lock:
            items = sorted(self._metrics.items())
        types_emitted = set()
        lines: List[str] = []
        for (name, labels), instrument in items:
            if isinstance(instrument, Histogram):
                if name not in types_emitted:
                    lines.append(f"# TYPE {name} histogram")
                    types_emitted.add(name)
                snap = instrument.snapshot()
                cumulative = 0
                for bucket in snap["buckets"]:
                    cumulative += bucket["count"]
                    le = bucket["le"] if bucket["le"] != "+inf" else "+Inf"
                    pairs = labels + (("le", str(le)),)
                    lines.append(f"{_render_key(name + '_bucket', pairs)} {cumulative}")
                lines.append(f"{_render_key(name + '_sum', labels)} {snap['sum']}")
                lines.append(f"{_render_key(name + '_count', labels)} {snap['count']}")
            else:
                kind = "counter" if isinstance(instrument, Counter) else "gauge"
                if name not in types_emitted:
                    lines.append(f"# TYPE {name} {kind}")
                    types_emitted.add(name)
                lines.append(f"{_render_key(name, labels)} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullRegistry:
    """The default registry: every instrument is one shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: object
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def record_stage_stats(self, stage_stats: Mapping[str, object]) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"format": METRICS_FORMAT, "metrics": {}}

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()

_registry: object = NULL_REGISTRY


def get_registry():
    """The process-wide registry (default: :data:`NULL_REGISTRY`, a no-op)."""
    return _registry


def set_registry(registry) -> object:
    """Install ``registry`` (``None`` restores the null registry); returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous


def install_default() -> MetricsRegistry:
    """Ensure the process default is a real registry and return it.

    Idempotent: a real registry already installed is kept (servers sharing a
    process share one registry -- snapshots are process-wide, so tests assert
    deltas, not absolute counts).
    """
    global _registry
    if not getattr(_registry, "enabled", False):
        _registry = MetricsRegistry()
    return _registry
