"""Structured span tracing: nested, attributed, exportable, stitchable.

One :class:`Tracer` collects **spans** -- named intervals with monotonic
durations, wall-clock anchors and key/value attributes -- from every layer of
the pipeline: per-function constraint generation (``typegen.constraints``),
per-SCC solving and its stages (``solver.solve_scc``, ``solver.graph``,
``solver.saturate``, ``solver.simplify``, ``solver.sketch``), the service
drivers (``service.analyze``, ``service.constraint_gen``, ``service.solve``,
``service.invalidate``), wave dispatch (``scheduler.wave``) and the server's
request verbs (``server.<verb>``).  The full span-name table lives in
``docs/observability.md`` and ``docs/paper-map.md``.

Design constraints, in order:

* **near-zero disabled overhead** -- the process default is :data:`NULL_TRACER`,
  whose ``span()`` returns one shared no-op context manager; instrumentation
  seams stay in the hot core but cost two attribute lookups and an empty
  enter/exit when tracing is off (gated <2% on the suite workload by
  ``benchmarks/bench_simplification.py::test_noop_obs_overhead_gate``);
* **correct nesting under concurrency** -- each thread has its own span stack,
  so wave-parallel SCC solves nest under their own wave span, never a
  sibling's.  Event-loop code (the server) uses detached spans
  (:meth:`Tracer.start_span`/:meth:`Tracer.finish`) because interleaved
  coroutines share one thread and must not share a stack;
* **cross-boundary stitching** -- :meth:`Tracer.current_context` captures the
  active span as a small JSON-able dict; :meth:`Tracer.attach` re-parents a
  worker thread under it, and worker *processes* build their own tracer from
  the context shipped through the procpool codec and return finished spans for
  :meth:`Tracer.adopt` to merge, so one exported trace covers the whole fleet.

Exports: :meth:`Tracer.export_jsonl` (one span per line, self-describing
header) and :meth:`Tracer.chrome_trace`/:meth:`Tracer.export_chrome` -- the
Chrome trace-event JSON array format, loadable in Perfetto or
``chrome://tracing`` (``python -m repro analyze prog.c --trace-out
trace.json`` end to end).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: stamped into JSONL headers and adopted-span payloads; bump on layout change.
TRACE_FORMAT = "repro-trace-v1"


class Span:
    """One open interval; finished spans are stored as plain dicts."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "start", "duration", "pid", "tid", "attrs", "_t0")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        trace_id: str,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.attrs = attrs
        # Wall clock anchors the span on a timeline comparable across
        # processes; the monotonic clock measures the duration (immune to
        # clock steps).
        self.start = time.time()
        self._t0 = time.perf_counter()
        self.duration = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attrs[key] = value

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "ts": self.start,
            "dur": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }


class _SpanHandle:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self.span)
        return False


class _RemoteParent:
    """A stack frame standing in for a span that lives elsewhere.

    Pushed by :meth:`Tracer.attach` so spans opened on this thread parent
    under a span owned by another thread, coroutine or process.  Never
    recorded itself.
    """

    __slots__ = ("span_id",)

    def __init__(self, span_id: str) -> None:
        self.span_id = span_id


class _AttachHandle:
    __slots__ = ("_tracer", "_context", "_frame")

    def __init__(self, tracer: "Tracer", context: Optional[Mapping[str, object]]) -> None:
        self._tracer = tracer
        self._context = context
        self._frame: Optional[_RemoteParent] = None

    def __enter__(self) -> None:
        if self._context and self._context.get("span_id"):
            self._frame = _RemoteParent(str(self._context["span_id"]))
            self._tracer._stack().append(self._frame)
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._frame is not None:
            stack = self._tracer._stack()
            if stack and stack[-1] is self._frame:
                stack.pop()
            else:  # pragma: no cover - unbalanced unwind
                try:
                    stack.remove(self._frame)
                except ValueError:
                    pass
        return False


class Tracer:
    """Thread-safe span collector with per-thread nesting stacks."""

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._lock = threading.Lock()
        self._finished: List[Dict[str, object]] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- span lifecycle --------------------------------------------------------

    def _stack(self) -> List[object]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        """``with tracer.span("solver.saturate", scc="f,g") as span: ...``"""
        return _SpanHandle(self, name, attrs)

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=f"{os.getpid():x}.{next(self._ids):x}",
            parent_id=parent_id,
            trace_id=self.trace_id,
            attrs=attrs,
        )
        stack.append(span)
        return span

    def start_span(
        self, name: str, parent_id: Optional[str] = None, **attrs: object
    ) -> Span:
        """A *detached* span: recorded on :meth:`finish`, never stacked.

        For event-loop code where interleaved coroutines share one thread: a
        detached span cannot accidentally become the parent of an unrelated
        request's spans.  Pass its ``span_id`` (via :meth:`attach` or the
        procpool codec) to parent work done elsewhere under it.
        """
        return Span(
            name=name,
            span_id=f"{os.getpid():x}.{next(self._ids):x}",
            parent_id=parent_id,
            trace_id=self.trace_id,
            attrs=dict(attrs),
        )

    def finish(self, span: Span) -> None:
        """Close a span (stacked or detached) and record it."""
        span.duration = time.perf_counter() - span._t0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced unwind
            stack.remove(span)
        with self._lock:
            self._finished.append(span.to_json())

    # -- cross-thread / cross-process stitching --------------------------------

    def current_context(self) -> Optional[Dict[str, object]]:
        """The active span as a JSON-able parenting context (or ``None``)."""
        stack = self._stack()
        if not stack:
            return None
        return {"format": TRACE_FORMAT, "trace_id": self.trace_id, "span_id": stack[-1].span_id}

    def context_for(self, span: Span) -> Dict[str, object]:
        """A parenting context for one specific (e.g. detached) span."""
        return {"format": TRACE_FORMAT, "trace_id": self.trace_id, "span_id": span.span_id}

    def attach(self, context: Optional[Mapping[str, object]]) -> _AttachHandle:
        """Parent spans opened on *this* thread under a foreign span.

        ``context`` is what :meth:`current_context`/:meth:`context_for`
        produced (possibly on another thread or in another process); ``None``
        attaches nothing and costs nothing.
        """
        return _AttachHandle(self, context)

    def adopt(self, spans: Iterable[Mapping[str, object]]) -> int:
        """Merge finished spans recorded by another tracer (e.g. a worker).

        Span/parent ids are preserved verbatim -- worker-side ids embed the
        worker's pid, so they cannot collide with parent-side ids -- which is
        what stitches a worker's ``procpool.solve_scc`` spans under the
        service's ``scheduler.wave`` span in the exported trace.
        """
        rows = [dict(span) for span in spans]
        with self._lock:
            self._finished.extend(rows)
        return len(rows)

    # -- inspection / export ---------------------------------------------------

    def spans(self) -> List[Dict[str, object]]:
        """All finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def export_jsonl(self, path: str) -> str:
        """One self-describing header line, then one span JSON object per line."""
        rows = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            header = {"format": TRACE_FORMAT, "trace_id": self.trace_id, "spans": len(rows)}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        return path

    def chrome_trace(self) -> Dict[str, object]:
        """The trace as Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

        Complete ``"X"`` events on the real pid/tid tracks, timestamps in
        microseconds relative to the earliest span, plus ``process_name``
        metadata distinguishing the driver process from procpool workers.
        ``args`` carries the span/parent ids and all attributes, so the
        parent-child structure survives even across pid tracks.
        """
        rows = self.spans()
        origin = min((row["ts"] for row in rows), default=0.0)
        own_pid = os.getpid()
        events: List[Dict[str, object]] = []
        pids = set()
        for row in sorted(rows, key=lambda r: (r["ts"], r["dur"])):
            pids.add(row["pid"])
            args = dict(row["attrs"])
            args["span_id"] = row["span_id"]
            if row["parent_id"]:
                args["parent_id"] = row["parent_id"]
            events.append(
                {
                    "name": row["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": (row["ts"] - origin) * 1e6,
                    "dur": row["dur"] * 1e6,
                    "pid": row["pid"],
                    "tid": row["tid"],
                    "args": args,
                }
            )
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro" if pid == own_pid else f"repro-worker-{pid}"},
            }
            for pid in sorted(pids)
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"format": TRACE_FORMAT, "trace_id": self.trace_id},
        }

    def export_chrome(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True, default=str)
        return path


def load_jsonl(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Read a file written by :meth:`Tracer.export_jsonl`: (header, spans)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} JSONL trace")
    return header, [json.loads(line) for line in lines[1:]]


# ---------------------------------------------------------------------------
# The disabled path: one shared no-op of everything
# ---------------------------------------------------------------------------


class _NullSpan:
    __slots__ = ()
    span_id = None

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The default tracer: every operation is a shared no-op."""

    enabled = False
    trace_id = None

    def span(self, name: str, **attrs: object) -> _NullHandle:
        return _NULL_HANDLE

    def start_span(self, name: str, parent_id: Optional[str] = None, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span: object) -> None:
        pass

    def attach(self, context: Optional[Mapping[str, object]]) -> _NullHandle:
        return _NULL_HANDLE

    def current_context(self) -> None:
        return None

    def context_for(self, span: object) -> None:
        return None

    def adopt(self, spans: Iterable[Mapping[str, object]]) -> int:
        return 0

    def spans(self) -> List[Dict[str, object]]:
        return []


NULL_TRACER = NullTracer()

_tracer: object = NULL_TRACER


def get_tracer():
    """The process-wide tracer (default: :data:`NULL_TRACER`, a no-op)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install ``tracer`` (``None`` restores the null tracer); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


class _TracingScope:
    """``with tracing() as tracer: ...`` -- install, run, restore."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer or Tracer()

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False


def tracing(tracer: Optional[Tracer] = None) -> _TracingScope:
    """Enable tracing for a scope and restore the previous tracer after."""
    return _TracingScope(tracer)
