"""Observability: structured span tracing + process-wide metrics registry.

Two stdlib-only pillars (see ``docs/observability.md``):

* :mod:`repro.obs.trace` -- nested spans across solver stages, service waves,
  procpool workers (stitched through the JSON codec) and server verbs, with
  JSONL and Chrome trace-event exports;
* :mod:`repro.obs.metrics` -- thread-safe counters/gauges/histograms with
  p50/p95/p99 estimation, exposed by the server's ``metrics`` verb.

Both default to shared no-op singletons so the disabled path stays near free.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    get_registry,
    install_default,
    set_registry,
)
from repro.obs.trace import (
    TRACE_FORMAT,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    load_jsonl,
    set_tracer,
    tracing,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_FORMAT",
    "TRACE_FORMAT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "install_default",
    "load_jsonl",
    "set_registry",
    "set_tracer",
    "tracing",
]
