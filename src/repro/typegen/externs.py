"""Type schemes for well-known external (library) functions.

Pre-computed type schemes for externally linked functions are inserted during
the bottom-up constraint generation phase (section 4.2, Appendix A.4).  Many of
them are genuinely polymorphic (section 2.2): ``malloc`` returns a pointer of
*some* type, ``free`` accepts a pointer of any type, ``memcpy`` relates its two
pointer arguments.  Encoding them as schemes -- rather than as fixed C
signatures -- is exactly what lets Retypd type user-defined allocator wrappers
without per-callsite special cases.

Semantic tags such as ``#FileDescriptor`` and ``#SuccessZ`` are seeded here and
propagate through the program during inference (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.constraints import ConstraintSet, parse_constraint
from ..core.lattice import TypeLattice, default_lattice
from ..core.schemes import TypeScheme
from ..core.variables import DerivedTypeVariable
from ..core.labels import InLabel, OutLabel


@dataclass
class ExternSignature:
    """Calling-convention facts plus the type scheme of a library function."""

    name: str
    stack_params: int = 0
    has_return: bool = True
    variadic: bool = False
    constraints: Tuple[str, ...] = ()
    quantified: Tuple[str, ...] = ()

    @property
    def input_locations(self) -> List[str]:
        return [f"stack{4 * j}" for j in range(self.stack_params)]

    def scheme(self) -> TypeScheme:
        constraint_set = ConstraintSet()
        for text in self.constraints:
            constraint_set.add(parse_constraint(text))
        formal_ins = tuple(
            DerivedTypeVariable(self.name, (InLabel(loc),)) for loc in self.input_locations
        )
        formal_outs = (
            (DerivedTypeVariable(self.name, (OutLabel("eax"),)),) if self.has_return else ()
        )
        return TypeScheme(
            proc=self.name,
            constraints=constraint_set,
            quantified=frozenset(self.quantified),
            formal_ins=formal_ins,
            formal_outs=formal_outs,
        )


def _sig(
    name: str,
    stack_params: int,
    has_return: bool = True,
    constraints: Sequence[str] = (),
    quantified: Sequence[str] = (),
    variadic: bool = False,
) -> ExternSignature:
    return ExternSignature(
        name=name,
        stack_params=stack_params,
        has_return=has_return,
        variadic=variadic,
        constraints=tuple(constraints),
        quantified=tuple(quantified),
    )


#: The standard library modelled by the reproduction.  Constraints are written
#: in the textual constraint syntax over the function's own derived variables.
STANDARD_EXTERNS: Dict[str, ExternSignature] = {
    sig.name: sig
    for sig in [
        # -- allocation: polymorphic (section 2.2) --------------------------------
        _sig("malloc", 1, constraints=["malloc.in_stack0 <= size_t"]),
        _sig("calloc", 2, constraints=["calloc.in_stack0 <= size_t", "calloc.in_stack4 <= size_t"]),
        _sig(
            "realloc",
            2,
            constraints=["realloc.in_stack4 <= size_t", "realloc.in_stack0 <= realloc.out_eax"],
        ),
        _sig("free", 1, has_return=False, constraints=[]),
        # -- memory/string ----------------------------------------------------------
        _sig(
            "memcpy",
            3,
            constraints=[
                # What can be loaded from the source can be stored to the
                # destination; no claim is made about the element type itself.
                "memcpy.in_stack4.load <= memcpy.in_stack0.store",
                "memcpy.in_stack8 <= size_t",
                "memcpy.in_stack0 <= memcpy.out_eax",
            ],
        ),
        _sig(
            "memset",
            3,
            constraints=[
                "memset.in_stack0.store <= TOP",
                "memset.in_stack4 <= int",
                "memset.in_stack8 <= size_t",
                "memset.in_stack0 <= memset.out_eax",
            ],
        ),
        _sig(
            "strlen",
            1,
            constraints=["strlen.in_stack0.load.sigma8@0 <= char", "size_t <= strlen.out_eax"],
        ),
        _sig(
            "strcpy",
            2,
            constraints=[
                "strcpy.in_stack4.load.sigma8@0 <= char",
                "char <= strcpy.in_stack0.store.sigma8@0",
                "strcpy.in_stack0 <= strcpy.out_eax",
            ],
        ),
        _sig(
            "strcmp",
            2,
            constraints=[
                "strcmp.in_stack0.load.sigma8@0 <= char",
                "strcmp.in_stack4.load.sigma8@0 <= char",
                "int <= strcmp.out_eax",
            ],
        ),
        _sig(
            "strdup",
            1,
            constraints=[
                "strdup.in_stack0.load.sigma8@0 <= char",
                "char <= strdup.out_eax.load.sigma8@0",
            ],
        ),
        # -- stdio -------------------------------------------------------------------
        _sig(
            "fopen",
            2,
            constraints=[
                "fopen.in_stack0.load.sigma8@0 <= char",
                "fopen.in_stack4.load.sigma8@0 <= char",
                "FILE <= fopen.out_eax.load.sigma32@0",
            ],
        ),
        _sig(
            "fclose",
            1,
            constraints=[
                "fclose.in_stack0.load.sigma32@0 <= FILE",
                "int <= fclose.out_eax",
                "#SuccessZ <= fclose.out_eax",
            ],
        ),
        _sig(
            "fread",
            4,
            constraints=[
                "fread.in_stack0.store <= TOP",
                "fread.in_stack4 <= size_t",
                "fread.in_stack8 <= size_t",
                "fread.in_stack12.load.sigma32@0 <= FILE",
                "size_t <= fread.out_eax",
            ],
        ),
        _sig(
            "fwrite",
            4,
            constraints=[
                "fwrite.in_stack0.load <= TOP",
                "fwrite.in_stack4 <= size_t",
                "fwrite.in_stack8 <= size_t",
                "fwrite.in_stack12.load.sigma32@0 <= FILE",
                "size_t <= fwrite.out_eax",
            ],
        ),
        _sig(
            "printf",
            1,
            variadic=True,
            constraints=["printf.in_stack0.load.sigma8@0 <= char", "int <= printf.out_eax"],
        ),
        _sig(
            "puts",
            1,
            constraints=["puts.in_stack0.load.sigma8@0 <= char", "int <= puts.out_eax"],
        ),
        # -- POSIX file descriptors (the Figure 2 tags) ----------------------------------
        _sig(
            "open",
            2,
            constraints=[
                "open.in_stack0.load.sigma8@0 <= char",
                "open.in_stack4 <= int",
                "int <= open.out_eax",
                "#FileDescriptor <= open.out_eax",
            ],
        ),
        _sig(
            "close",
            1,
            constraints=[
                "close.in_stack0 <= int",
                "close.in_stack0 <= #FileDescriptor",
                "int <= close.out_eax",
                "#SuccessZ <= close.out_eax",
            ],
        ),
        _sig(
            "read",
            3,
            constraints=[
                "read.in_stack0 <= int",
                "read.in_stack0 <= #FileDescriptor",
                "read.in_stack4.store <= TOP",
                "read.in_stack8 <= size_t",
                "ssize_t <= read.out_eax",
            ],
        ),
        _sig(
            "write",
            3,
            constraints=[
                "write.in_stack0 <= int",
                "write.in_stack0 <= #FileDescriptor",
                "write.in_stack4.load <= TOP",
                "write.in_stack8 <= size_t",
                "ssize_t <= write.out_eax",
            ],
        ),
        _sig(
            "signal",
            2,
            constraints=[
                "signal.in_stack0 <= int",
                "signal.in_stack0 <= #signal-number",
            ],
        ),
        _sig(
            "socket",
            3,
            constraints=[
                "socket.in_stack0 <= int",
                "socket.in_stack4 <= int",
                "socket.in_stack8 <= int",
                "SOCKET <= socket.out_eax",
            ],
        ),
        _sig("exit", 1, has_return=False, constraints=["exit.in_stack0 <= int"]),
        _sig("abort", 0, has_return=False),
        _sig(
            "atoi",
            1,
            constraints=["atoi.in_stack0.load.sigma8@0 <= char", "int <= atoi.out_eax"],
        ),
        _sig("rand", 0, constraints=["int <= rand.out_eax"]),
    ]
}


def standard_externs() -> Dict[str, ExternSignature]:
    """A fresh copy of the standard extern table (callers may extend it)."""
    return dict(STANDARD_EXTERNS)


def extern_schemes(
    externs: Optional[Dict[str, ExternSignature]] = None,
) -> Dict[str, TypeScheme]:
    """Type schemes for the solver, keyed by function name."""
    table = externs if externs is not None else STANDARD_EXTERNS
    return {name: signature.scheme() for name, signature in table.items()}


def ensure_lattice_tags(lattice: TypeLattice) -> TypeLattice:
    """Make sure every tag used by the extern schemes exists in the lattice."""
    for tag, parent in [
        ("#FileDescriptor", "int"),
        ("#SuccessZ", "int"),
        ("#signal-number", "int"),
        ("FILE", None),
        ("size_t", "uint"),
        ("ssize_t", "int"),
        ("SOCKET", "uint"),
    ]:
        if tag not in lattice:
            lattice.add_element(tag, [parent] if parent else [])
    return lattice
