"""Constraint generation from the machine-code IR (the Appendix A abstract interpreter)."""

from .externs import (
    STANDARD_EXTERNS,
    ExternSignature,
    ensure_lattice_tags,
    extern_schemes,
    standard_externs,
)
from .abstract_interp import (
    CalleeInfo,
    ProcedureConstraintGenerator,
    callee_table,
    generate_procedure_constraints,
    generate_program_constraints,
)

__all__ = [
    "CalleeInfo",
    "ExternSignature",
    "ProcedureConstraintGenerator",
    "STANDARD_EXTERNS",
    "callee_table",
    "ensure_lattice_tags",
    "extern_schemes",
    "generate_procedure_constraints",
    "generate_program_constraints",
    "standard_externs",
]
