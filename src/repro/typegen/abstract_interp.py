"""Constraint generation by abstract interpretation of the IR (Appendix A).

For every procedure the generator walks the instructions once and emits type
constraints over derived type variables:

* every *definition site* of a register or stack slot gets its own type
  variable (flow sensitivity via reaching definitions, Example A.2);
* value copies produce subtype constraints (``Y <= X`` for ``x := y``);
* loads and stores through registers produce ``.load.sigmaN@k`` /
  ``.store.sigmaN@k`` constraints (Appendix A.3); no points-to analysis is
  required beyond resolving stack-frame and global addresses;
* ``lea`` and constant add/sub are tracked as *pointer offset aliases* so that
  field accesses through moved pointers land on the right offset;
* calls instantiate the callee's formal variables under a callsite-unique base
  name (let-polymorphism, Appendix A.4) and record a
  :class:`~repro.core.solver.Callsite` for the solver;
* ``xor reg, reg`` and flag-only computations generate no constraints
  (the semi-syntactic constant and bit-twiddling rules of sections 2.1/A.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.constraints import AddConstraint, ConstraintSet, SubConstraint
from ..core.labels import FieldLabel, InLabel, Label, LoadLabel, OutLabel, StoreLabel
from ..core.solver import Callsite, ProcedureTypingInput
from ..core.variables import DerivedTypeVariable
from ..obs.trace import get_tracer
from ..ir.dataflow import ENTRY, Location, ReachingDefinitions, analyze_reaching_definitions
from ..ir.instructions import (
    WORD_SIZE,
    BinaryOp,
    Call,
    Compare,
    Imm,
    Instruction,
    Jcc,
    Jmp,
    LabelPseudo,
    Lea,
    Leave,
    Mem,
    Mov,
    Nop,
    Operand,
    Pop,
    Push,
    Reg,
    Ret,
    is_zeroing_idiom,
)
from ..ir.locators import ProcedureInterface, discover_interface
from ..ir.program import Procedure, Program
from ..ir.stackanalysis import argument_location, frame_offset, is_argument_offset
from .externs import ExternSignature, standard_externs

LOAD = LoadLabel()
STORE = StoreLabel()

#: Bit-stealing masks treated as identity operations (Appendix A.5.2).
_BITSTEAL_AND_MASKS = {0xFFFFFFFC, 0xFFFFFFF8, ~3 & 0xFFFFFFFF, -4, -8}
_BITSTEAL_OR_MASKS = {1, 2, 3}

#: Maximum distance (bytes) between an address-taken local and a direct access
#: that we still attribute to the same stack object (a crude data delineation).
_MAX_OBJECT_EXTENT = 64


@dataclass
class CalleeInfo:
    """What the constraint generator needs to know about a call target."""

    name: str
    stack_params: int = 0
    register_params: Tuple[str, ...] = ()
    has_return: bool = True
    known: bool = False

    @property
    def input_locations(self) -> List[str]:
        locations = [f"stack{WORD_SIZE * j}" for j in range(self.stack_params)]
        locations.extend(self.register_params)
        return locations


def callee_table(
    program: Program,
    interfaces: Mapping[str, ProcedureInterface],
    externs: Mapping[str, ExternSignature],
) -> Dict[str, CalleeInfo]:
    """Combine internal interfaces and extern signatures into one lookup table."""
    table: Dict[str, CalleeInfo] = {}
    for name, interface in interfaces.items():
        table[name] = CalleeInfo(
            name=name,
            stack_params=len(interface.stack_args),
            register_params=tuple(interface.register_args),
            has_return=interface.has_return,
            known=True,
        )
    for name, signature in externs.items():
        if name not in table:
            table[name] = CalleeInfo(
                name=name,
                stack_params=signature.stack_params,
                register_params=(),
                has_return=signature.has_return,
                known=True,
            )
    return table


class ProcedureConstraintGenerator:
    """Generates the constraint set for a single procedure."""

    def __init__(
        self,
        procedure: Procedure,
        interface: ProcedureInterface,
        callees: Mapping[str, CalleeInfo],
        reaching: Optional[ReachingDefinitions] = None,
    ) -> None:
        self.procedure = procedure
        self.interface = interface
        self.callees = callees
        self.reaching = reaching or analyze_reaching_definitions(procedure)
        self.constraints = ConstraintSet()
        self.callsites: List[Callsite] = []
        self._phi_cache: Dict[Tuple[int, Location], DerivedTypeVariable] = {}
        self._aliases: Dict[DerivedTypeVariable, Tuple[DerivedTypeVariable, int]] = {}
        self._frame_aliases: Dict[DerivedTypeVariable, int] = {}
        self._address_taken: Set[int] = set()
        self._fresh = 0

    # -- type variable naming ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.procedure.name

    def _location_name(self, location: Location) -> str:
        if isinstance(location, int):
            return f"stk{location}"
        return location

    def formal_in(self, location_name: str) -> DerivedTypeVariable:
        return DerivedTypeVariable(self.name, (InLabel(location_name),))

    def formal_out(self) -> DerivedTypeVariable:
        return DerivedTypeVariable(self.name, (OutLabel("eax"),))

    def def_var(self, location: Location, index: int) -> DerivedTypeVariable:
        """Type variable for the definition of ``location`` at instruction ``index``."""
        if index == ENTRY:
            if isinstance(location, int) and is_argument_offset(location):
                loc_name = argument_location(location)
                if location in self.interface.stack_args:
                    return self.formal_in(loc_name)
                return DerivedTypeVariable(f"{self.name}~arg_{loc_name}")
            if isinstance(location, str) and location in self.interface.register_args:
                return self.formal_in(location)
            return DerivedTypeVariable(f"{self.name}~{self._location_name(location)}@entry")
        return DerivedTypeVariable(f"{self.name}~{self._location_name(location)}@{index}")

    def use_var(self, location: Location, index: int) -> DerivedTypeVariable:
        """Type variable for a use of ``location`` at instruction ``index``.

        Single reaching definition: the definition's variable.  Multiple
        reaching definitions: a join variable with one constraint per
        definition (Example A.2 -- this is what defeats the "fortuitous reuse"
        and stack-slot-reuse unification problems of section 2.1).
        """
        defs = sorted(self.reaching.reaching(index, location))
        if len(defs) == 1:
            return self.def_var(location, defs[0])
        key = (index, location)
        if key not in self._phi_cache:
            var = DerivedTypeVariable(
                f"{self.name}~phi_{self._location_name(location)}@{index}"
            )
            self._phi_cache[key] = var
            for definition in defs:
                self.constraints.add_subtype(self.def_var(location, definition), var)
        return self._phi_cache[key]

    def fresh(self, hint: str = "t") -> DerivedTypeVariable:
        self._fresh += 1
        return DerivedTypeVariable(f"{self.name}~{hint}{self._fresh}")

    def global_var(self, symbol: str, offset: int = 0) -> DerivedTypeVariable:
        suffix = f"_{offset}" if offset else ""
        return DerivedTypeVariable(f"g_{symbol}{suffix}")

    def object_var(self, offset: int) -> DerivedTypeVariable:
        """Pointer-valued variable for the address of an address-taken local."""
        return DerivedTypeVariable(f"{self.name}~addr{offset}")

    # -- alias resolution ------------------------------------------------------------------

    def _resolve_alias(
        self, var: DerivedTypeVariable
    ) -> Tuple[Optional[DerivedTypeVariable], int, Optional[int]]:
        """Chase pointer-offset aliases.

        Returns ``(base_var, delta, frame_offset)``: either ``base_var`` (with a
        byte ``delta``) or ``frame_offset`` (address of a stack object) is set.
        """
        delta = 0
        seen = set()
        current = var
        while current in self._aliases and current not in seen:
            seen.add(current)
            current, step = self._aliases[current]
            delta += step
        if current in self._frame_aliases:
            return None, delta, self._frame_aliases[current] + delta
        return current, delta, None

    # -- memory access helpers ----------------------------------------------------------------

    def _object_base(self, offset: int) -> Optional[int]:
        """The address-taken object (if any) a direct slot access belongs to."""
        candidates = [
            taken
            for taken in self._address_taken
            if taken <= offset < taken + _MAX_OBJECT_EXTENT
        ]
        return max(candidates) if candidates else None

    def load_source(self, memory: Mem, index: int) -> Optional[DerivedTypeVariable]:
        """The derived type variable whose value a memory *read* produces."""
        state = self.reaching.state(index)
        offset = frame_offset(memory, state)
        if offset is not None:
            value = self.use_var(offset, index)
            base = self._object_base(offset)
            if base is not None:
                field = FieldLabel(memory.size * 8, offset - base)
                self.constraints.add_subtype(
                    self.object_var(base).with_labels((LOAD, field)), value
                )
            return value
        if memory.is_global:
            return self.global_var(memory.base, memory.offset)
        if memory.base is None or memory.index is not None and memory.base is None:
            return None
        pointer = self.use_var(memory.base, index)
        base_var, delta, frame = self._resolve_alias(pointer)
        if frame is not None:
            # Reading through a pointer into our own frame: use the slot value.
            slot = frame + memory.offset
            return self.use_var(slot, index)
        field = FieldLabel(memory.size * 8, memory.offset + delta)
        return base_var.with_labels((LOAD, field))

    def store_target(self, memory: Mem, index: int) -> Optional[DerivedTypeVariable]:
        """The derived type variable a memory *write* flows into."""
        state = self.reaching.state(index)
        offset = frame_offset(memory, state)
        if offset is not None:
            target = self.def_var(offset, index)
            base = self._object_base(offset)
            if base is not None:
                field = FieldLabel(memory.size * 8, offset - base)
                self.constraints.add_subtype(
                    target, self.object_var(base).with_labels((STORE, field))
                )
            return target
        if memory.is_global:
            return self.global_var(memory.base, memory.offset)
        if memory.base is None:
            return None
        pointer = self.use_var(memory.base, index)
        base_var, delta, frame = self._resolve_alias(pointer)
        if frame is not None:
            slot = frame + memory.offset
            return self.def_var(slot, index)
        field = FieldLabel(memory.size * 8, memory.offset + delta)
        return base_var.with_labels((STORE, field))

    # -- main generation loop ------------------------------------------------------------------

    def generate(self) -> ProcedureTypingInput:
        self._collect_address_taken()
        for index, instruction in enumerate(self.procedure.instructions):
            self._visit(index, instruction)
        formal_ins = tuple(
            self.formal_in(location) for location in self.interface.input_locations
        )
        formal_outs = (self.formal_out(),) if self.interface.has_return else ()
        return ProcedureTypingInput(
            name=self.name,
            constraints=self.constraints,
            formal_ins=formal_ins,
            formal_outs=formal_outs,
            callsites=tuple(self.callsites),
        )

    def _collect_address_taken(self) -> None:
        for index, instruction in enumerate(self.procedure.instructions):
            if isinstance(instruction, Lea):
                offset = frame_offset(instruction.src, self.reaching.state(index))
                if offset is not None:
                    self._address_taken.add(offset)

    def _visit(self, index: int, instruction: Instruction) -> None:
        if isinstance(instruction, (LabelPseudo, Nop, Jmp, Jcc, Compare, Leave)):
            return
        if isinstance(instruction, Mov):
            self._visit_mov(index, instruction)
        elif isinstance(instruction, Lea):
            self._visit_lea(index, instruction)
        elif isinstance(instruction, BinaryOp):
            self._visit_binop(index, instruction)
        elif isinstance(instruction, Push):
            self._visit_push(index, instruction)
        elif isinstance(instruction, Pop):
            self._visit_pop(index, instruction)
        elif isinstance(instruction, Call):
            self._visit_call(index, instruction)
        elif isinstance(instruction, Ret):
            self._visit_ret(index, instruction)

    # -- individual instruction kinds ----------------------------------------------------------

    def _value_of(self, operand: Operand, index: int) -> Optional[DerivedTypeVariable]:
        if isinstance(operand, Reg):
            if operand.name in ("esp", "ebp"):
                return None
            return self.use_var(operand.name, index)
        if isinstance(operand, Mem):
            return self.load_source(operand, index)
        return None  # immediates carry no type information

    def _visit_mov(self, index: int, instruction: Mov) -> None:
        if isinstance(instruction.dst, Reg):
            if instruction.dst.name in ("esp", "ebp"):
                return
            destination = self.def_var(instruction.dst.name, index)
            source = self._value_of(instruction.src, index)
            if source is not None:
                self.constraints.add_subtype(source, destination)
                # A register copy propagates pointer-offset aliases.
                if isinstance(instruction.src, Reg):
                    base_var, delta, frame = self._resolve_alias(source)
                    if frame is not None:
                        self._frame_aliases[destination] = frame
                    elif delta and base_var is not None:
                        self._aliases[destination] = (base_var, delta)
        elif isinstance(instruction.dst, Mem):
            target = self.store_target(instruction.dst, index)
            source = self._value_of(instruction.src, index)
            if target is not None and source is not None:
                self.constraints.add_subtype(source, target)

    def _visit_lea(self, index: int, instruction: Lea) -> None:
        destination = self.def_var(instruction.dst.name, index)
        offset = frame_offset(instruction.src, self.reaching.state(index))
        if offset is not None:
            # The register now holds the address of a stack object.
            self._frame_aliases[destination] = offset
            pointer = self.object_var(offset)
            self.constraints.add_subtype(pointer, destination)
            self.constraints.add_subtype(destination, pointer)
            return
        if instruction.src.base is not None and instruction.src.base not in ("esp", "ebp"):
            if instruction.src.is_global:
                base = self.global_var(instruction.src.base)
                self.constraints.add_subtype(base, destination)
                return
            base = self.use_var(instruction.src.base, index)
            resolved, delta, frame = self._resolve_alias(base)
            if frame is not None:
                self._frame_aliases[destination] = frame + instruction.src.offset
            elif resolved is not None:
                self._aliases[destination] = (resolved, delta + instruction.src.offset)

    def _visit_binop(self, index: int, instruction: BinaryOp) -> None:
        register = instruction.dst.name
        if register in ("esp", "ebp"):
            return
        destination = self.def_var(register, index)
        if is_zeroing_idiom(instruction):
            return  # a semi-syntactic constant (section 2.1)
        source_use = self.use_var(register, index)

        if instruction.op in ("add", "sub") and isinstance(instruction.src, Imm):
            sign = 1 if instruction.op == "add" else -1
            base_var, delta, frame = self._resolve_alias(source_use)
            if frame is not None:
                self._frame_aliases[destination] = frame + sign * instruction.src.value
            elif base_var is not None:
                self._aliases[destination] = (base_var, delta + sign * instruction.src.value)
            return

        if instruction.op in ("add", "sub") and isinstance(instruction.src, Reg):
            other = self.use_var(instruction.src.name, index)
            constraint_cls = AddConstraint if instruction.op == "add" else SubConstraint
            self.constraints.add(constraint_cls(source_use, other, destination))
            return

        if instruction.op == "and" and isinstance(instruction.src, Imm):
            if instruction.src.value in _BITSTEAL_AND_MASKS:
                self.constraints.add_subtype(source_use, destination)
                return
        if instruction.op == "or" and isinstance(instruction.src, Imm):
            if instruction.src.value in _BITSTEAL_OR_MASKS:
                self.constraints.add_subtype(source_use, destination)
                return

        # Remaining bit manipulation / multiplication: integral result.
        self.constraints.add_subtype(destination, DerivedTypeVariable("int"))

    def _visit_push(self, index: int, instruction: Push) -> None:
        state = self.reaching.state(index)
        if state.esp is None:
            return
        slot = state.esp - WORD_SIZE
        destination = self.def_var(slot, index)
        source = self._value_of(instruction.src, index)
        if source is not None:
            self.constraints.add_subtype(source, destination)

    def _visit_pop(self, index: int, instruction: Pop) -> None:
        if instruction.dst.name in ("esp", "ebp"):
            return
        state = self.reaching.state(index)
        if state.esp is None:
            return
        slot = state.esp
        destination = self.def_var(instruction.dst.name, index)
        source = self.use_var(slot, index)
        self.constraints.add_subtype(source, destination)

    def _visit_call(self, index: int, instruction: Call) -> None:
        if isinstance(instruction.target, Reg):
            return  # indirect call: no interface information
        callee = instruction.target
        info = self.callees.get(callee, CalleeInfo(name=callee, known=False))
        base = f"{callee}${self.name}_{index}"
        state = self.reaching.state(index)

        if info.stack_params and state.esp is not None:
            for position in range(info.stack_params):
                slot = state.esp + WORD_SIZE * position
                actual = self.use_var(slot, index)
                formal = DerivedTypeVariable(base, (InLabel(f"stack{WORD_SIZE * position}"),))
                self.constraints.add_subtype(actual, formal)
        for register in info.register_params:
            actual = self.use_var(register, index)
            formal = DerivedTypeVariable(base, (InLabel(register),))
            self.constraints.add_subtype(actual, formal)
        if info.has_return:
            result = DerivedTypeVariable(base, (OutLabel("eax"),))
            self.constraints.add_subtype(result, self.def_var("eax", index))
        self.callsites.append(Callsite(callee=callee, base=base))

    def _visit_ret(self, index: int, instruction: Ret) -> None:
        if not self.interface.has_return:
            return
        defs = self.reaching.reaching(index, "eax")
        if all(definition == ENTRY for definition in defs):
            return
        self.constraints.add_subtype(self.use_var("eax", index), self.formal_out())


def generate_procedure_constraints(
    procedure: Procedure,
    interfaces: Mapping[str, ProcedureInterface],
    callees: Mapping[str, CalleeInfo],
) -> ProcedureTypingInput:
    generator = ProcedureConstraintGenerator(
        procedure, interfaces[procedure.name], callees
    )
    return generator.generate()


def generate_program_constraints(
    program: Program,
    externs: Optional[Mapping[str, ExternSignature]] = None,
) -> Dict[str, ProcedureTypingInput]:
    """Generate constraints for every procedure of a program (Algorithm F.1's CONSTRAINTS)."""
    externs = externs if externs is not None else standard_externs()
    interfaces = {
        name: discover_interface(procedure) for name, procedure in program.procedures.items()
    }
    callees = callee_table(program, interfaces, externs)
    tracer = get_tracer()
    results: Dict[str, ProcedureTypingInput] = {}
    for name, procedure in program.procedures.items():
        with tracer.span("typegen.constraints", function=name) as span:
            generator = ProcedureConstraintGenerator(procedure, interfaces[name], callees)
            results[name] = generator.generate()
            span.set("constraints", len(results[name].constraints))
    return results
