"""The type-query daemon: an asyncio front door over the analysis service.

One process hosts one :class:`~repro.service.AnalysisService` (and therefore
one shared summary store, optionally disk-backed) plus one
:class:`~repro.server.registry.ProgramRegistry` of finished analyses.  Many
clients connect over TCP and speak the newline-delimited JSON protocol of
:mod:`repro.server.protocol`:

``analyze``
    submit assembly text or mini-C source; the program is analyzed (or served
    straight from the registry when the content hash is known) and its id
    returned for later queries.
``query``
    look up an analyzed program: the whole-program payload, or one procedure's
    signature / type scheme / formal sketches / struct layout.
``corpus``
    submit a batch of programs routed through :func:`repro.analyze_corpus`
    against the shared store, so cluster members reuse each other's SCC
    summaries; every member becomes queryable.
``session.open`` / ``session.edit`` / ``session.close``
    drive an :class:`~repro.service.IncrementalSession` over the wire: an edit
    re-solves only the invalidation cone and reports it.

Concurrency model: the event loop only parses, dispatches and serializes.
All solving runs on a thread pool, admission to which is bounded by a global
gate (``max_concurrency`` running, at most ``max_pending`` queued).  Admission
control is queue-depth aware: beyond the static cap, the gate sheds with a
typed ``overloaded`` error whenever the *estimated* queue wait (queue depth
times a service-time EWMA, floored by the age of the oldest running job)
exceeds ``max_queue_wait_seconds`` -- so under overload a request is refused
immediately instead of queueing toward an unbounded p99.  Identical
concurrent ``analyze`` submissions are single-flight coalesced: one leader
solves, followers share its result (``server_coalesced_total``).  Per
connection, requests are handled strictly in order and each response is
drained before the next request is read, so one slow client gets
backpressure instead of an unbounded output buffer.
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import logging
import os
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .. import __version__
from ..obs.metrics import install_default
from ..obs.trace import get_tracer
from ..service.incremental import AnalysisService, IncrementalSession, ServiceConfig
from ..service.store import environment_fingerprint
from . import protocol
from .protocol import ErrorCode, ProtocolError
from .registry import ProgramRegistry

logger = logging.getLogger("repro.server")

#: the current request's root-span context, carried from the event loop to
#: executor threads.  A contextvar (not a thread-local stack): interleaved
#: coroutines share the loop thread, so stack discipline cannot hold there.
_REQUEST_SPAN: "contextvars.ContextVar[Optional[Dict[str, object]]]" = contextvars.ContextVar(
    "repro_request_span", default=None
)


@dataclass
class ServerConfig:
    """Everything tunable about one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8791
    #: directory for the summary store's persistent disk tier (None = memory only).
    store_dir: Optional[str] = None
    #: ``host:port`` of a fleet shared-store daemon; selects the socket-served
    #: store backend instead of the disk tier (wins over ``store_dir``).
    store_addr: Optional[str] = None
    #: this server's index in a fleet (None when standalone); surfaced by the
    #: ``health`` verb so routers and operators can tell shards apart.
    shard_id: Optional[int] = None
    #: in-memory LRU capacity of the summary store.
    cache_capacity: int = 4096
    #: how many analyzed programs the registry keeps hot.
    registry_capacity: int = 128
    #: analyses running at once (thread-pool width and gate size).
    max_concurrency: int = 4
    #: analyses allowed to queue on the gate before ``overloaded`` replies.
    max_pending: int = 64
    #: estimated queue wait (seconds) beyond which the gate sheds new work
    #: with ``overloaded`` even before ``max_pending`` fills -- the knob that
    #: keeps p99 bounded under overload.  ``None`` disables the estimate and
    #: falls back to the static ``max_pending`` cap alone.
    max_queue_wait_seconds: Optional[float] = 30.0
    #: per-request line cap; longer lines get a ``too_large`` error.
    max_request_bytes: int = protocol.MAX_LINE_BYTES
    #: legacy spelling of ``backend="threads"``; ignored when ``backend`` set.
    parallel_waves: bool = False
    #: wave executor strategy for each analysis: ``"serial"`` | ``"threads"``
    #: | ``"processes"`` | ``"auto"``.  ``"processes"`` is what actually
    #: scales with cores -- request handling stays on the thread pool, but
    #: the CPU-heavy per-SCC solving escapes the GIL onto worker processes
    #: (see docs/operations.md for choosing).  ``None`` derives from
    #: ``parallel_waves``.
    backend: Optional[str] = None
    #: worker count for the wave backend (``None``: min(8, cpus)).
    backend_workers: Optional[int] = None
    #: open incremental sessions allowed at once (a disconnected client's
    #: sessions stay reclaimable only via this bound).
    max_sessions: int = 64
    #: honour the ``shutdown`` verb (off by default; tests and CI enable it).
    allow_shutdown: bool = False


class _Session:
    """One open incremental session and the lock serializing its edits."""

    def __init__(self, session: IncrementalSession) -> None:
        self.session = session
        self.lock = asyncio.Lock()
        self.program_id: Optional[str] = None
        self.edits = 0


class TypeQueryServer:
    """The asyncio daemon.  Construct, ``await start()``, then serve."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[AnalysisService] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.service = service or AnalysisService(
            ServiceConfig(
                use_cache=True,
                cache_capacity=self.config.cache_capacity,
                cache_dir=self.config.store_dir,
                store_addr=self.config.store_addr,
                parallel=self.config.parallel_waves,
                executor=self.config.backend,
                max_workers=self.config.backend_workers,
            )
        )
        if self.service.store is None:
            raise ValueError("the type-query server requires a service with a summary store")
        self.registry = ProgramRegistry(self.config.registry_capacity)
        self._environment = environment_fingerprint(
            self.service.lattice, self.service.extern_table, self.service.config.solver
        )
        self._sessions: Dict[str, _Session] = {}
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency, thread_name_prefix="repro-analyze"
        )
        self._gate: Optional[asyncio.Semaphore] = None  # loop-bound; made in start()
        self._pending = 0
        self._running = 0
        #: EWMA of successful gated-job service times; failures are excluded
        #: because they return fast and would drag the estimate optimistic.
        self._service_ewma = 0.0
        #: job token -> monotonic start time of jobs holding a gate slot; the
        #: oldest age floors the service estimate so a stalled gate looks
        #: expensive even before anything completes.
        self._running_started: Dict[int, float] = {}
        self._job_ids = itertools.count(1)
        self.coalesced_total = 0
        self.shed_total = 0
        # The daemon is the long-lived owner of observability: ensure the
        # process default is a real registry so every layer's counters land
        # where the ``metrics`` verb can serve them.
        self.metrics = install_default()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._started = 0.0
        self._stopping: Optional[asyncio.Event] = None
        self.requests_served = 0
        self.errors_returned = 0
        self.connections_accepted = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port) -- port 0 resolves."""
        self._gate = asyncio.Semaphore(self.config.max_concurrency)
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_request_bytes,
        )
        self._started = time.monotonic()
        sockname = self._server.sockets[0].getsockname()
        host, port = sockname[0], sockname[1]
        logger.info("type-query server listening on %s:%d", host, port)
        return host, port

    async def serve_forever(self) -> None:
        """Serve until :meth:`aclose` (or an allowed ``shutdown`` verb) fires."""
        assert self._server is not None and self._stopping is not None
        try:
            await self._stopping.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        if self._stopping is not None:
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain live connection handlers so teardown never logs stray
        # cancellations (handlers treat cancellation as an orderly hangup).
        tasks = [task for task in self._conn_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        # Release the service's worker processes (no-op for serial/threads).
        self.service.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peer = writer.get_extra_info("peername")
        logger.debug("connection from %s", peer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line overran the StreamReader limit; framing is lost,
                    # so answer once and hang up.
                    self.errors_returned += 1
                    writer.write(
                        protocol.encode(
                            protocol.make_error(
                                None,
                                ErrorCode.TOO_LARGE,
                                f"request line exceeds {self.config.max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(protocol.encode(response))
                # Backpressure: never read the next request while this
                # client's socket buffer is still full of the last answer.
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown while this connection was open: hang up quietly
            # (completing, not re-raising, keeps the task out of the logs).
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                # CancelledError here means the server was torn down while the
                # transport was draining; completing quietly is the goal.
                pass
            logger.debug("connection from %s closed", peer)

    async def _respond(self, line: bytes) -> Dict[str, object]:
        request_id: Optional[int] = None
        op = "unknown"
        tracer = get_tracer()
        span = None
        token = None
        start = time.perf_counter()
        try:
            message = protocol.decode_line(line)
            # Salvage the correlation id before validation so even version /
            # shape errors reach the right caller.
            candidate = message.get("id")
            if isinstance(candidate, (int, str)):
                request_id = candidate
            op, params, request_id = protocol.validate_request(message)
            # One *detached* root span per request: interleaved coroutines
            # share this thread, so the span must not enter the nesting stack.
            # Its context rides the contextvar so executor-side work (and
            # procpool workers beyond) parent under it.
            span = tracer.start_span(f"server.{op}")
            token = _REQUEST_SPAN.set(tracer.context_for(span))
            result = await self._dispatch(op, params)
            self.requests_served += 1
            self.metrics.counter("server_requests_total", verb=op).inc()
            self.metrics.histogram("server_request_seconds", verb=op).observe(
                time.perf_counter() - start
            )
            return protocol.make_response(request_id, result)
        except ProtocolError as exc:
            self.errors_returned += 1
            self.metrics.counter("server_errors_total", verb=op, code=exc.code).inc()
            return protocol.make_error(request_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            logger.exception("internal error handling request")
            self.errors_returned += 1
            self.metrics.counter(
                "server_errors_total", verb=op, code=ErrorCode.INTERNAL_ERROR
            ).inc()
            return protocol.make_error(
                request_id, ErrorCode.INTERNAL_ERROR, f"{type(exc).__name__}: {exc}"
            )
        finally:
            if token is not None:
                _REQUEST_SPAN.reset(token)
            if span is not None:
                tracer.finish(span)

    # -- the global concurrency gate -------------------------------------------

    #: weight of the newest sample in the service-time EWMA.
    _EWMA_ALPHA = 0.3

    def _estimated_queue_wait(self) -> float:
        """Seconds a newly admitted job would wait before holding a gate slot.

        Zero while any slot is free.  Otherwise the per-job service estimate
        -- the EWMA of completed gated jobs, floored by the age of the oldest
        job currently running -- scaled by the queue positions the newcomer
        would sit behind, spread over the gate's ``max_concurrency`` lanes.
        """
        slots = self.config.max_concurrency
        if self._running < slots:
            return 0.0
        service = self._service_ewma
        if self._running_started:
            oldest_age = time.monotonic() - min(self._running_started.values())
            service = max(service, oldest_age)
        queued = max(0, self._pending - self._running)
        return (queued + 1) / slots * service

    def _shed(self, reason: str, message: str) -> ProtocolError:
        self.shed_total += 1
        self.metrics.counter("server_shed_total", reason=reason).inc()
        return ProtocolError(ErrorCode.OVERLOADED, message)

    async def _run_gated(self, fn: Callable[[], object]) -> object:
        """Run blocking analysis work on the pool, bounded by the global gate.

        Admission control sheds *before* queueing: the ``overloaded`` error
        raises synchronously (no awaits between the checks and the reply
        path), when either the static ``max_pending`` cap is hit or the
        estimated queue wait exceeds ``max_queue_wait_seconds`` -- so a shed
        request never sits in the queue and tail latency under overload is
        bounded by the wait cap, not the queue depth.

        Accounting invariant: ``_pending``/``_running`` (and the
        ``server_gate_pending``/``server_gate_inflight`` gauges) move up and
        down exactly once each on every exit path -- success, a raising
        pooled job, or the awaiting client disconnecting while queued
        (cancellation unwinds through the same ``finally`` blocks).
        """
        assert self._gate is not None
        if self._pending >= self.config.max_pending:
            raise self._shed(
                "max_pending",
                f"{self._pending} analyses already queued (max_pending="
                f"{self.config.max_pending}); retry later",
            )
        wait_cap = self.config.max_queue_wait_seconds
        if wait_cap is not None:
            estimate = self._estimated_queue_wait()
            if estimate > wait_cap:
                raise self._shed(
                    "queue_wait",
                    f"estimated queue wait {estimate:.2f}s exceeds "
                    f"max_queue_wait_seconds={wait_cap}; retry later",
                )
        tracer = get_tracer()
        context = _REQUEST_SPAN.get()
        if tracer.enabled and context is not None:
            # Executor threads don't inherit the request's root span; attach
            # its shipped context so analysis spans parent under the verb.
            work = lambda: self._attached_call(tracer, context, fn)  # noqa: E731
        else:
            work = fn
        self._pending += 1
        self.metrics.gauge("server_gate_pending").set(self._pending)
        try:
            async with self._gate:
                job = next(self._job_ids)
                started = time.monotonic()
                self._running += 1
                self._running_started[job] = started
                self.metrics.gauge("server_gate_inflight").set(self._running)
                try:
                    loop = asyncio.get_running_loop()
                    result = await loop.run_in_executor(self._executor, work)
                finally:
                    self._running -= 1
                    self._running_started.pop(job, None)
                    self.metrics.gauge("server_gate_inflight").set(self._running)
                # Reached only on success: failed jobs (parse errors return
                # in microseconds) must not feed the service-time estimate.
                elapsed = time.monotonic() - started
                if self._service_ewma:
                    self._service_ewma += self._EWMA_ALPHA * (elapsed - self._service_ewma)
                else:
                    self._service_ewma = elapsed
                return result
        finally:
            self._pending -= 1
            self.metrics.gauge("server_gate_pending").set(self._pending)

    @staticmethod
    def _attached_call(tracer, context, fn: Callable[[], object]) -> object:
        with tracer.attach(context):
            return fn()

    # -- program intake --------------------------------------------------------

    def _parse_source(self, source: str, kind: str):
        """Source text -> IR program (executor thread; raises ProtocolError)."""
        try:
            if kind == "c":
                from ..frontend import compile_c

                return compile_c(source).program
            from ..ir.asmparser import parse_program

            return parse_program(source)
        except Exception as exc:  # parse/typecheck/codegen failures are client errors
            raise ProtocolError(
                ErrorCode.PARSE_ERROR, f"{kind} source rejected: {exc}"
            )

    def _analyze_source(self, source: str, kind: str):
        """Full intake on an executor thread: parse then analyze."""
        program = self._parse_source(source, kind)
        try:
            return self.service.analyze(program)
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(ErrorCode.ANALYSIS_ERROR, f"analysis failed: {exc}")

    def _program_id(self, source: str, kind: str) -> str:
        return ProgramRegistry.make_id(kind, source, self._environment)

    async def _intake(self, params: Dict[str, object]) -> Tuple[str, object, bool]:
        """Shared analyze path: returns (program_id, types, served_from_registry).

        In-flight requests are single-flight coalesced by content hash: when
        N clients submit the same never-seen source concurrently, exactly one
        leader runs the analysis while the other N-1 followers await its
        future (counted by ``server_coalesced_total``) and build their
        replies from the same result object -- so all N responses are
        byte-identical, ``cached: false`` included: the solve happened in
        *this* flight, for followers no less than for the leader.  Duplicate
        submissions therefore cannot saturate the gate.  A leader whose own
        client disconnects mid-solve fails its future with cancellation;
        followers must not surface a stranger's hangup, so they loop and one
        of them is elected the new leader.
        """
        source = protocol.require_str(params, "source")
        kind = protocol.source_kind(params)
        program_id = self._program_id(source, kind)
        while True:
            types = self.registry.get(program_id)
            if types is not None:
                return program_id, types, True
            existing = self._inflight.get(program_id)
            if existing is None:
                break  # no flight to join: become the leader below
            self.coalesced_total += 1
            self.metrics.counter("server_coalesced_total").inc()
            try:
                return program_id, await asyncio.shield(existing), False
            except asyncio.CancelledError:
                leader_died = existing.cancelled() or (
                    existing.done()
                    and isinstance(existing.exception(), asyncio.CancelledError)
                )
                if leader_died:
                    continue  # elect a new leader instead of failing this request
                raise  # *this* request's connection went away
        future = asyncio.get_running_loop().create_future()
        self._inflight[program_id] = future
        try:
            types = await self._run_gated(lambda: self._analyze_source(source, kind))
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # mark retrieved: waiters re-raise, logs stay quiet
            raise
        else:
            # First writer wins: a racing corpus batch may have admitted the
            # program already, and queries could have observed its entry.
            types = self.registry.admit_if_absent(program_id, types)
            if not future.cancelled():
                future.set_result(types)
            return program_id, types, False
        finally:
            self._inflight.pop(program_id, None)

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(self, op: str, params: Dict[str, object]) -> object:
        handler = {
            "ping": self._op_ping,
            "health": self._op_health,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "analyze": self._op_analyze,
            "query": self._op_query,
            "corpus": self._op_corpus,
            "session.open": self._op_session_open,
            "session.edit": self._op_session_edit,
            "session.close": self._op_session_close,
            "shutdown": self._op_shutdown,
        }[op]
        return await handler(params)

    async def _op_ping(self, params: Dict[str, object]) -> Dict[str, object]:
        return {
            "server": protocol.SERVER_NAME,
            "protocol": protocol.PROTOCOL_VERSION,
            "version": __version__,
            "pid": os.getpid(),
        }

    async def _op_health(self, params: Dict[str, object]) -> Dict[str, object]:
        """Cheap liveness for health-checkers: never touches the analysis path.

        A fleet router polls this; ``shard_id`` tells shards apart and
        ``store_backend`` confirms which persistent tier the shard actually
        mounted (``socket`` in a correctly-wired fleet).
        """
        store = self.service.store
        return {
            "healthy": True,
            "role": "server",
            "pid": os.getpid(),
            "shard_id": self.config.shard_id,
            "uptime_seconds": time.monotonic() - self._started,
            "analyses_pending": self._pending,
            "sessions_open": len(self._sessions),
            "store_backend": store.backend_kind if store is not None else "none",
        }

    async def _op_stats(self, params: Dict[str, object]) -> Dict[str, object]:
        # With a program_id: per-stage solver timings for that analyzed
        # program (graph build / saturate / simplify / sketch), so operators
        # can see where a live daemon's time goes.  Without: daemon counters.
        if params.get("program_id") is not None:
            program_id = protocol.require_str(params, "program_id")
            types = self.registry.get(program_id)
            if types is None:
                raise ProtocolError(
                    ErrorCode.UNKNOWN_PROGRAM,
                    f"no analyzed program {program_id!r} (analyze it first; the "
                    f"registry keeps the most recent {self.registry.capacity})",
                )
            return protocol.stats_payload(types, program_id)
        store = self.service.store
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "connections_accepted": self.connections_accepted,
            "requests_served": self.requests_served,
            "errors_returned": self.errors_returned,
            "analyses_pending": self._pending,
            # Admission-gate visibility: ``pending`` counts every admitted
            # analysis (queued or running, the number max_pending checks),
            # ``inflight`` the ones actually holding a gate slot.
            "gate": {
                "pending": self._pending,
                "inflight": self._running,
                "max_concurrency": self.config.max_concurrency,
                "max_pending": self.config.max_pending,
                "max_queue_wait_seconds": self.config.max_queue_wait_seconds,
                "estimated_queue_wait_seconds": self._estimated_queue_wait(),
                "service_ewma_seconds": self._service_ewma,
            },
            # Serving-path efficiency counters: analyze submissions folded
            # into another request's in-flight solve, and requests refused by
            # admission control instead of queued.
            "coalesced_total": self.coalesced_total,
            "shed_total": self.shed_total,
            "sessions_open": len(self._sessions),
            "backend": self.config.backend
            or ("threads" if self.config.parallel_waves else "serial"),
            "registry": self.registry.snapshot(),
            "store": store.stats.snapshot() if store is not None else {},
            # Per-worker SolveStats merge of the process backend (empty until
            # the first process-backed analysis builds the pool).
            "procpool": self.service.procpool_snapshot(),
        }

    async def _op_metrics(self, params: Dict[str, object]) -> Dict[str, object]:
        fmt = params.get("format", "json")
        if not isinstance(fmt, str):
            raise ProtocolError(ErrorCode.INVALID_PARAMS, "format must be a string")
        return protocol.metrics_payload(self.metrics, fmt)

    async def _op_analyze(self, params: Dict[str, object]) -> Dict[str, object]:
        program_id, types, cached = await self._intake(params)
        return protocol.analyze_payload(
            types, program_id, cached, full=bool(params.get("full", False))
        )

    async def _op_query(self, params: Dict[str, object]) -> Dict[str, object]:
        program_id = protocol.require_str(params, "program_id")
        types = self.registry.get(program_id)
        if types is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_PROGRAM,
                f"no analyzed program {program_id!r} (analyze it first; the "
                f"registry keeps the most recent {self.registry.capacity})",
            )
        procedure = params.get("procedure")
        if procedure is None:
            return protocol.program_payload(types, program_id)
        if not isinstance(procedure, str):
            raise ProtocolError(ErrorCode.INVALID_PARAMS, "procedure must be a string")
        return protocol.procedure_payload(types, program_id, procedure)

    async def _op_corpus(self, params: Dict[str, object]) -> Dict[str, object]:
        programs = params.get("programs")
        if not isinstance(programs, dict) or not programs:
            raise ProtocolError(
                ErrorCode.INVALID_PARAMS,
                "corpus needs a non-empty 'programs' object: name -> "
                "{'source': ..., 'kind': 'asm'|'c'}",
            )
        normalized: Dict[str, Tuple[str, str]] = {}
        for name, entry in programs.items():
            if isinstance(entry, str):
                entry = {"source": entry}
            if not isinstance(entry, dict):
                raise ProtocolError(
                    ErrorCode.INVALID_PARAMS, f"corpus entry {name!r} must be an object"
                )
            normalized[name] = (
                protocol.require_str(entry, "source"),
                protocol.source_kind(entry),
            )

        def run_batch():
            from ..service.batch import analyze_corpus

            parsed = {
                name: self._parse_source(source, kind)
                for name, (source, kind) in normalized.items()
            }
            return analyze_corpus(parsed, service=self.service)

        report = await self._run_gated(run_batch)
        result: Dict[str, object] = {"programs": {}, "store": self.service.store.stats.snapshot()}
        for name, (source, kind) in normalized.items():
            program_report = report[name]
            program_id = self._program_id(source, kind)
            self.registry.admit(program_id, program_report.types)
            result["programs"][name] = {
                "program_id": program_id,
                "procedures": sorted(program_report.types.functions),
                "cache_hits": program_report.cache_hits,
                "cache_misses": program_report.cache_misses,
                "seconds": program_report.seconds,
            }
        return result

    async def _op_session_open(self, params: Dict[str, object]) -> Dict[str, object]:
        if len(self._sessions) >= self.config.max_sessions:
            raise ProtocolError(
                ErrorCode.OVERLOADED,
                f"{len(self._sessions)} sessions already open (max_sessions="
                f"{self.config.max_sessions}); close one first",
            )
        session_id = uuid.uuid4().hex
        state = _Session(IncrementalSession(self.service))
        # Reserve the slot before awaiting anything: the cap check plus this
        # insert run atomically on the event loop, so concurrent opens cannot
        # overshoot max_sessions.  A failed opening analysis releases it.
        self._sessions[session_id] = state
        try:
            async with state.lock:
                payload = await self._session_analyze(state, params)
        except BaseException:
            self._sessions.pop(session_id, None)
            raise
        finally:
            self.metrics.gauge("server_sessions_open").set(len(self._sessions))
        payload["session_id"] = session_id
        return payload

    async def _op_session_edit(self, params: Dict[str, object]) -> Dict[str, object]:
        session_id = protocol.require_str(params, "session_id")
        state = self._sessions.get(session_id)
        if state is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        async with state.lock:
            state.edits += 1
            payload = await self._session_analyze(state, params)
        payload["session_id"] = session_id
        payload["edits"] = state.edits
        return payload

    async def _session_analyze(
        self, state: _Session, params: Dict[str, object]
    ) -> Dict[str, object]:
        """Run one (re-)analysis inside a session; annotates invalidation stats."""
        source = protocol.require_str(params, "source")
        kind = protocol.source_kind(params)
        program_id = self._program_id(source, kind)

        def run():
            program = self._parse_source(source, kind)
            try:
                return state.session.analyze(program)
            except Exception as exc:
                raise ProtocolError(ErrorCode.ANALYSIS_ERROR, f"analysis failed: {exc}")

        types = await self._run_gated(run)
        self.registry.admit(program_id, types)
        stats = types.stats
        return {
            "program_id": program_id,
            "procedures": sorted(types.functions),
            "signatures": {name: types.signature(name) for name in sorted(types.functions)},
            "invalidated_procedures": list(stats.get("invalidated_procedures", [])),
            "solved_procedures": list(stats.get("solved_procedures", [])),
            "cached_procedures": list(stats.get("cached_procedures", [])),
            "sccs_solved": stats.get("sccs_solved", 0),
            "sccs_cached": stats.get("sccs_cached", 0),
        }

    async def _op_session_close(self, params: Dict[str, object]) -> Dict[str, object]:
        session_id = protocol.require_str(params, "session_id")
        state = self._sessions.pop(session_id, None)
        self.metrics.gauge("server_sessions_open").set(len(self._sessions))
        if state is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_SESSION, f"no open session {session_id!r}"
            )
        return {"session_id": session_id, "closed": True, "edits": state.edits}

    async def _op_shutdown(self, params: Dict[str, object]) -> Dict[str, object]:
        if not self.config.allow_shutdown:
            raise ProtocolError(
                ErrorCode.SHUTDOWN_DISABLED,
                "remote shutdown is disabled (start the server with --allow-shutdown)",
            )
        assert self._stopping is not None
        self._stopping.set()
        return {"stopping": True}


async def run_server(config: Optional[ServerConfig] = None) -> None:
    """Start a server and serve until shut down (the ``__main__`` entry point)."""
    server = TypeQueryServer(config)
    host, port = await server.start()
    print(f"{protocol.SERVER_NAME} v{__version__} listening on {host}:{port}", flush=True)
    await server.serve_forever()
