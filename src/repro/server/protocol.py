"""The type-query wire protocol: newline-delimited JSON, versioned, typed errors.

One message per line, UTF-8 JSON, in both directions.  Requests carry the
protocol version, a client-chosen correlation id, an operation name and a
parameter object::

    {"v": 1, "id": 3, "op": "query", "params": {"program_id": "...", "procedure": "main"}}

Responses echo the id and either carry a result or a typed error::

    {"v": 1, "id": 3, "ok": true, "result": {...}}
    {"v": 1, "id": 3, "ok": false, "error": {"code": "unknown_procedure", "message": "..."}}

The payload builders at the bottom are shared by everything that speaks this
encoding: the asyncio daemon (:mod:`repro.server.app`), the clients
(:mod:`repro.server.client`) and the one-shot CLI (``python -m repro
analyze --json``), so a saved ``--json`` dump is byte-compatible with what the
server returns for the same program.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, Tuple

#: bump on incompatible message-shape changes; servers reject other versions.
PROTOCOL_VERSION = 1

#: identifies the daemon in ``ping`` responses.
SERVER_NAME = "repro-type-server"

#: default cap on one request line (and the server's StreamReader limit).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ErrorCode:
    """Typed error codes -- stable strings clients can switch on."""

    BAD_REQUEST = "bad_request"  # unparseable line / not a JSON object
    UNSUPPORTED_VERSION = "unsupported_version"
    UNKNOWN_OP = "unknown_op"
    INVALID_PARAMS = "invalid_params"
    PARSE_ERROR = "parse_error"  # the submitted asm / mini-C failed to parse
    ANALYSIS_ERROR = "analysis_error"  # the pipeline itself failed
    UNKNOWN_PROGRAM = "unknown_program"
    UNKNOWN_PROCEDURE = "unknown_procedure"
    UNKNOWN_SESSION = "unknown_session"
    OVERLOADED = "overloaded"  # the global concurrency gate is saturated
    TOO_LARGE = "too_large"  # request line exceeded the server's limit
    SHUTDOWN_DISABLED = "shutdown_disabled"
    INTERNAL_ERROR = "internal_error"

    ALL = frozenset(
        {
            BAD_REQUEST,
            UNSUPPORTED_VERSION,
            UNKNOWN_OP,
            INVALID_PARAMS,
            PARSE_ERROR,
            ANALYSIS_ERROR,
            UNKNOWN_PROGRAM,
            UNKNOWN_PROCEDURE,
            UNKNOWN_SESSION,
            OVERLOADED,
            TOO_LARGE,
            SHUTDOWN_DISABLED,
            INTERNAL_ERROR,
        }
    )


#: operations a conforming server must implement.
OPERATIONS = frozenset(
    {
        "ping",
        "health",
        "stats",
        "metrics",
        "analyze",
        "query",
        "corpus",
        "session.open",
        "session.edit",
        "session.close",
        "shutdown",
    }
)

#: Verbs a client may safely resend after a transport failure mid-request.
#: ``query``/``stats``/``metrics``/``health``/``ping`` are pure reads;
#: ``analyze``/``corpus`` are content-addressed (resubmission is a registry
#: hit, never a second solve), so replaying them cannot change server state.
#: ``session.*`` are stateful -- a retried ``session.edit`` whose first copy
#: was applied before the connection died would double-apply the edit -- and
#: ``shutdown`` is one-way, so none of them belong here.
IDEMPOTENT_OPERATIONS = frozenset(
    {"ping", "health", "stats", "metrics", "analyze", "query", "corpus"}
)

#: formats the ``metrics`` verb can render its snapshot in.
METRICS_FORMATS = frozenset({"json", "prometheus"})

#: program source kinds accepted by ``analyze``/``corpus``/``session.open``.
SOURCE_KINDS = frozenset({"asm", "c"})


class ProtocolError(Exception):
    """A request failure with a typed code; the server turns it into an error reply."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ErrorCode.ALL, f"untyped error code {code!r}"
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------------------
# Message construction / parsing
# ---------------------------------------------------------------------------


def make_request(
    op: str,
    params: Optional[Mapping[str, object]] = None,
    request_id: Optional[int] = None,
) -> Dict[str, object]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "params": dict(params or {}),
    }


def make_response(request_id: Optional[int], result: object) -> Dict[str, object]:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def make_error(
    request_id: Optional[int], code: str, message: str
) -> Dict[str, object]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def encode(message: Mapping[str, object]) -> bytes:
    """One protocol message -> one UTF-8 JSON line (compact, key-sorted)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """One received line -> message dict; raises :class:`ProtocolError` if malformed."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(ErrorCode.BAD_REQUEST, f"unparseable request line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(ErrorCode.BAD_REQUEST, "request must be a JSON object")
    return message


def validate_request(
    message: Mapping[str, object],
) -> Tuple[str, Dict[str, object], Optional[int]]:
    """Check version/shape; returns ``(op, params, request_id)``."""
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError(ErrorCode.BAD_REQUEST, "request id must be int, str or null")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported (server speaks {PROTOCOL_VERSION})",
        )
    op = message.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(ErrorCode.UNKNOWN_OP, f"unknown operation {op!r}")
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(ErrorCode.INVALID_PARAMS, "params must be a JSON object")
    return op, params, request_id


def require_str(params: Mapping[str, object], key: str) -> str:
    value = params.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            ErrorCode.INVALID_PARAMS, f"missing or non-string parameter {key!r}"
        )
    return value


def source_kind(params: Mapping[str, object]) -> str:
    kind = params.get("kind", "asm")
    if kind not in SOURCE_KINDS:
        raise ProtocolError(
            ErrorCode.INVALID_PARAMS,
            f"unknown source kind {kind!r} (expected one of {sorted(SOURCE_KINDS)})",
        )
    return kind


# ---------------------------------------------------------------------------
# Result payloads (shared by server, clients and the one-shot CLI)
# ---------------------------------------------------------------------------


def analyze_payload(
    types, program_id: str, cached: bool, full: bool = False
) -> Dict[str, object]:
    """The ``analyze`` result: id + signatures, optionally the full program."""
    payload: Dict[str, object] = {
        "program_id": program_id,
        "cached": cached,
        "procedures": sorted(types.functions),
        "signatures": {name: types.signature(name) for name in sorted(types.functions)},
    }
    if full:
        payload["program"] = program_payload(types, program_id)
    return payload


def program_payload(types, program_id: Optional[str] = None) -> Dict[str, object]:
    """The whole-program payload (``query`` without a procedure)."""
    payload = types.to_json()
    if program_id is not None:
        payload["program_id"] = program_id
    return payload


def stats_payload(types, program_id: str) -> Dict[str, object]:
    """The per-program ``stats`` result: where the analysis spent its time.

    ``stage_seconds`` is the :class:`~repro.core.solver.SolveStats` record the
    core accumulated while solving this program's SCCs (graph build,
    saturation, simplification queries, sketch construction), as plumbed
    through the service layer; the surrounding fields put it in context
    (constraint generation, end-to-end solve time, cache reuse).  For a fully
    cache-served re-analysis every stage is 0.0 -- no core work ran.
    """
    stats = types.stats
    stage = stats.get("stage_seconds", {})
    workers = stats.get("worker_stats", {})
    return {
        "program_id": program_id,
        "procedures": sorted(types.functions),
        "stage_seconds": dict(stage) if isinstance(stage, dict) else stage,
        "constraint_generation_seconds": stats.get("constraint_generation_seconds"),
        "solve_seconds": stats.get("solve_seconds"),
        "total_seconds": stats.get("total_seconds"),
        "sccs_solved": stats.get("sccs_solved"),
        "sccs_cached": stats.get("sccs_cached"),
        "constraints": stats.get("constraints"),
        "instructions": stats.get("instructions"),
        # Wave-executor accounting: which strategy solved this program, the
        # per-worker (by pid) SolveStats merge when it was the process
        # backend, and how many SCCs were requeued in-process after a worker
        # died (always 0 on the serial/thread paths).
        "executor": stats.get("executor", "serial"),
        "worker_stats": dict(workers) if isinstance(workers, dict) else workers,
        "worker_failed": stats.get("worker_failed", 0),
    }


def metrics_payload(registry, fmt: str = "json") -> Dict[str, object]:
    """The ``metrics`` result: the process metrics registry, rendered.

    ``"json"`` returns the structured snapshot (counters/gauges/histograms
    with p50/p95/p99, keyed by rendered metric name); ``"prometheus"`` returns
    the text exposition in a ``text`` field for scrapers.
    """
    if fmt not in METRICS_FORMATS:
        raise ProtocolError(
            ErrorCode.INVALID_PARAMS,
            f"unknown metrics format {fmt!r} (expected one of {sorted(METRICS_FORMATS)})",
        )
    if fmt == "prometheus":
        return {"format": "prometheus", "text": registry.render_prometheus()}
    return registry.snapshot()


def procedure_payload(types, program_id: str, procedure: str) -> Dict[str, object]:
    """The per-procedure ``query`` result: signature, scheme, sketches, layout."""
    from ..core.ctype import ctype_to_json

    if procedure not in types.functions:
        raise ProtocolError(
            ErrorCode.UNKNOWN_PROCEDURE,
            f"program {program_id} has no procedure {procedure!r}",
        )
    payload = types.functions[procedure].to_json()
    payload["program_id"] = program_id
    payload["structs"] = {
        name: {"type": ctype_to_json(struct), "c": f"{struct};"}
        for name, struct in sorted(types.procedure_structs(procedure).items())
    }
    return payload
