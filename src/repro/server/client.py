"""Clients for the type-query server: one synchronous, one asyncio.

Both speak the protocol of :mod:`repro.server.protocol` and expose the same
verb-per-method surface::

    from repro.server import TypeQueryClient

    with TypeQueryClient(port=8791) as client:
        result = client.analyze(asm_text)
        sig = client.query(result["program_id"], "main")["signature"]

Server-side failures surface as :class:`TypeQueryError` carrying the typed
error code, so callers can distinguish a mistyped procedure name
(``unknown_procedure``) from a saturated server (``overloaded``).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from typing import Dict, Mapping, Optional

from . import protocol
from .protocol import ProtocolError


class TypeQueryError(RuntimeError):
    """An error reply from the server (or a protocol violation)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


def _check_reply(reply: Mapping[str, object], request_id: object) -> object:
    if not isinstance(reply, dict) or "ok" not in reply:
        raise TypeQueryError(
            protocol.ErrorCode.BAD_REQUEST, f"malformed server reply: {reply!r}"
        )
    if not reply["ok"]:
        # Error replies may carry id=null (e.g. too_large, where the request
        # line never parsed); replies arrive in order, so this is ours --
        # surface the typed code, not a correlation complaint.
        error = reply.get("error") or {}
        raise TypeQueryError(
            error.get("code", protocol.ErrorCode.INTERNAL_ERROR),
            error.get("message", "unknown server error"),
        )
    if reply.get("id") != request_id:
        raise TypeQueryError(
            protocol.ErrorCode.BAD_REQUEST,
            f"reply correlation id {reply.get('id')!r} != request id {request_id!r}",
        )
    return reply.get("result")


class _VerbMixin:
    """The verb surface, expressed over an abstract ``request`` method.

    Works for both clients: on the sync client the methods return results
    directly; on the async client they return awaitables (``await
    client.analyze(...)``).
    """

    def ping(self):
        """Liveness/version check: server name, protocol version, pid."""
        return self.request("ping")

    def stats(self, program_id: Optional[str] = None):
        """Daemon counters, or -- given a ``program_id`` -- the per-stage
        solver timings (graph/saturate/simplify/sketch) of that analysis,
        including which wave executor solved it and, under the process
        backend, the per-worker ``SolveStats`` merge plus the typed
        ``worker_failed`` count (see docs/protocol.md)."""
        if program_id is None:
            return self.request("stats")
        return self.request("stats", {"program_id": program_id})

    def metrics(self, format: Optional[str] = None):
        """The process metrics registry: per-verb request counters, latency
        histograms with p50/p95/p99, gate gauges, store/registry hit rates.
        ``format="prometheus"`` returns the text exposition instead of the
        structured JSON snapshot (see docs/observability.md)."""
        if format is None:
            return self.request("metrics")
        return self.request("metrics", {"format": format})

    def analyze(self, source: str, kind: str = "asm", full: bool = False):
        """Submit ``source`` (``kind``: ``"asm"`` or ``"c"``) for analysis.

        Returns the program id (a content hash -- resubmitting is a cache
        hit), procedure names and rendered signatures; ``full=True`` adds the
        whole-program payload.
        """
        return self.request(
            "analyze", {"source": source, "kind": kind, "full": full}
        )

    def query(self, program_id: str, procedure: Optional[str] = None):
        """Fetch an analyzed program, or one procedure's signature, scheme,
        formal sketches and transitively-referenced struct layouts."""
        params: Dict[str, object] = {"program_id": program_id}
        if procedure is not None:
            params["procedure"] = procedure
        return self.request("query", params)

    def corpus(self, programs: Mapping[str, object], kind: str = "asm"):
        """Submit ``{name: source}`` or ``{name: {"source":..., "kind":...}}``."""
        normalized = {
            name: entry if isinstance(entry, Mapping) else {"source": entry, "kind": kind}
            for name, entry in programs.items()
        }
        return self.request("corpus", {"programs": normalized})

    def session_open(self, source: str, kind: str = "asm"):
        """Open an incremental session on ``source``; returns ``session_id``
        plus the first analysis (later edits re-solve only their cone)."""
        return self.request("session.open", {"source": source, "kind": kind})

    def session_edit(self, session_id: str, source: str, kind: str = "asm"):
        """Re-analyze an edited version inside a session; the reply names the
        invalidation cone (``invalidated_procedures``/``solved_procedures``)."""
        return self.request(
            "session.edit", {"session_id": session_id, "source": source, "kind": kind}
        )

    def session_close(self, session_id: str):
        """Discard a session and free its server-side slot."""
        return self.request("session.close", {"session_id": session_id})

    def shutdown(self):
        """Stop the daemon (only honoured when started with --allow-shutdown)."""
        return self.request("shutdown")


class TypeQueryClient(_VerbMixin):
    """Blocking client over a plain TCP socket.

    ``connect_retries``/``connect_delay`` let scripts race a server that is
    still starting up (the CI smoke test does exactly that).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8791,
        timeout: float = 60.0,
        connect_retries: int = 0,
        connect_delay: float = 0.2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                last_error = exc
                if attempt == connect_retries:
                    raise
                time.sleep(connect_delay)
        assert self._sock is not None, last_error
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, params: Optional[Mapping[str, object]] = None):
        if self._file is None:
            raise TypeQueryError(protocol.ErrorCode.BAD_REQUEST, "client is closed")
        request_id = next(self._ids)
        self._file.write(protocol.encode(protocol.make_request(op, params, request_id)))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise TypeQueryError(
                protocol.ErrorCode.INTERNAL_ERROR, "server closed the connection"
            )
        try:
            reply = protocol.decode_line(line)
        except ProtocolError as exc:
            raise TypeQueryError(exc.code, exc.message)
        return _check_reply(reply, request_id)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "TypeQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncTypeQueryClient(_VerbMixin):
    """Asyncio client; every verb method is awaitable.

    Create with :meth:`connect`::

        client = await AsyncTypeQueryClient.connect(port=8791)
        result = await client.analyze(source)
        await client.aclose()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8791,
        connect_retries: int = 0,
        connect_delay: float = 0.2,
        limit: int = protocol.MAX_LINE_BYTES,
    ) -> "AsyncTypeQueryClient":
        for attempt in range(connect_retries + 1):
            try:
                reader, writer = await asyncio.open_connection(host, port, limit=limit)
                return cls(reader, writer)
            except OSError:
                if attempt == connect_retries:
                    raise
                await asyncio.sleep(connect_delay)
        raise AssertionError("unreachable")

    async def request(self, op: str, params: Optional[Mapping[str, object]] = None):
        # One in-flight request per client: the protocol answers in order, so
        # interleaved writers would cross-correlate replies.
        async with self._lock:
            request_id = next(self._ids)
            self._writer.write(
                protocol.encode(protocol.make_request(op, params, request_id))
            )
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise TypeQueryError(
                protocol.ErrorCode.INTERNAL_ERROR, "server closed the connection"
            )
        try:
            reply = protocol.decode_line(line)
        except ProtocolError as exc:
            raise TypeQueryError(exc.code, exc.message)
        return _check_reply(reply, request_id)

    async def aclose(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncTypeQueryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
