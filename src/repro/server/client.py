"""Clients for the type-query server: one synchronous, one asyncio.

Both speak the protocol of :mod:`repro.server.protocol` and expose the same
verb-per-method surface::

    from repro.server import TypeQueryClient

    with TypeQueryClient(port=8791) as client:
        result = client.analyze(asm_text)
        sig = client.query(result["program_id"], "main")["signature"]

Server-side failures surface as :class:`TypeQueryError` carrying the typed
error code, so callers can distinguish a mistyped procedure name
(``unknown_procedure``) from a saturated server (``overloaded``).

Both clients optionally retry transient failures: pass a
:class:`RetryPolicy` (``retry=RetryPolicy(attempts=5)``) and a typed
``overloaded`` reply or a refused/dropped connection is retried with
jittered exponential backoff (reconnecting first when the transport died).
Dropped connections are only retried for idempotent verbs
(:data:`repro.server.protocol.IDEMPOTENT_OPERATIONS`): a connection severed
after the server applied a ``session.edit`` must not double-apply it.
Retry is **off by default** -- a bare client fails fast, exactly as before.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from . import protocol
from .protocol import ProtocolError


class TypeQueryError(RuntimeError):
    """An error reply from the server (or a protocol violation)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServerConnectionError(TypeQueryError):
    """The transport died mid-request (server closed the connection).

    A distinct type so the retry loop can tell "reconnect and try again"
    from deterministic server errors that must not be retried.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with jittered exponential backoff.

    Only two failure shapes are retried, because only they are transient by
    construction: a typed ``overloaded`` reply (the admission gate is full
    *right now*) and a refused or dropped connection (a server or fleet
    shard is restarting / failing over).  Dropped connections after the
    request may have been delivered are additionally gated on verb
    idempotency (see :func:`_retryable`) -- the server may have applied the
    request before the transport died, so only verbs that are safe to apply
    twice are replayed.  Everything else -- parse errors, unknown programs,
    bad params -- is deterministic; retrying would just repeat the failure
    slower.

    ``attempts`` counts *extra* tries after the first, so the default
    ``RetryPolicy()`` with ``attempts=3`` makes at most 4 requests.  Delays
    grow as ``base_delay * multiplier**attempt`` capped at ``max_delay``,
    then take full jitter in ``[d/2, d]`` so a thundering herd of retrying
    clients decorrelates instead of re-stampeding in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 2.0
    multiplier: float = 2.0

    def delay(self, attempt: int) -> float:
        bounded = min(self.max_delay, self.base_delay * (self.multiplier**attempt))
        return bounded * (0.5 + random.random() / 2)


def _retryable(op: str, exc: BaseException, sent: bool) -> bool:
    """Whether a failed request may be resent.

    A typed ``overloaded`` reply means the server refused the work before
    doing any of it -- safe to retry for every verb.  A transport failure
    after the request may have reached the server (``sent``) is retried only
    for :data:`protocol.IDEMPOTENT_OPERATIONS`: the server may already have
    applied the request before the connection died, and replaying a
    non-idempotent verb (``session.edit``) would apply it twice.  Failures
    before the request went out (refused connections during the connect
    phase) are retryable for every verb -- nothing was delivered.
    """
    if isinstance(exc, (ServerConnectionError, OSError)):
        return (not sent) or op in protocol.IDEMPOTENT_OPERATIONS
    if isinstance(exc, TypeQueryError):
        return exc.code == protocol.ErrorCode.OVERLOADED
    return False


def _needs_reconnect(exc: BaseException) -> bool:
    return isinstance(exc, (ServerConnectionError, OSError))


def _check_reply(reply: Mapping[str, object], request_id: object) -> object:
    if not isinstance(reply, dict) or "ok" not in reply:
        raise TypeQueryError(
            protocol.ErrorCode.BAD_REQUEST, f"malformed server reply: {reply!r}"
        )
    if not reply["ok"]:
        # Error replies may carry id=null (e.g. too_large, where the request
        # line never parsed); replies arrive in order, so this is ours --
        # surface the typed code, not a correlation complaint.
        error = reply.get("error") or {}
        raise TypeQueryError(
            error.get("code", protocol.ErrorCode.INTERNAL_ERROR),
            error.get("message", "unknown server error"),
        )
    if reply.get("id") != request_id:
        raise TypeQueryError(
            protocol.ErrorCode.BAD_REQUEST,
            f"reply correlation id {reply.get('id')!r} != request id {request_id!r}",
        )
    return reply.get("result")


class _VerbMixin:
    """The verb surface, expressed over an abstract ``request`` method.

    Works for both clients: on the sync client the methods return results
    directly; on the async client they return awaitables (``await
    client.analyze(...)``).
    """

    def ping(self):
        """Liveness/version check: server name, protocol version, pid."""
        return self.request("ping")

    def health(self):
        """Operational liveness: uptime, pending analyses, open sessions,
        mounted store backend -- and, behind a fleet router, per-shard rows
        (see docs/protocol.md).  Cheaper than ``stats``; built for pollers."""
        return self.request("health")

    def stats(self, program_id: Optional[str] = None):
        """Daemon counters, or -- given a ``program_id`` -- the per-stage
        solver timings (graph/saturate/simplify/sketch) of that analysis,
        including which wave executor solved it and, under the process
        backend, the per-worker ``SolveStats`` merge plus the typed
        ``worker_failed`` count (see docs/protocol.md)."""
        if program_id is None:
            return self.request("stats")
        return self.request("stats", {"program_id": program_id})

    def metrics(self, format: Optional[str] = None):
        """The process metrics registry: per-verb request counters, latency
        histograms with p50/p95/p99, gate gauges, store/registry hit rates.
        ``format="prometheus"`` returns the text exposition instead of the
        structured JSON snapshot (see docs/observability.md)."""
        if format is None:
            return self.request("metrics")
        return self.request("metrics", {"format": format})

    def analyze(self, source: str, kind: str = "asm", full: bool = False):
        """Submit ``source`` (``kind``: ``"asm"`` or ``"c"``) for analysis.

        Returns the program id (a content hash -- resubmitting is a cache
        hit), procedure names and rendered signatures; ``full=True`` adds the
        whole-program payload.
        """
        return self.request(
            "analyze", {"source": source, "kind": kind, "full": full}
        )

    def query(self, program_id: str, procedure: Optional[str] = None):
        """Fetch an analyzed program, or one procedure's signature, scheme,
        formal sketches and transitively-referenced struct layouts."""
        params: Dict[str, object] = {"program_id": program_id}
        if procedure is not None:
            params["procedure"] = procedure
        return self.request("query", params)

    def corpus(self, programs: Mapping[str, object], kind: str = "asm"):
        """Submit ``{name: source}`` or ``{name: {"source":..., "kind":...}}``."""
        normalized = {
            name: entry if isinstance(entry, Mapping) else {"source": entry, "kind": kind}
            for name, entry in programs.items()
        }
        return self.request("corpus", {"programs": normalized})

    def session_open(self, source: str, kind: str = "asm"):
        """Open an incremental session on ``source``; returns ``session_id``
        plus the first analysis (later edits re-solve only their cone)."""
        return self.request("session.open", {"source": source, "kind": kind})

    def session_edit(self, session_id: str, source: str, kind: str = "asm"):
        """Re-analyze an edited version inside a session; the reply names the
        invalidation cone (``invalidated_procedures``/``solved_procedures``)."""
        return self.request(
            "session.edit", {"session_id": session_id, "source": source, "kind": kind}
        )

    def session_close(self, session_id: str):
        """Discard a session and free its server-side slot."""
        return self.request("session.close", {"session_id": session_id})

    def shutdown(self):
        """Stop the daemon (only honoured when started with --allow-shutdown)."""
        return self.request("shutdown")


class TypeQueryClient(_VerbMixin):
    """Blocking client over a plain TCP socket.

    ``connect_retries``/``connect_delay`` let scripts race a server that is
    still starting up (the CI smoke test does exactly that).  ``retry``
    additionally retries ``overloaded`` replies and dropped connections
    per-request with backoff (off when ``None``, the default).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8791,
        timeout: float = 60.0,
        connect_retries: int = 0,
        connect_delay: float = 0.2,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            try:
                self._connect()
                break
            except OSError as exc:
                last_error = exc
                if attempt == connect_retries:
                    raise
                time.sleep(connect_delay)
        assert self._sock is not None, last_error

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, params: Optional[Mapping[str, object]] = None):
        if self._file is None and self.retry is None:
            raise TypeQueryError(protocol.ErrorCode.BAD_REQUEST, "client is closed")
        attempt = 0
        while True:
            sent = False
            try:
                if self._file is None:
                    self._connect()
                sent = True  # past here the request may have reached the server
                return self._request_once(op, params)
            except (TypeQueryError, OSError) as exc:
                if (
                    self.retry is None
                    or attempt >= self.retry.attempts
                    or not _retryable(op, exc, sent)
                ):
                    raise
                if _needs_reconnect(exc):
                    self.close()
                time.sleep(self.retry.delay(attempt))
                attempt += 1

    def _request_once(self, op: str, params: Optional[Mapping[str, object]] = None):
        assert self._file is not None
        request_id = next(self._ids)
        self._file.write(protocol.encode(protocol.make_request(op, params, request_id)))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServerConnectionError(
                protocol.ErrorCode.INTERNAL_ERROR, "server closed the connection"
            )
        try:
            reply = protocol.decode_line(line)
        except ProtocolError as exc:
            raise TypeQueryError(exc.code, exc.message)
        return _check_reply(reply, request_id)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "TypeQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncTypeQueryClient(_VerbMixin):
    """Asyncio client; every verb method is awaitable.

    Create with :meth:`connect`::

        client = await AsyncTypeQueryClient.connect(port=8791)
        result = await client.analyze(source)
        await client.aclose()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self.retry = retry
        # Reconnect coordinates; set by connect().  A client constructed
        # straight from streams cannot reconnect, so connection failures
        # stay fatal for it even under a retry policy.
        self._endpoint: Optional[Dict[str, object]] = None
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8791,
        connect_retries: int = 0,
        connect_delay: float = 0.2,
        limit: int = protocol.MAX_LINE_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> "AsyncTypeQueryClient":
        for attempt in range(connect_retries + 1):
            try:
                reader, writer = await asyncio.open_connection(host, port, limit=limit)
                client = cls(reader, writer, retry=retry)
                client._endpoint = {"host": host, "port": port, "limit": limit}
                return client
            except OSError:
                if attempt == connect_retries:
                    raise
                await asyncio.sleep(connect_delay)
        raise AssertionError("unreachable")

    async def _reconnect(self) -> None:
        assert self._endpoint is not None
        await self.aclose()
        self._reader, self._writer = await asyncio.open_connection(
            self._endpoint["host"], self._endpoint["port"], limit=self._endpoint["limit"]
        )

    async def request(self, op: str, params: Optional[Mapping[str, object]] = None):
        attempt = 0
        while True:
            sent = False
            try:
                if self._writer is None:
                    if self._endpoint is None:
                        raise TypeQueryError(
                            protocol.ErrorCode.BAD_REQUEST, "client is closed"
                        )
                    await self._reconnect()
                sent = True  # past here the request may have reached the server
                return await self._request_once(op, params)
            except (TypeQueryError, OSError) as exc:
                reconnectable = self._endpoint is not None or not _needs_reconnect(exc)
                if (
                    self.retry is None
                    or attempt >= self.retry.attempts
                    or not _retryable(op, exc, sent)
                    or not reconnectable
                ):
                    raise
                if _needs_reconnect(exc):
                    await self.aclose()
                await asyncio.sleep(self.retry.delay(attempt))
                attempt += 1

    async def _request_once(
        self, op: str, params: Optional[Mapping[str, object]] = None
    ):
        assert self._reader is not None and self._writer is not None
        # One in-flight request per client: the protocol answers in order, so
        # interleaved writers would cross-correlate replies.
        async with self._lock:
            request_id = next(self._ids)
            self._writer.write(
                protocol.encode(protocol.make_request(op, params, request_id))
            )
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServerConnectionError(
                protocol.ErrorCode.INTERNAL_ERROR, "server closed the connection"
            )
        try:
            reply = protocol.decode_line(line)
        except ProtocolError as exc:
            raise TypeQueryError(exc.code, exc.message)
        return _check_reply(reply, request_id)

    async def aclose(self) -> None:
        if self._writer is None:
            return
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncTypeQueryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
