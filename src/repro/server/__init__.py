"""The type-query server: a network front door for the analysis service.

Retypd is meant to sit behind an interactive reverse-engineering tool; this
package turns the in-process pipeline into a long-running daemon that many
clients share -- one process, one summary store, one registry of analyzed
programs, served over a newline-delimited JSON protocol.

Modules
-------
``repro.server.protocol``
    The versioned wire format: request/response schema, typed error codes and
    the result-payload builders (also used by the one-shot CLI).
``repro.server.registry``
    Content-hash -> :class:`~repro.pipeline.ProgramTypes` LRU; repeat queries
    are dict lookups.
``repro.server.app``
    The asyncio daemon: per-connection backpressure, a global concurrency
    gate, and the ``analyze``/``query``/``corpus``/``session.*`` verbs.
``repro.server.client``
    :class:`TypeQueryClient` (blocking) and :class:`AsyncTypeQueryClient`.

Run a server with ``python -m repro.server --port 8791 --store-dir .cache``
(add ``--backend processes`` to solve SCC waves on worker processes).  The
wire protocol is specified in ``docs/protocol.md``; operator guidance lives
in ``docs/operations.md``.
"""

from .app import ServerConfig, TypeQueryServer, run_server
from .client import (
    AsyncTypeQueryClient,
    RetryPolicy,
    ServerConnectionError,
    TypeQueryClient,
    TypeQueryError,
)
from .protocol import PROTOCOL_VERSION, ErrorCode, ProtocolError
from .registry import ProgramRegistry

__all__ = [
    "AsyncTypeQueryClient",
    "ErrorCode",
    "PROTOCOL_VERSION",
    "ProgramRegistry",
    "ProtocolError",
    "RetryPolicy",
    "ServerConfig",
    "ServerConnectionError",
    "TypeQueryClient",
    "TypeQueryError",
    "TypeQueryServer",
    "run_server",
]
