"""CLI entry point: ``python -m repro.server --port 8791 --store-dir .cache``.

``--fleet N`` switches to fleet mode: N shard subprocesses behind one
consistent-hash router sharing one summary-store daemon (see
:mod:`repro.fleet` and the fleet section of docs/operations.md)."""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys
from typing import Optional, Sequence

from .app import ServerConfig, run_server
from .protocol import MAX_LINE_BYTES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve Retypd type analyses over newline-delimited JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8791, help="TCP port; 0 picks a free one (default: %(default)s)"
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="directory for the persistent summary-store disk tier (default: memory only)",
    )
    parser.add_argument(
        "--store-addr",
        default=None,
        help="host:port of a fleet shared-store daemon; mounts the socket "
        "store backend instead of the disk tier (wins over --store-dir)",
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        default=None,
        help="this server's index in a fleet (surfaced by the 'health' verb)",
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="fleet mode: spawn N shard servers behind a consistent-hash "
        "router on --host:--port, sharing one summary-store daemon",
    )
    parser.add_argument(
        "--store-capacity",
        type=int,
        default=16384,
        help="fleet mode: shared store daemon LRU entries (default: %(default)s)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        help="fleet mode: seconds between router health probes (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=4096, help="summary-store LRU entries (default: %(default)s)"
    )
    parser.add_argument(
        "--registry-capacity", type=int, default=128, help="analyzed programs kept hot (default: %(default)s)"
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=4, help="analyses running at once (default: %(default)s)"
    )
    parser.add_argument(
        "--max-pending", type=int, default=64, help="analyses queued before 'overloaded' replies (default: %(default)s)"
    )
    parser.add_argument(
        "--max-queue-wait",
        type=float,
        default=30.0,
        help="shed with 'overloaded' when the estimated queue wait exceeds "
        "this many seconds; 0 disables the estimate and keeps only the "
        "static --max-pending cap (default: %(default)s)",
    )
    parser.add_argument(
        "--max-request-bytes", type=int, default=MAX_LINE_BYTES, help="request line cap (default: %(default)s)"
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "threads", "processes", "auto"],
        default=None,
        help="wave executor for each analysis: 'processes' solves independent "
        "SCCs on worker processes (true multi-core), 'auto' picks by workload "
        "size (default: serial)",
    )
    parser.add_argument(
        "--backend-workers",
        type=int,
        default=None,
        help="worker count for the wave backend (default: min(8, cpus))",
    )
    parser.add_argument(
        "--parallel-waves", action="store_true", help="legacy alias for --backend threads"
    )
    parser.add_argument(
        "--allow-shutdown", action="store_true", help="honour the remote 'shutdown' verb"
    )
    parser.add_argument("--verbose", action="store_true", help="debug logging")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.fleet is not None:
        from ..fleet.launcher import FleetConfig, run_fleet

        fleet_config = FleetConfig(
            shards=args.fleet,
            host=args.host,
            port=args.port,
            store_dir=args.store_dir,
            store_capacity=args.store_capacity,
            cache_capacity=args.cache_capacity,
            registry_capacity=args.registry_capacity,
            max_concurrency=args.max_concurrency,
            max_pending=args.max_pending,
            backend=args.backend,
            backend_workers=args.backend_workers,
            health_interval=args.health_interval,
            allow_shutdown=args.allow_shutdown,
            verbose=args.verbose,
        )
        try:
            asyncio.run(run_fleet(fleet_config))
        except KeyboardInterrupt:
            print("interrupted, shutting down fleet", file=sys.stderr)
        return 0
    config = ServerConfig(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        store_addr=args.store_addr,
        shard_id=args.shard_id,
        cache_capacity=args.cache_capacity,
        registry_capacity=args.registry_capacity,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
        max_queue_wait_seconds=args.max_queue_wait or None,
        max_request_bytes=args.max_request_bytes,
        parallel_waves=args.parallel_waves,
        backend=args.backend,
        backend_workers=args.backend_workers,
        allow_shutdown=args.allow_shutdown,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
