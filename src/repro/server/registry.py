"""The program registry: analyzed :class:`~repro.pipeline.ProgramTypes` by content hash.

The server's hot path.  A program's identity is the SHA-256 of its source
kind, its source text and the analysis environment (lattice + externs + solver
config fingerprint, the same notion the summary store keys on), so

* submitting the same source twice -- from any client -- analyzes once;
* every ``query`` against an analyzed program is a dict lookup, no solving;
* changing the server's environment can never serve stale types, because the
  id itself changes.

The registry is a bounded LRU guarded by a lock: analyses are produced on
executor threads while queries are answered from the event loop.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..obs.metrics import get_registry as _metrics_registry


class ProgramRegistry:
    """Bounded, thread-safe LRU of analyzed programs keyed by content hash."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("program registry capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.admits = 0
        self.evictions = 0

    @staticmethod
    def make_id(kind: str, source: str, environment: str = "") -> str:
        """Content hash identifying one (source, kind, environment) triple."""
        digest = hashlib.sha256()
        for part in (kind, "\x00", environment, "\x00", source):
            digest.update(part.encode("utf-8"))
        return digest.hexdigest()

    def get(self, program_id: str):
        """The analyzed program for this id, or ``None`` (records hit/miss)."""
        with self._lock:
            entry = self._entries.get(program_id)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(program_id)
                self.hits += 1
        if entry is None:
            _metrics_registry().counter("registry_misses_total").inc()
            return None
        _metrics_registry().counter("registry_hits_total").inc()
        return entry

    def admit(self, program_id: str, types) -> None:
        """Publish an analyzed program, evicting least-recently-used entries."""
        with self._lock:
            self._entries[program_id] = types
            self._entries.move_to_end(program_id)
            self.admits += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def admit_if_absent(self, program_id: str, types):
        """Like :meth:`admit`, but the first writer wins.

        Coalesced analyze leaders publish through this: if a racing path (a
        concurrent ``corpus`` batch, say) already admitted the program, the
        existing entry is kept -- and returned -- so late leaders can never
        replace what queries may already have observed.
        """
        with self._lock:
            existing = self._entries.get(program_id)
            if existing is not None:
                self._entries.move_to_end(program_id)
                return existing
            self._entries[program_id] = types
            self.admits += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return types

    def __contains__(self, program_id: str) -> bool:
        with self._lock:
            return program_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "programs": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "admits": self.admits,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
