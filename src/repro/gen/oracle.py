"""Differential oracle harness over generated corpora.

For every program of a seeded generated corpus the harness asserts, across
every executor backend and cache state, that the analysis is *one function*:

* **backend identity** -- ``analyze_program`` through the serial, threads,
  processes and auto executors produces byte-identical results (canonical
  JSON of the typed surface, timings excluded);
* **cache identity** -- a cold cache-backed run, a warm re-run (which must
  perform zero SCC solves), and an incremental re-analysis after a generated
  edit each reproduce the reference result byte-for-byte, and the edit's
  invalidation cone contains the edited function;
* **conservativeness** -- the inferred types score at least
  ``min_conservativeness`` against the generator's ground-truth answer key
  under :func:`repro.eval.metrics.evaluate_program` (the paper's section 6.3
  property, thresholded because stack-aliasing imprecision is expected);
* **derives agreement** -- on sampled per-procedure constraint sets, the
  production :func:`~repro.core.simplify.simplify_constraints` output is a
  superset of the retained seed oracle ``naive_simplify_constraints``
  (``tests/core/naive_reference.py``), and every extra judgement is provable
  on the saturated graph (:func:`repro.core.proves`).

Any violation is recorded as an :class:`OracleMismatch`; a sweep passes only
when there are none.  The whole sweep is reproducible from ``(seed, profile,
count)`` -- the report's ``summary()`` prints the exact CLI line.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import random
import time
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import proves, simplify_constraints
from ..eval.metrics import evaluate_program
from ..service import AnalysisService, IncrementalSession, ServiceConfig
from ..typegen.abstract_interp import generate_program_constraints
from .family import GeneratedFamily, generate_family
from .generator import GeneratedProgram, generate_corpus, generate_edit
from .minimize import conservativeness_failure
from .profile import GenProfile

#: every executor strategy the service accepts, in check order.
ALL_BACKENDS = ("serial", "threads", "processes", "auto")

#: procedures whose constraint sets exceed this are not sampled for the
#: naive-reference comparison (the seed DFS is exponential-ish by design).
MAX_DERIVES_CONSTRAINTS = 90


def result_fingerprint(types) -> str:
    """A canonical digest of the typed surface of one analysis.

    Covers everything a client can observe -- per-procedure payloads, the
    program-wide struct table and the rendered report -- and excludes ``stats``
    (timings and scheduling differ across backends by construction).
    """
    payload = types.to_json()
    payload.pop("stats", None)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_naive_reference():
    """The retained seed algorithms (``tests/core/naive_reference.py``).

    They live with the tests, not the package, so installed copies may not
    have them; returns ``None`` in that case and the derives check is skipped
    (and reported as skipped, never silently).  ``REPRO_NAIVE_REFERENCE``
    overrides the search path.
    """
    candidates = []
    override = os.environ.get("REPRO_NAIVE_REFERENCE")
    if override:
        candidates.append(override)
    here = os.path.dirname(os.path.abspath(__file__))
    candidates.append(
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(here))),
            "tests",
            "core",
            "naive_reference.py",
        )
    )
    for path in candidates:
        if os.path.isfile(path):
            spec = importlib.util.spec_from_file_location("naive_reference", path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return None


@dataclass
class OracleMismatch:
    program: str
    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.program}: [{self.check}] {self.detail}"


@dataclass
class OracleReport:
    """Outcome of one differential sweep."""

    seed: int
    profile: GenProfile
    profile_name: str
    backends: Tuple[str, ...]
    programs: int = 0
    derives_samples: int = 1
    min_conservativeness: float = 0.85
    #: variant families swept (0 = independent-program mode only).
    families: int = 0
    #: members per family, base included.
    family_members: int = 0
    #: check name -> number of times it ran (one count per program+backend).
    checks: Dict[str, int] = dc_field(default_factory=dict)
    mismatches: List[OracleMismatch] = dc_field(default_factory=list)
    skipped: List[str] = dc_field(default_factory=list)
    #: pytest reproducer files the minimizer emitted for this sweep's failures.
    reproducers: List[str] = dc_field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def count(self, check: str) -> None:
        self.checks[check] = self.checks.get(check, 0) + 1

    def summary(self) -> str:
        scope = f"{self.programs} programs"
        family_flags = ""
        if self.families:
            scope += f" + {self.families} families x {self.family_members} members"
            family_flags = f"--families {self.families} --members {self.family_members} "
        lines = [
            f"oracle sweep: {scope}, seed {self.seed}, "
            f"profile {self.profile_name!r}, backends {'/'.join(self.backends)}",
            f"  reproduce: python -m repro gen --oracle --count {self.programs} "
            f"--seed {self.seed} --profile {self.profile_name} "
            f"--backends {','.join(self.backends)} {family_flags}"
            f"--derives-samples {self.derives_samples} "
            f"--min-conservativeness {self.min_conservativeness}",
        ]
        for check in sorted(self.checks):
            lines.append(f"  {check:<24} {self.checks[check]:>6} checks")
        for note in self.skipped:
            lines.append(f"  skipped: {note}")
        for path in self.reproducers:
            lines.append(f"  reproducer: {path}")
        if self.mismatches:
            lines.append(f"  MISMATCHES: {len(self.mismatches)}")
            for mismatch in self.mismatches[:20]:
                lines.append(f"    {mismatch}")
            if len(self.mismatches) > 20:
                lines.append(f"    ... and {len(self.mismatches) - 20} more")
        else:
            lines.append(
                f"  zero mismatches in {self.elapsed_seconds:.1f}s "
                f"({self.elapsed_seconds / max(1, self.programs) * 1000:.0f} ms/program)"
            )
        return "\n".join(lines)


def run_oracle(
    count: int,
    seed: int,
    profile: Optional[GenProfile] = None,
    profile_name: str = "default",
    backends: Sequence[str] = ALL_BACKENDS,
    derives_samples: int = 1,
    min_conservativeness: float = 0.85,
    progress: Optional[Callable[[int, int], None]] = None,
    corpus: Optional[List[GeneratedProgram]] = None,
    families: int = 0,
    family_members: int = 4,
    minimize_dir: Optional[str] = None,
) -> OracleReport:
    """Run the differential oracle over ``count`` generated programs.

    ``corpus`` lets a caller that already generated the corpus (the CLI's
    combined ``--out --oracle`` mode) reuse it instead of regenerating; it
    must be the ``generate_corpus(count, seed, profile)`` corpus for the
    other arguments, which stay authoritative for the reproduce line.

    ``families > 0`` additionally sweeps that many toggle-derived variant
    families of ``family_members`` members each (:mod:`repro.gen.family`):
    per member, backend identity and conservativeness against the member's
    own answer key; per family, *cross-member store reuse* (an SCC whose
    summary an earlier member admitted is never solved again) and
    *session-edit equivalence* (feeding each variant through one live
    :class:`IncrementalSession` fingerprint-matches a cold solve).

    ``minimize_dir`` turns failures into reproducers: the first minimizable
    mismatch per program is ddmin-reduced (:mod:`repro.gen.minimize`) and
    emitted as a pytest file under that directory (``report.reproducers``).
    """
    profile = profile or GenProfile.default()
    backends = tuple(backends)
    report = OracleReport(
        seed=seed,
        profile=profile,
        profile_name=profile_name,
        backends=backends,
        derives_samples=derives_samples,
        min_conservativeness=min_conservativeness,
        family_members=family_members if families else 0,
    )
    naive = load_naive_reference() if derives_samples > 0 else None
    if derives_samples > 0 and naive is None:
        report.skipped.append(
            "derives-agreement (tests/core/naive_reference.py not found; "
            "set REPRO_NAIVE_REFERENCE)"
        )

    start = time.perf_counter()
    reference = AnalysisService(ServiceConfig(use_cache=False))
    backend_services = {
        backend: AnalysisService(ServiceConfig(use_cache=False, executor=backend))
        for backend in backends
        if backend != "serial"
    }
    cache_service = AnalysisService(ServiceConfig(use_cache=True))
    rng = random.Random(seed)
    total = count + families
    try:
        if corpus is None:
            corpus = generate_corpus(count, seed, profile)
        for index, program in enumerate(corpus):
            before = len(report.mismatches)
            _check_program(
                program,
                report,
                reference,
                backend_services,
                cache_service,
                naive,
                derives_samples,
                min_conservativeness,
                rng,
            )
            report.programs += 1
            _emit_reproducers(program, report, before, minimize_dir)
            if progress is not None:
                progress(index + 1, total)
        for index in range(families):
            family = generate_family(
                seed + index, profile, members=family_members,
                name=f"fam{seed}_{index}",
            )
            _check_family(
                family,
                report,
                reference,
                backend_services,
                min_conservativeness,
                minimize_dir,
            )
            report.families += 1
            if progress is not None:
                progress(count + index + 1, total)
    finally:
        reference.close()
        cache_service.close()
        for service in backend_services.values():
            service.close()
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _check_program(
    program: GeneratedProgram,
    report: OracleReport,
    reference: AnalysisService,
    backend_services: Dict[str, AnalysisService],
    cache_service: AnalysisService,
    naive,
    derives_samples: int,
    min_conservativeness: float,
    rng: random.Random,
) -> None:
    from ..frontend import compile_c

    comp = program.compile()
    ref_types = reference.analyze(comp.program)
    ref_fp = result_fingerprint(ref_types)

    # -- (a) backend identity ---------------------------------------------------
    for backend, service in backend_services.items():
        report.count(f"backend:{backend}")
        fp = result_fingerprint(service.analyze(comp.program))
        if fp != ref_fp:
            report.mismatches.append(
                OracleMismatch(
                    program.name,
                    f"backend:{backend}",
                    f"result differs from serial reference (seed {program.seed})",
                )
            )

    # -- (b) cache states -------------------------------------------------------
    session = IncrementalSession(cache_service)
    report.count("cache:cold")
    cold = session.analyze(comp.program)
    if result_fingerprint(cold) != ref_fp:
        report.mismatches.append(
            OracleMismatch(
                program.name, "cache:cold", f"cold cached run differs (seed {program.seed})"
            )
        )
    report.count("cache:warm")
    warm = session.analyze(comp.program)
    if result_fingerprint(warm) != ref_fp:
        report.mismatches.append(
            OracleMismatch(
                program.name, "cache:warm", f"warm re-run differs (seed {program.seed})"
            )
        )
    if warm.stats.get("sccs_solved", -1) != 0:
        report.mismatches.append(
            OracleMismatch(
                program.name,
                "cache:warm",
                f"warm re-run solved {warm.stats.get('sccs_solved')} SCCs, expected 0",
            )
        )

    report.count("cache:incremental")
    edit = generate_edit(program, edit_seed=program.seed)
    edited_comp = compile_c(edit.source)
    incremental = session.analyze(edited_comp.program)
    fresh = reference.analyze(edited_comp.program)
    if result_fingerprint(incremental) != result_fingerprint(fresh):
        report.mismatches.append(
            OracleMismatch(
                program.name,
                "cache:incremental",
                f"incremental re-analysis after editing {edit.function!r} differs "
                f"from a fresh analysis (seed {program.seed})",
            )
        )
    invalidated = incremental.stats.get("invalidated_procedures", [])
    if edit.function not in invalidated:
        report.mismatches.append(
            OracleMismatch(
                program.name,
                "cache:incremental",
                f"edited {edit.function!r} missing from invalidation cone {invalidated}",
            )
        )

    # -- (c) conservativeness vs. ground truth ---------------------------------
    report.count("conservativeness")
    failure = conservativeness_failure(
        program.name, program.source, ref_types, comp.ground_truth, min_conservativeness
    )
    if failure is not None:
        report.mismatches.append(
            OracleMismatch(
                program.name,
                "conservativeness",
                f"(seed {program.seed}) {failure}",
            )
        )

    # -- (d) derives agreement with the seed oracles ----------------------------
    if naive is None or derives_samples <= 0:
        return
    inputs = generate_program_constraints(comp.program)
    known = set(comp.program.procedures)
    eligible = [
        name
        for name in inputs
        if len(inputs[name].constraints) <= MAX_DERIVES_CONSTRAINTS
    ]
    for name in rng.sample(eligible, min(derives_samples, len(eligible))):
        report.count("derives")
        constraints = inputs[name].constraints
        bases = {dtv.base for c in constraints for dtv in (c.left, c.right)}
        interesting = sorted(bases & (known | {name}))
        if not interesting:
            continue
        fast = set(simplify_constraints(constraints, interesting).subtype)
        slow = set(naive.naive_simplify_constraints(constraints, interesting).subtype)
        if not slow <= fast:
            report.mismatches.append(
                OracleMismatch(
                    program.name,
                    "derives",
                    f"{name}: worklist simplification lost "
                    f"{len(slow - fast)} seed judgements (seed {program.seed})",
                )
            )
            continue
        for extra in sorted(fast - slow, key=str):
            if not proves(constraints, extra):
                report.mismatches.append(
                    OracleMismatch(
                        program.name,
                        "derives",
                        f"{name}: unprovable extra judgement {extra} "
                        f"(seed {program.seed})",
                    )
                )
                break


def _check_family(
    family: GeneratedFamily,
    report: OracleReport,
    reference: AnalysisService,
    backend_services: Dict[str, AnalysisService],
    min_conservativeness: float,
    minimize_dir: Optional[str],
) -> None:
    """Family-mode checks: per-member identity plus cross-member reuse.

    Members flow, in order, through one fresh cache-backed service and one
    live :class:`IncrementalSession`, so the session-edit path and the
    summary store see exactly the family's own history:

    * every member's live-session result must fingerprint-match a cold
      uncached solve of that member (``family:session``);
    * an SCC whose store key an earlier member admitted must be served from
      cache, never re-solved (``family:store-reuse``), and every variant must
      actually share summaries with its predecessors -- toggles edit a few
      procedures, not the whole program.
    """
    family_service = AnalysisService(ServiceConfig(use_cache=True))
    session = IncrementalSession(family_service)
    admitted: Dict[str, str] = {}  # store key -> first member that admitted it
    try:
        for member in family.members:
            before = len(report.mismatches)
            comp = member.program.compile()
            ref_types = reference.analyze(comp.program)
            ref_fp = result_fingerprint(ref_types)
            toggles = ", ".join(t.describe() for t in member.toggles) or "<base>"

            for backend, service in backend_services.items():
                report.count(f"family:backend:{backend}")
                fp = result_fingerprint(service.analyze(comp.program))
                if fp != ref_fp:
                    report.mismatches.append(
                        OracleMismatch(
                            member.name,
                            f"family:backend:{backend}",
                            f"variant result differs from serial reference "
                            f"(seed {family.seed}, toggles {toggles})",
                        )
                    )

            report.count("family:conservativeness")
            failure = conservativeness_failure(
                member.name,
                member.source,
                ref_types,
                comp.ground_truth,
                min_conservativeness,
            )
            if failure is not None:
                report.mismatches.append(
                    OracleMismatch(
                        member.name,
                        "family:conservativeness",
                        f"(seed {family.seed}, toggles {toggles}) {failure}",
                    )
                )

            report.count("family:session")
            live = session.analyze(comp.program)
            if result_fingerprint(live) != ref_fp:
                report.mismatches.append(
                    OracleMismatch(
                        member.name,
                        "family:session",
                        f"session edit differs from a cold solve "
                        f"(seed {family.seed}, toggles {toggles})",
                    )
                )

            report.count("family:store-reuse")
            scc_keys: Dict[str, str] = live.stats.get("scc_store_keys", {})
            solved = set(live.stats.get("solved_procedures", []))
            stale = sorted(
                scc
                for scc, key in scc_keys.items()
                if key in admitted and set(scc.split("|")) & solved
            )
            if stale:
                report.mismatches.append(
                    OracleMismatch(
                        member.name,
                        "family:store-reuse",
                        f"re-solved SCCs whose summaries were admitted by "
                        f"{sorted({admitted[scc_keys[s]] for s in stale})}: "
                        f"{stale[:3]} (seed {family.seed})",
                    )
                )
            if member.index > 0 and not any(key in admitted for key in scc_keys.values()):
                report.mismatches.append(
                    OracleMismatch(
                        member.name,
                        "family:store-reuse",
                        f"variant shares no summaries with earlier members "
                        f"(seed {family.seed}, toggles {toggles})",
                    )
                )
            for key in scc_keys.values():
                admitted.setdefault(key, member.name)

            _emit_reproducers(member.program, report, before, minimize_dir)
    finally:
        family_service.close()


def _emit_reproducers(
    program: GeneratedProgram,
    report: OracleReport,
    since: int,
    minimize_dir: Optional[str],
) -> None:
    """ddmin the first minimizable mismatch recorded after ``since`` into a
    committed pytest reproducer (one per program; see repro.gen.minimize)."""
    if minimize_dir is None:
        return
    from .minimize import ORACLE_PREDICATES, emit_regression_test, minimize_program

    for mismatch in report.mismatches[since:]:
        check = mismatch.check
        if check.startswith("family:"):
            check = check[len("family:"):]
        if check not in ORACLE_PREDICATES:
            continue
        try:
            result = minimize_program(
                program, check, profile_name=report.profile_name
            )
        except ValueError:
            # The failure does not reproduce through the standalone
            # predicate (e.g. it needed the sweep's exact cache history).
            continue
        report.reproducers.append(emit_regression_test(result, minimize_dir))
        return
