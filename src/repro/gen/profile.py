"""Tunable feature-mix and scale knobs for the ground-truth program generator.

A :class:`GenProfile` describes *what kind* of mini-C programs
:func:`repro.gen.generate_program` manufactures: how many structs and
functions, how much of the corpus is recursive linked structure versus flat
integer logic, whether multi-level pointers / handler ("function pointer")
idioms / const parameters / deep call chains / mutual recursion / dead code /
polymorphic helpers appear, and at what rates.  Profiles are plain frozen
dataclasses so they hash and compare by value and can be embedded in test
parametrizations; three named presets (``smoke``, ``default``, ``stress``)
cover the common scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class GenProfile:
    """Feature mix and scale of one generated program."""

    #: number of generated struct types.
    n_structs: int = 3
    #: target number of generated library functions (before chains/drivers).
    n_functions: int = 10
    #: fraction of structs that carry a recursive ``next`` link (linked lists).
    recursive_struct_ratio: float = 0.5
    #: fraction of *recursive* structs that are binary trees (``left``/``right``).
    tree_struct_ratio: float = 0.34
    #: probability of emitting multi-level pointer helpers (``T **`` parameters).
    multi_level_pointer_weight: float = 0.5
    #: probability of emitting the handler-registration idiom: a ``void *``
    #: callback parameter stored into a struct slot and registered through the
    #: modelled ``signal`` extern.  (The mini-C frontend has no function-pointer
    #: *syntax*; at the machine-code level this is exactly how code pointers of
    #: unknown interface appear to the analysis.)
    function_pointer_weight: float = 0.4
    #: probability that a read-only pointer parameter is declared ``const``.
    const_ratio: float = 0.75
    #: length of the deep single-call chain (0 disables; each link is its own
    #: SCC, so this directly deepens the condensation DAG).
    call_chain_depth: int = 3
    #: number of mutually-recursive function pairs (each pair is one
    #: multi-procedure SCC).
    mutual_recursion_pairs: int = 1
    #: number of never-called procedures appended to the unit.
    dead_functions: int = 1
    #: probability that constructors allocate through a shared ``xmalloc``-like
    #: wrapper (one procedure re-used at several pointer types -- the paper's
    #: section 2.2 polymorphism idiom).
    polymorphic_weight: float = 0.75
    #: number of driver functions calling a random sample of the library.
    drivers: int = 1
    #: probability of emitting the union-style overlapping-views idiom: two
    #: struct declarations sharing a common ``int tag`` prefix plus readers
    #: that cast one view to the other and touch the overlapping field (the
    #: discriminated-union-with-common-header C pattern).
    union_weight: float = 0.4
    #: number of global scalar variables, each threaded through an accessor
    #: that reads and writes it directly (no address-of; the mini-C code
    #: generator does not support ``&global``).
    n_globals: int = 1
    #: probability of emitting the varargs-style idiom: a ``(count, slots)``
    #: walker over an ``int *`` argument pack plus a forwarder that calls the
    #: variadic ``printf`` extern with more actuals than declared formals.
    varargs_weight: float = 0.4
    #: probability of emitting an indirect-call dispatch table: a struct of
    #: ``void *`` handler slots with init/select helpers and a ``fire``
    #: function that registers the selected slot through ``signal`` -- code
    #: pointers of unknown interface flowing through data.
    dispatch_weight: float = 0.4

    # -- named presets -----------------------------------------------------------

    @classmethod
    def smoke(cls) -> "GenProfile":
        """Small programs for high-count differential sweeps (CI gen-smoke)."""
        return cls(n_structs=2, n_functions=6, call_chain_depth=2, drivers=1)

    @classmethod
    def default(cls) -> "GenProfile":
        return cls()

    @classmethod
    def stress(cls) -> "GenProfile":
        """Larger programs with every feature dialled up."""
        return cls(
            n_structs=6,
            n_functions=28,
            multi_level_pointer_weight=0.8,
            function_pointer_weight=0.6,
            call_chain_depth=6,
            mutual_recursion_pairs=2,
            dead_functions=3,
            drivers=3,
            union_weight=0.8,
            n_globals=2,
            varargs_weight=0.8,
            dispatch_weight=0.8,
        )

    def scaled(self, factor: float) -> "GenProfile":
        """A copy with struct/function counts multiplied by ``factor``."""
        return replace(
            self,
            n_structs=max(1, int(self.n_structs * factor)),
            n_functions=max(2, int(self.n_functions * factor)),
        )


def named_profiles() -> Dict[str, GenProfile]:
    """The presets the CLI and CI address by name."""
    return {
        "smoke": GenProfile.smoke(),
        "default": GenProfile.default(),
        "stress": GenProfile.stress(),
    }
