"""Delta-minimization of oracle failures into committed regression tests.

When the differential oracle trips, the operator historically got a whole
failing program -- dozens of functions, most of them irrelevant.  This module
turns that failure into a *reproducer*: :func:`minimize_program` runs ddmin
(Zeller/Hildebrandt delta debugging) first over whole procedures, then over
the top-level statement groups of each surviving procedure, re-running the
failing oracle predicate at every step; :func:`emit_regression_test` then
writes the minimized program as a ready-to-commit pytest file under
``tests/regress/``.

The emitted test asserts the predicate *passes* on the minimized program: it
keeps failing while the defect is live and pins the fix afterwards, which is
what a committed regression test should do.

Predicates live in :data:`ORACLE_PREDICATES` -- each is a self-contained
re-check of one oracle property (``(name, source) -> failure description or
None``), so a minimized reproducer needs nothing but the repo itself to run.
A candidate program is *valid* when it still compiles through the mini-C
frontend and *failing* when the predicate returns a message; ddmin only ever
steps between valid failing candidates, so the result is 1-minimal at
procedure granularity (removing any single remaining procedure either breaks
compilation or makes the predicate pass) whenever the evaluation budget is
not exhausted.  Everything is deterministic: ddmin visits complements in a
fixed order and the predicates are pure re-analyses.

For end-to-end drills (and the seeded e2e test), the environment variable
``REPRO_ORACLE_INJECT`` forces the conservativeness predicate to fail on any
program whose *source* contains the given substring -- a content-dependent
artificial bug the minimizer can actually localize.
"""

from __future__ import annotations

import hashlib
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..service import AnalysisService, IncrementalSession, ServiceConfig
from .generator import GeneratedProgram, _render
from .profile import GenProfile

#: hard ceiling on predicate evaluations per minimization (ddmin is quadratic
#: in the worst case; the budget keeps a sweep's failure handling bounded).
DEFAULT_MAX_EVALUATIONS = 400


# ---------------------------------------------------------------------------
# Oracle predicates
# ---------------------------------------------------------------------------

_services: Dict[str, AnalysisService] = {}


def _service(executor: Optional[str]) -> AnalysisService:
    """A shared uncached service per executor (process pools stay warm)."""
    key = executor or "serial"
    if key not in _services:
        _services[key] = AnalysisService(
            ServiceConfig(use_cache=False, executor=None if key == "serial" else key)
        )
    return _services[key]


def conservativeness_failure(
    name: str,
    source: str,
    types,
    truth,
    min_conservativeness: float,
) -> Optional[str]:
    """The oracle's conservativeness check as a reusable predicate body.

    Returns a failure description, or ``None`` when the inferred types are
    conservative enough against the answer key.  ``REPRO_ORACLE_INJECT=<text>``
    forces a failure whenever ``<text>`` occurs in ``source`` -- the shared
    injection point both the oracle sweep and the minimizer's end-to-end
    tests use to rehearse the failure path with a localizable artificial bug.
    """
    from ..eval.metrics import evaluate_program

    inject = os.environ.get("REPRO_ORACLE_INJECT")
    if inject and inject in source:
        return f"injected conservativeness failure (REPRO_ORACLE_INJECT={inject!r})"
    metrics = evaluate_program(name, types, truth)
    if metrics.conservativeness < min_conservativeness:
        offenders = [
            f"{c.function}/{c.location}: {c.inferred} vs truth {c.truth}"
            for c in metrics.comparisons
            if not c.conservative
        ]
        return (
            f"{metrics.conservativeness:.2f} < {min_conservativeness:.2f}: "
            + "; ".join(offenders[:3])
        )
    return None


def _conservativeness_predicate(name: str, source: str) -> Optional[str]:
    from ..frontend import compile_c

    comp = compile_c(source)
    types = _service(None).analyze(comp.program)
    return conservativeness_failure(name, source, types, comp.ground_truth, 0.85)


def _backend_predicate(backend: str) -> Callable[[str, str], Optional[str]]:
    def predicate(name: str, source: str) -> Optional[str]:
        from ..frontend import compile_c
        from .oracle import result_fingerprint

        program = compile_c(source).program
        ref = result_fingerprint(_service(None).analyze(program))
        got = result_fingerprint(_service(backend).analyze(program))
        if got != ref:
            return f"{backend} backend result differs from the serial reference"
        return None

    return predicate


def _cache_warm_predicate(name: str, source: str) -> Optional[str]:
    from ..frontend import compile_c
    from .oracle import result_fingerprint

    program = compile_c(source).program
    ref = result_fingerprint(_service(None).analyze(program))
    with AnalysisService(ServiceConfig(use_cache=True)) as cached:
        session = IncrementalSession(cached)
        session.analyze(program)
        warm = session.analyze(program)
    if result_fingerprint(warm) != ref:
        return "warm cached re-run differs from the uncached reference"
    solved = warm.stats.get("sccs_solved", -1)
    if solved != 0:
        return f"warm re-run solved {solved} SCCs, expected 0"
    return None


#: every oracle check the minimizer can re-run standalone, keyed exactly like
#: the sweep's mismatch ``check`` labels (family variants strip ``family:``).
ORACLE_PREDICATES: Dict[str, Callable[[str, str], Optional[str]]] = {
    "conservativeness": _conservativeness_predicate,
    "backend:threads": _backend_predicate("threads"),
    "backend:processes": _backend_predicate("processes"),
    "backend:auto": _backend_predicate("auto"),
    "cache:warm": _cache_warm_predicate,
}


def check_predicate(predicate: str, name: str, source: str) -> Optional[str]:
    """Run one named oracle predicate; the emitted regression tests call this."""
    return ORACLE_PREDICATES[predicate](name, source)


# ---------------------------------------------------------------------------
# ddmin
# ---------------------------------------------------------------------------


def _ddmin(items: List, fails: Callable[[List], bool]) -> List:
    """Classic complement-driven ddmin over ``items``.

    ``fails(subset)`` must be ``True`` for the initial list; the returned list
    still fails and is 1-minimal (no single item can be removed) unless the
    caller's evaluation budget ran out first.  Deterministic: partitions and
    complements are visited in a fixed order.
    """
    current = list(items)
    n = 2
    while len(current) >= 2 and n <= len(current):
        bounds = [round(i * len(current) / n) for i in range(n + 1)]
        reduced = False
        for i in range(n):
            complement = current[: bounds[i]] + current[bounds[i + 1] :]
            if complement and fails(complement):
                current = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    return current


def _split_statements(text: str) -> Tuple[str, List[List[str]], str]:
    """Split a rendered function block into (header, statement groups, footer).

    A group is one top-level statement: a single ``...;`` line, or a compound
    (``while``/``if``) spanning from its opening line to the line where brace
    depth returns to zero -- removing a whole group always leaves the braces
    balanced.
    """
    lines = text.splitlines()
    header, body, footer = lines[0], lines[1:-1], lines[-1]
    groups: List[List[str]] = []
    current: List[str] = []
    depth = 0
    for line in body:
        current.append(line)
        depth += line.count("{") - line.count("}")
        if depth == 0:
            groups.append(current)
            current = []
    if current:  # unbalanced tail: keep it atomic
        groups.append(current)
    return header, groups, footer


def _join_statements(header: str, groups: Sequence[Sequence[str]], footer: str) -> str:
    lines = [header]
    for group in groups:
        lines.extend(group)
    lines.append(footer)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Minimization driver
# ---------------------------------------------------------------------------


@dataclass
class MinimizationResult:
    """Outcome of one ddmin run over a failing generated program."""

    name: str
    seed: int
    profile_name: str
    predicate: str
    #: the predicate's failure message on the *minimized* source.
    failure: str
    original_source: str
    source: str
    functions: List[str]
    evaluations: int

    @property
    def reduction(self) -> float:
        """Minimized size as a fraction of the original (by characters)."""
        return len(self.source) / max(1, len(self.original_source))


def minimize_program(
    program: GeneratedProgram,
    predicate: str,
    profile_name: str = "default",
    max_evaluations: int = DEFAULT_MAX_EVALUATIONS,
) -> MinimizationResult:
    """ddmin ``program`` against ``ORACLE_PREDICATES[predicate]``.

    Raises :class:`ValueError` if the program does not currently fail the
    predicate (nothing to minimize) or the predicate name is unknown.
    """
    if predicate not in ORACLE_PREDICATES:
        raise ValueError(
            f"unknown predicate {predicate!r} (known: {sorted(ORACLE_PREDICATES)})"
        )
    from ..frontend import compile_c

    check = ORACLE_PREDICATES[predicate]
    if check(program.name, program.source) is None:
        raise ValueError(f"{program.name} does not fail predicate {predicate!r}")

    struct_blocks = list(program._struct_blocks)
    global_decls = list(program._global_decls)
    evaluations = 0

    def render(blocks: Sequence[Tuple[str, str]]) -> str:
        return _render(struct_blocks, list(blocks), global_decls)

    def fails(blocks: List[Tuple[str, str]]) -> bool:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return False  # budget exhausted: freeze the current candidate
        evaluations += 1
        source = render(blocks)
        try:
            compile_c(source)
        except Exception:
            return False  # invalid candidate (dangling call/variable/return)
        return check(program.name, source) is not None

    # Pass 1: whole procedures.
    blocks = _ddmin(list(program._blocks), fails)

    # Pass 2: top-level statement groups within each surviving procedure.
    for index in range(len(blocks)):
        name, text = blocks[index]
        header, groups, footer = _split_statements(text)
        if len(groups) < 2:
            continue

        def fails_with(kept: List[List[str]]) -> bool:
            candidate = list(blocks)
            candidate[index] = (name, _join_statements(header, kept, footer))
            return fails(candidate)

        kept = _ddmin(groups, fails_with)
        blocks[index] = (name, _join_statements(header, kept, footer))

    source = render(blocks)
    failure = check(program.name, source)
    assert failure is not None  # ddmin only steps between failing candidates
    return MinimizationResult(
        name=program.name,
        seed=program.seed,
        profile_name=profile_name,
        predicate=predicate,
        failure=failure,
        original_source=program.source,
        source=source,
        functions=[fname for fname, _ in blocks],
        evaluations=evaluations,
    )


# ---------------------------------------------------------------------------
# Regression-test emission
# ---------------------------------------------------------------------------


def emit_regression_test(result: MinimizationResult, out_dir: str = "tests/regress") -> str:
    """Write ``result`` as a self-contained pytest file; returns its path.

    The file name carries a content digest so distinct reproducers never
    collide and re-emitting the same one is idempotent.
    """
    os.makedirs(out_dir, exist_ok=True)
    digest = hashlib.sha256(
        f"{result.predicate}\n{result.source}".encode("utf-8")
    ).hexdigest()[:8]
    slug = re.sub(r"\W+", "_", result.name).strip("_")
    predicate_slug = re.sub(r"\W+", "_", result.predicate).strip("_")
    path = os.path.join(
        out_dir, f"test_regress_{slug}_{predicate_slug}_{digest}.py"
    )
    if '"""' in result.source or result.source.endswith("\\"):
        source_literal = repr(result.source)
    else:
        source_literal = f'"""\\\n{result.source}"""'
    percent = round(result.reduction * 100)
    content = f'''"""Auto-minimized oracle reproducer (see repro.gen.minimize).

Origin: generator seed {result.seed}, profile {result.profile_name!r};
the differential oracle's {result.predicate!r} check failed and ddmin
reduced the program to {percent}% of its original size
({result.evaluations} predicate evaluations).

Failure observed on this minimized program at emission time:
    {result.failure}

Reproduce the original sweep:
    python -m repro gen --oracle --count 1 --seed {result.seed} \\
        --profile {result.profile_name} --minimize

This test asserts the predicate now *passes*: it keeps failing while the
defect is live and pins the fix afterwards.
"""

MINIMIZED_SOURCE = {source_literal}


def test_{slug}_{predicate_slug}():
    from repro.gen.minimize import check_predicate

    failure = check_predicate({result.predicate!r}, {result.name!r}, MINIMIZED_SOURCE)
    assert failure is None, failure
'''
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path
