"""Seeded generator of well-typed mini-C programs with known ground truth.

``generate_program(seed, profile)`` deterministically manufactures one
translation unit exercising the idioms the paper's corpus is interesting for
-- recursive structs (linked lists and binary trees), multi-level pointers,
handler registration (code pointers of unknown interface), ``const``
parameters, deep call chains, mutual recursion, dead procedures, and
polymorphic allocation helpers re-used at several pointer types -- together
with the ground-truth :class:`~repro.frontend.GroundTruth` answer key for
every defined procedure.

Determinism is a hard contract: the only randomness source is a private
``random.Random(seed)``; no ambient randomness, no ``hash()``, no
iteration over unordered containers.  ``generate_program(seed, profile)`` is
byte-identical across calls, processes, and ``PYTHONHASHSEED`` values
(property-tested in ``tests/gen/``).

The answer key is derived by parsing and type checking the emitted source
through the real frontend (no code generation), so it is the same shape --
and provably the same values -- the evaluation compares against after a full
compile.

This generator supersedes the frozen figure-suite templates in
:mod:`repro.eval.workloads` (which must stay byte-stable for the recorded
benchmark numbers); new program idioms are added here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..frontend import (
    CompilationResult,
    GroundTruth,
    compile_c,
    extract_ground_truth,
    parse_c,
    typecheck,
)
from .profile import GenProfile

#: bumped whenever the generator's emission changes for an existing
#: ``(seed, profile)`` pair; recorded in corpus manifests so an emitted
#: corpus is reproducible from the manifest alone.
GENERATOR_VERSION = "2"


@dataclass
class GeneratedProgram:
    """One generated translation unit plus its ground-truth answer key."""

    name: str
    seed: int
    profile: GenProfile
    source: str
    #: defined function names, in emission order.
    functions: List[str]
    #: functions deliberately never called from inside the unit.
    dead_functions: List[str]
    #: declared types of every procedure (the evaluation's answer key).
    ground_truth: GroundTruth
    #: (function name, block text) pairs -- the edit surface for
    #: :func:`generate_edit` and the family toggles.
    _blocks: List[Tuple[str, str]] = dc_field(default_factory=list, repr=False)
    _struct_blocks: List[str] = dc_field(default_factory=list, repr=False)
    _global_decls: List[str] = dc_field(default_factory=list, repr=False)
    _compiled: Optional[CompilationResult] = dc_field(default=None, repr=False)

    def compile(self) -> CompilationResult:
        """Compile to type-erased machine code (cached)."""
        if self._compiled is None:
            self._compiled = compile_c(self.source)
        return self._compiled


@dataclass
class GeneratedEdit:
    """An edited variant of a generated program (for incremental oracles)."""

    source: str
    #: the function whose body changed -- the root of the invalidation cone.
    function: str


class _Builder:
    """Accumulates struct and function blocks for one translation unit."""

    def __init__(self, seed: int, profile: GenProfile, prefix: str) -> None:
        self.rng = random.Random(seed)
        self.profile = profile
        self.prefix = prefix
        self.struct_blocks: List[str] = []
        self.global_decls: List[str] = []
        self.blocks: List[Tuple[str, str]] = []
        #: name -> (param spec strings, returns a value)
        self.sigs: Dict[str, Tuple[List[str], bool]] = {}
        self.list_structs: List[str] = []
        self.tree_structs: List[str] = []
        self.plain_structs: List[str] = []
        self.handler_structs: List[str] = []
        #: struct -> int-typed field names
        self.int_fields: Dict[str, List[str]] = {}
        self.dead: List[str] = []
        self._wipe_emitted = False
        self._xmalloc_emitted = False

    # -- registration ------------------------------------------------------------

    def _add(self, name: str, params: List[str], returns: bool, text: str) -> None:
        if name in self.sigs:
            return
        self.blocks.append((name, text))
        self.sigs[name] = (params, returns)

    @property
    def structs(self) -> List[str]:
        return self.list_structs + self.tree_structs + self.plain_structs

    # -- structs -----------------------------------------------------------------

    def add_struct(self, index: int) -> None:
        name = f"{self.prefix}_s{index}"
        rng = self.rng
        fields: List[Tuple[str, str]] = []
        ints: List[str] = []
        recursive = rng.random() < self.profile.recursive_struct_ratio
        tree = recursive and rng.random() < self.profile.tree_struct_ratio
        if tree:
            fields.append(("left", f"struct {name} *"))
            fields.append(("right", f"struct {name} *"))
            self.tree_structs.append(name)
        elif recursive:
            fields.append(("next", f"struct {name} *"))
            self.list_structs.append(name)
        else:
            self.plain_structs.append(name)
        for i in range(rng.randint(2, 3)):
            kind = rng.random()
            if kind < 0.6:
                fields.append((f"value{i}", "int"))
                ints.append(f"value{i}")
            elif kind < 0.8:
                fields.append((f"count{i}", "unsigned"))
                ints.append(f"count{i}")
            elif self.structs and kind < 0.9:
                other = rng.choice(self.structs)
                fields.append((f"ref{i}", f"struct {other} *"))
            else:
                fields.append((f"fd{i}", "int"))
                ints.append(f"fd{i}")
        if not tree and not recursive and rng.random() < self.profile.function_pointer_weight:
            fields.append(("handler", "void *"))
            self.handler_structs.append(name)
        if not ints:
            fields.append(("value0", "int"))
            ints.append("value0")
        body = "\n".join(f"    {ftype} {fname};" for fname, ftype in fields)
        self.struct_blocks.append(f"struct {name} {{\n{body}\n}};")
        self.int_fields[name] = ints

    # -- polymorphic helpers -----------------------------------------------------

    def ensure_xmalloc(self) -> str:
        name = f"{self.prefix}_xmalloc"
        if not self._xmalloc_emitted:
            self._xmalloc_emitted = True
            self._add(
                name,
                ["unsigned"],
                True,
                f"void * {name}(unsigned size) {{\n"
                f"    void * p;\n"
                f"    p = malloc(size);\n"
                f"    if (p == NULL) {{\n"
                f"        abort();\n"
                f"    }}\n"
                f"    return p;\n"
                f"}}",
            )
        return name

    def ensure_wipe(self) -> str:
        name = f"{self.prefix}_wipe"
        if not self._wipe_emitted:
            self._wipe_emitted = True
            self._add(
                name,
                ["void *", "unsigned"],
                False,
                f"void {name}(void * block, unsigned size) {{\n"
                f"    memset(block, 0, size);\n"
                f"}}",
            )
        return name

    # -- per-struct function templates ---------------------------------------------

    def add_constructor(self, struct: str) -> None:
        name = f"new_{struct}"
        if name in self.sigs:
            return
        lines = [
            f"struct {struct} * {name}(int seed) {{",
            f"    struct {struct} * obj;",
        ]
        if self.rng.random() < self.profile.polymorphic_weight:
            allocator = self.ensure_xmalloc()
            lines.append(
                f"    obj = (struct {struct} *) {allocator}(sizeof(struct {struct}));"
            )
            if self.rng.random() < self.profile.polymorphic_weight:
                wipe = self.ensure_wipe()
                lines.append(f"    {wipe}((void *) obj, sizeof(struct {struct}));")
        else:
            lines.append(
                f"    obj = (struct {struct} *) malloc(sizeof(struct {struct}));"
            )
        if struct in self.list_structs:
            lines.append("    obj->next = NULL;")
        if struct in self.tree_structs:
            lines.append("    obj->left = NULL;")
            lines.append("    obj->right = NULL;")
        field = self.rng.choice(self.int_fields[struct])
        lines.append(f"    obj->{field} = seed;")
        lines.append("    return obj;")
        lines.append("}")
        self._add(name, ["int"], True, "\n".join(lines))

    def add_getter(self, struct: str) -> None:
        field = self.rng.choice(self.int_fields[struct])
        name = f"get_{struct}_{field}"
        const = "const " if self.rng.random() < self.profile.const_ratio else ""
        self._add(
            name,
            [f"{const}struct {struct} *"],
            True,
            f"int {name}({const}struct {struct} * obj) {{\n"
            f"    return obj->{field};\n"
            f"}}",
        )

    def add_setter(self, struct: str) -> None:
        field = self.rng.choice(self.int_fields[struct])
        name = f"set_{struct}_{field}"
        self._add(
            name,
            [f"struct {struct} *", "int"],
            False,
            f"void {name}(struct {struct} * obj, int value) {{\n"
            f"    obj->{field} = value;\n"
            f"}}",
        )

    def add_list_walker(self, struct: str) -> None:
        if struct not in self.list_structs:
            return
        name = f"count_{struct}"
        const = "const " if self.rng.random() < self.profile.const_ratio else ""
        self._add(
            name,
            [f"{const}struct {struct} *"],
            True,
            f"int {name}({const}struct {struct} * head) {{\n"
            f"    int n;\n"
            f"    n = 0;\n"
            f"    while (head != NULL) {{\n"
            f"        n = n + 1;\n"
            f"        head = head->next;\n"
            f"    }}\n"
            f"    return n;\n"
            f"}}",
        )

    def add_list_push(self, struct: str) -> None:
        if struct not in self.list_structs:
            return
        name = f"push_{struct}"
        if name in self.sigs:
            return
        self.add_constructor(struct)
        self._add(
            name,
            [f"struct {struct} *", "int"],
            True,
            f"struct {struct} * {name}(struct {struct} * head, int value) {{\n"
            f"    struct {struct} * node;\n"
            f"    node = new_{struct}(value);\n"
            f"    node->next = head;\n"
            f"    return node;\n"
            f"}}",
        )

    def add_list_release(self, struct: str) -> None:
        if struct not in self.list_structs:
            return
        name = f"release_{struct}"
        self._add(
            name,
            [f"struct {struct} *"],
            False,
            f"void {name}(struct {struct} * head) {{\n"
            f"    while (head != NULL) {{\n"
            f"        struct {struct} * rest;\n"
            f"        rest = head->next;\n"
            f"        free(head);\n"
            f"        head = rest;\n"
            f"    }}\n"
            f"}}",
        )

    def add_tree_size(self, struct: str) -> None:
        if struct not in self.tree_structs:
            return
        name = f"size_{struct}"
        const = "const " if self.rng.random() < self.profile.const_ratio else ""
        self._add(
            name,
            [f"{const}struct {struct} *"],
            True,
            f"int {name}({const}struct {struct} * root) {{\n"
            f"    if (root == NULL) {{\n"
            f"        return 0;\n"
            f"    }}\n"
            f"    return 1 + {name}(root->left) + {name}(root->right);\n"
            f"}}",
        )

    def add_tree_insert(self, struct: str) -> None:
        if struct not in self.tree_structs:
            return
        name = f"insert_{struct}"
        if name in self.sigs:
            return
        self.add_constructor(struct)
        field = self.rng.choice(self.int_fields[struct])
        self._add(
            name,
            [f"struct {struct} *", "int"],
            True,
            f"struct {struct} * {name}(struct {struct} * root, int value) {{\n"
            f"    if (root == NULL) {{\n"
            f"        return new_{struct}(value);\n"
            f"    }}\n"
            f"    if (value < root->{field}) {{\n"
            f"        root->left = {name}(root->left, value);\n"
            f"    }} else {{\n"
            f"        root->right = {name}(root->right, value);\n"
            f"    }}\n"
            f"    return root;\n"
            f"}}",
        )

    # -- multi-level pointers ------------------------------------------------------

    def add_pop_front(self, struct: str) -> None:
        if struct not in self.list_structs:
            return
        name = f"pop_{struct}"
        self._add(
            name,
            [f"struct {struct} **"],
            False,
            f"void {name}(struct {struct} ** slot) {{\n"
            f"    if (*slot != NULL) {{\n"
            f"        *slot = (*slot)->next;\n"
            f"    }}\n"
            f"}}",
        )

    def add_cell_helpers(self) -> None:
        read = f"{self.prefix}_cell_read"
        self._add(
            read,
            ["int **"],
            True,
            f"int {read}(int ** cell) {{\n"
            f"    return *(*cell);\n"
            f"}}",
        )
        write = f"{self.prefix}_cell_write"
        self._add(
            write,
            ["int **", "int"],
            False,
            f"void {write}(int ** cell, int value) {{\n"
            f"    *(*cell) = value;\n"
            f"}}",
        )

    # -- handler ("function pointer") idiom ---------------------------------------

    def add_handler_setter(self, struct: str) -> None:
        if struct not in self.handler_structs:
            return
        name = f"hook_{struct}"
        signum = self.rng.randint(1, 15)
        self._add(
            name,
            [f"struct {struct} *", "void *"],
            False,
            f"void {name}(struct {struct} * obj, void * handler) {{\n"
            f"    obj->handler = handler;\n"
            f"    signal({signum}, handler);\n"
            f"}}",
        )

    # -- scalar logic and libc plumbing -------------------------------------------

    def add_logic(self, index: int) -> None:
        name = f"{self.prefix}_decide{index}"
        threshold = self.rng.randint(1, 100)
        self._add(
            name,
            ["int", "int", "int"],
            True,
            f"int {name}(int a, int b, int flags) {{\n"
            f"    int result;\n"
            f"    if (a > b) {{\n"
            f"        result = a - b;\n"
            f"    }} else {{\n"
            f"        result = b - a;\n"
            f"    }}\n"
            f"    if (flags > {threshold}) {{\n"
            f"        result = result * 2;\n"
            f"    }}\n"
            f"    return result;\n"
            f"}}",
        )

    def add_fd_helper(self) -> None:
        name = f"{self.prefix}_read_into"
        self._add(
            name,
            ["const char *", "int *", "unsigned"],
            True,
            f"int {name}(const char * path, int * buffer, unsigned size) {{\n"
            f"    int fd;\n"
            f"    int got;\n"
            f"    fd = open(path, 0);\n"
            f"    if (fd < 0) {{\n"
            f"        return 0 - 1;\n"
            f"    }}\n"
            f"    got = read(fd, buffer, size);\n"
            f"    close(fd);\n"
            f"    return got;\n"
            f"}}",
        )

    # -- union-style overlapping views ---------------------------------------------

    def add_union_views(self, index: int) -> None:
        """Two struct views sharing an ``int tag`` prefix, read through casts.

        The discriminated-union-with-common-header idiom: code receives one
        view, casts to the other, and touches the overlapping offset-0 field.
        At the machine level both views address the same cell, so the
        analysis sees overlapping field accesses through distinct source
        types.
        """
        view_a = f"{self.prefix}_u{index}a"
        view_b = f"{self.prefix}_u{index}b"
        tail = (
            f"struct {self.rng.choice(self.structs)} * ref0;"
            if self.structs and self.rng.random() < 0.5
            else "int alt0;"
        )
        self.struct_blocks.append(
            f"struct {view_a} {{\n    int tag;\n    int payload;\n}};"
        )
        self.struct_blocks.append(f"struct {view_b} {{\n    int tag;\n    {tail}\n}};")
        self.plain_structs.append(view_a)
        self.int_fields[view_a] = ["tag", "payload"]
        self.plain_structs.append(view_b)
        self.int_fields[view_b] = ["tag"] + (["alt0"] if tail == "int alt0;" else [])
        kind = f"{self.prefix}_u{index}_kind"
        self._add(
            kind,
            [f"struct {view_a} *"],
            True,
            f"int {kind}(struct {view_a} * box) {{\n"
            f"    struct {view_b} * view;\n"
            f"    view = (struct {view_b} *) box;\n"
            f"    return box->tag + view->tag;\n"
            f"}}",
        )
        retag = f"{self.prefix}_u{index}_retag"
        self._add(
            retag,
            [f"struct {view_b} *", "int"],
            False,
            f"void {retag}(struct {view_b} * view, int tag) {{\n"
            f"    struct {view_a} * box;\n"
            f"    box = (struct {view_a} *) view;\n"
            f"    box->tag = tag;\n"
            f"    view->tag = box->tag + 1;\n"
            f"}}",
        )

    # -- global variables ----------------------------------------------------------

    def add_global(self, index: int) -> None:
        """One global scalar plus an accessor that reads and writes it."""
        name = f"{self.prefix}_g{index}"
        unsigned = self.rng.random() < 0.3
        ctype = "unsigned" if unsigned else "int"
        self.global_decls.append(f"{ctype} {name};")
        accessor = f"{self.prefix}_bump{index}"
        self._add(
            accessor,
            ["int"],
            True,
            f"{ctype} {accessor}(int delta) {{\n"
            f"    {name} = {name} + delta;\n"
            f"    return {name};\n"
            f"}}",
        )

    # -- varargs-style idiom -------------------------------------------------------

    def add_varargs_pack(self, index: int) -> None:
        """A ``(count, slots)`` argument-pack walker plus a variadic forward.

        ``printf`` is the one modelled variadic extern; the forwarder passes
        more actuals than the extern declares, which is exactly how varargs
        calls look in the type-erased machine code.
        """
        walker = f"{self.prefix}_vsum{index}"
        self._add(
            walker,
            ["int", "int *"],
            True,
            f"int {walker}(int count, int * slots) {{\n"
            f"    int total;\n"
            f"    int i;\n"
            f"    total = 0;\n"
            f"    i = 0;\n"
            f"    while (i < count) {{\n"
            f"        total = total + slots[i];\n"
            f"        i = i + 1;\n"
            f"    }}\n"
            f"    return total;\n"
            f"}}",
        )
        logger = f"{self.prefix}_logv{index}"
        self._add(
            logger,
            ["const char *", "int", "int"],
            True,
            f"int {logger}(const char * fmt, int a, int b) {{\n"
            f"    return printf(fmt, a, b) + {walker}(a, &b);\n"
            f"}}",
        )

    # -- indirect-call dispatch table ----------------------------------------------

    def add_dispatch_table(self, index: int) -> None:
        """A struct of ``void *`` handler slots with init/select/fire helpers.

        ``fire`` registers the selected slot through the modelled ``signal``
        extern, so code pointers of unknown interface flow into and back out
        of a data structure -- the dispatch-table idiom the paper's corpus is
        full of.
        """
        table = f"{self.prefix}_ops{index}"
        self.struct_blocks.append(
            f"struct {table} {{\n"
            f"    void * on_read;\n"
            f"    void * on_write;\n"
            f"    void * on_fail;\n"
            f"    int uses;\n"
            f"}};"
        )
        self.plain_structs.append(table)
        self.int_fields[table] = ["uses"]
        init = f"init_{table}"
        self._add(
            init,
            [f"struct {table} *", "void *", "void *", "void *"],
            False,
            f"void {init}(struct {table} * table, void * rd, void * wr, void * fl) {{\n"
            f"    table->on_read = rd;\n"
            f"    table->on_write = wr;\n"
            f"    table->on_fail = fl;\n"
            f"    table->uses = 0;\n"
            f"}}",
        )
        select = f"select_{table}"
        self._add(
            select,
            [f"struct {table} *", "int"],
            True,
            f"void * {select}(struct {table} * table, int which) {{\n"
            f"    if (which == 0) {{\n"
            f"        return table->on_read;\n"
            f"    }}\n"
            f"    if (which == 1) {{\n"
            f"        return table->on_write;\n"
            f"    }}\n"
            f"    return table->on_fail;\n"
            f"}}",
        )
        fire = f"fire_{table}"
        signum = self.rng.randint(1, 15)
        self._add(
            fire,
            [f"struct {table} *", "int"],
            False,
            f"void {fire}(struct {table} * table, int which) {{\n"
            f"    table->uses = table->uses + 1;\n"
            f"    signal({signum}, {select}(table, which));\n"
            f"}}",
        )
        self.add_constructor(table)

    # -- call-graph shaping --------------------------------------------------------

    def add_call_chain(self) -> List[str]:
        depth = self.profile.call_chain_depth
        if depth <= 0:
            return []
        names = [f"{self.prefix}_chain{i}" for i in range(depth)]
        self._add(
            names[0],
            ["int"],
            True,
            f"int {names[0]}(int x) {{\n"
            f"    return x * 2 + {self.rng.randint(1, 9)};\n"
            f"}}",
        )
        for i in range(1, depth):
            self._add(
                names[i],
                ["int"],
                True,
                f"int {names[i]}(int x) {{\n"
                f"    return {names[i - 1]}(x + {self.rng.randint(1, 4)});\n"
                f"}}",
            )
        return names

    def add_mutual_pair(self, index: int) -> None:
        even = f"{self.prefix}_mr{index}_even"
        odd = f"{self.prefix}_mr{index}_odd"
        self._add(
            even,
            ["int"],
            True,
            f"int {even}(int n) {{\n"
            f"    if (n < 1) {{\n"
            f"        return 1;\n"
            f"    }}\n"
            f"    return {odd}(n - 1);\n"
            f"}}",
        )
        self._add(
            odd,
            ["int"],
            True,
            f"int {odd}(int n) {{\n"
            f"    if (n < 1) {{\n"
            f"        return 0;\n"
            f"    }}\n"
            f"    return {even}(n - 1);\n"
            f"}}",
        )

    def add_dead(self, index: int) -> None:
        name = f"{self.prefix}_dead{index}"
        shift = self.rng.randint(1, 50)
        self._add(
            name,
            ["int", "int"],
            True,
            f"int {name}(int a, int b) {{\n"
            f"    if (a < b) {{\n"
            f"        return a + {shift};\n"
            f"    }}\n"
            f"    return b - {shift};\n"
            f"}}",
        )
        self.dead.append(name)

    # -- drivers -------------------------------------------------------------------

    def _synthesizable(self, param: str) -> bool:
        if param in ("int", "unsigned"):
            return True
        if param in ("int *", "const int *", "int **", "void *", "const char *"):
            return True
        if param.endswith("**"):
            struct = param.split()[-2]
            return f"new_{struct}" in self.sigs
        if param.startswith(("struct", "const struct")):
            struct = param.split()[-2]
            return f"new_{struct}" in self.sigs
        return False

    def add_driver(self, index: int) -> None:
        name = f"{self.prefix}_driver{index}"
        callable_names = [
            fname
            for fname, (params, _) in self.sigs.items()
            if fname not in self.dead and all(self._synthesizable(p) for p in params)
        ]
        if not callable_names:
            return
        count = min(len(callable_names), self.rng.randint(3, 6))
        chosen = self.rng.sample(callable_names, count)
        locals_decl: List[str] = []
        locals_init: List[str] = []
        declared: Dict[str, bool] = {}
        calls: List[str] = []

        def need_cell() -> None:
            if "cell" not in declared:
                declared["cell"] = True
                locals_decl.append("    int cell;")
                locals_decl.append("    int * cellp;")
                locals_init.append("    cell = 0;")
                locals_init.append("    cellp = &cell;")

        def need_struct(struct: str) -> str:
            var = f"tmp_{struct}"
            if var not in declared:
                declared[var] = True
                locals_decl.append(f"    struct {struct} * {var};")
                locals_init.append(f"    {var} = new_{struct}({self.rng.randint(0, 9)});")
            return var

        for callee in chosen:
            params, returns = self.sigs[callee]
            args: List[str] = []
            for param in params:
                if param in ("int", "unsigned"):
                    args.append(str(self.rng.randint(0, 64)))
                elif param in ("int *", "const int *"):
                    need_cell()
                    args.append("cellp")
                elif param == "int **":
                    need_cell()
                    args.append("&cellp")
                elif param in ("void *", "const char *"):
                    args.append("NULL")
                elif param.endswith("**"):
                    struct = param.split()[-2]
                    var = need_struct(struct)
                    args.append(f"&{var}")
                else:
                    struct = param.split()[-2]
                    args.append(need_struct(struct))
            call = f"{callee}({', '.join(args)})"
            if returns:
                calls.append(f"    acc = acc + {call};")
            else:
                calls.append(f"    {call};")
        body = (
            [f"int {name}(int seed) {{", "    int acc;"]
            + locals_decl
            + ["    acc = seed;"]
            + locals_init
            + calls
            + ["    return acc;", "}"]
        )
        self._add(name, ["int"], True, "\n".join(body))

    # -- assembly ------------------------------------------------------------------

    def build(self) -> Tuple[List[str], List[Tuple[str, str]], List[str]]:
        profile = self.profile
        rng = self.rng
        for i in range(max(1, profile.n_structs)):
            self.add_struct(i)

        per_struct = [
            self.add_getter,
            self.add_setter,
            self.add_constructor,
            self.add_list_walker,
            self.add_list_push,
            self.add_list_release,
            self.add_tree_size,
            self.add_tree_insert,
            self.add_handler_setter,
        ]
        # Guaranteed feature floors, then weighted fill to the target count.
        if profile.multi_level_pointer_weight > 0 and rng.random() < profile.multi_level_pointer_weight:
            self.add_cell_helpers()
        for struct in self.list_structs:
            if rng.random() < profile.multi_level_pointer_weight:
                self.add_pop_front(struct)
        for struct in self.handler_structs:
            self.add_handler_setter(struct)
        self.add_fd_helper()
        if rng.random() < profile.union_weight:
            self.add_union_views(0)
        for i in range(max(0, profile.n_globals)):
            self.add_global(i)
        if rng.random() < profile.varargs_weight:
            self.add_varargs_pack(0)
        if rng.random() < profile.dispatch_weight:
            self.add_dispatch_table(0)

        attempts = 0
        while len(self.sigs) < profile.n_functions and attempts < profile.n_functions * 12:
            attempts += 1
            action = rng.random()
            if action < 0.7 and self.structs:
                rng.choice(per_struct)(rng.choice(self.structs))
            else:
                self.add_logic(len(self.sigs))

        self.add_call_chain()
        for i in range(profile.mutual_recursion_pairs):
            self.add_mutual_pair(i)
        for i in range(max(0, profile.drivers)):
            self.add_driver(i)
        for i in range(max(0, profile.dead_functions)):
            self.add_dead(i)
        return self.struct_blocks, self.blocks, self.dead


def _render(
    struct_blocks: List[str],
    blocks: List[Tuple[str, str]],
    global_decls: Optional[List[str]] = None,
) -> str:
    globals_part = ["\n".join(global_decls)] if global_decls else []
    return (
        "\n\n".join(struct_blocks + globals_part + [text for _, text in blocks]) + "\n"
    )


def generate_program(
    seed: int, profile: Optional[GenProfile] = None, name: Optional[str] = None
) -> GeneratedProgram:
    """Deterministically generate one well-typed program with its answer key."""
    profile = profile or GenProfile.default()
    name = name or f"gen{seed}"
    prefix = name.replace("-", "_")
    builder = _Builder(seed, profile, prefix)
    struct_blocks, blocks, dead = builder.build()
    source = _render(struct_blocks, blocks, builder.global_decls)
    checked = typecheck(parse_c(source))
    truth = extract_ground_truth(checked)
    return GeneratedProgram(
        name=name,
        seed=seed,
        profile=profile,
        source=source,
        functions=[fname for fname, _ in blocks],
        dead_functions=list(dead),
        ground_truth=truth,
        _blocks=blocks,
        _struct_blocks=struct_blocks,
        _global_decls=list(builder.global_decls),
    )


def generate_corpus(
    count: int,
    seed: int,
    profile: Optional[GenProfile] = None,
    name_prefix: str = "gen",
) -> List[GeneratedProgram]:
    """``count`` independent programs; member seeds are pure arithmetic on
    ``seed`` so any member regenerates without the rest."""
    return [
        generate_program(
            seed * 1_000_003 + index, profile, name=f"{name_prefix}{seed}_{index}"
        )
        for index in range(count)
    ]


#: the statement block spliced in by :func:`generate_edit` -- harmless (fresh
#: local, constant store) but fingerprint-changing.
EDIT_STATEMENT = "    { int gen_edit_tmp; gen_edit_tmp = 0; }"


def generate_edit(program: GeneratedProgram, edit_seed: int = 0) -> GeneratedEdit:
    """A deterministic edited variant: one function body gains a no-op block.

    The chosen function's machine code (and therefore its content fingerprint)
    changes while every other block stays byte-identical -- exactly the shape
    of edit :class:`~repro.service.incremental.IncrementalSession` re-solves
    incrementally.
    """
    if not program._blocks:
        raise ValueError("program has no functions to edit")
    rng = random.Random(edit_seed)
    index = rng.randrange(len(program._blocks))
    fname, text = program._blocks[index]
    brace = text.index("{")
    newline = text.index("\n", brace)
    edited_text = text[: newline + 1] + EDIT_STATEMENT + "\n" + text[newline + 1 :]
    blocks = list(program._blocks)
    blocks[index] = (fname, edited_text)
    return GeneratedEdit(
        source=_render(program._struct_blocks, blocks, program._global_decls),
        function=fname,
    )
