"""Ground-truth program generation and the differential oracle harness.

The evaluation of the paper (section 6) runs inference over a large corpus
with known debug-information types.  This package manufactures such corpora
on demand: :func:`generate_program` deterministically emits one well-typed
mini-C program together with its declared-type answer key, :func:`run_oracle`
sweeps a generated corpus through every executor backend and cache state and
asserts they all agree with each other, with the ground truth, and with the
retained seed algorithms.

Typical use::

    from repro.gen import GenProfile, generate_program, run_oracle

    program = generate_program(seed=7, profile=GenProfile.smoke())
    program.source                    # mini-C text
    program.ground_truth              # declared types per procedure
    program.compile().program         # type-erased machine code

    report = run_oracle(count=300, seed=20160613)
    assert report.ok, report.summary()

``python -m repro gen`` exposes the same surface on the command line; the
``generated`` workload family (:func:`repro.eval.workloads.generated_suite`)
feeds it into the evaluation harness.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from ..core.ctype import ctype_to_json
from .family import (
    FamilyMember,
    FamilyToggle,
    GeneratedFamily,
    apply_toggles,
    enumerate_toggles,
    generate_families,
    generate_family,
)
from .generator import (
    EDIT_STATEMENT,
    GENERATOR_VERSION,
    GeneratedEdit,
    GeneratedProgram,
    generate_corpus,
    generate_edit,
    generate_program,
)
from .minimize import (
    ORACLE_PREDICATES,
    MinimizationResult,
    check_predicate,
    emit_regression_test,
    minimize_program,
)
from .oracle import (
    ALL_BACKENDS,
    OracleMismatch,
    OracleReport,
    load_naive_reference,
    result_fingerprint,
    run_oracle,
)
from .profile import GenProfile, named_profiles


def answer_key_json(program: GeneratedProgram) -> dict:
    """The ground-truth answer key as a JSON-able document."""
    truth = program.ground_truth
    return {
        "name": program.name,
        "seed": program.seed,
        "functions": {
            name: {
                "params": [
                    {
                        "location": location,
                        "name": entry.param_names[i] if i < len(entry.param_names) else "",
                        "type": ctype_to_json(ctype),
                        "c": str(ctype),
                        "const": entry.param_const[i] if i < len(entry.param_const) else False,
                    }
                    for i, (location, ctype) in enumerate(entry.params)
                ],
                "return": ctype_to_json(entry.return_type)
                if entry.return_type is not None
                else None,
            }
            for name, entry in sorted(truth.functions.items())
        },
        "structs": {
            name: {"type": ctype_to_json(struct), "c": f"{struct};"}
            for name, struct in sorted(truth.structs.items())
        },
        "dead_functions": list(program.dead_functions),
    }


def family_answer_key_json(family: GeneratedFamily) -> dict:
    """A whole family's answer key: every member's declared types plus the
    exact toggles that derived it from the base (member 0)."""
    return {
        "name": family.name,
        "seed": family.seed,
        "generator_version": GENERATOR_VERSION,
        "members": [
            dict(
                answer_key_json(member.program),
                index=member.index,
                toggles=[toggle.describe() for toggle in member.toggles],
            )
            for member in family.members
        ],
    }


def write_corpus(
    programs: List[GeneratedProgram],
    out_dir: str,
    seed: Optional[int] = None,
    profile_name: Optional[str] = None,
    members: int = 0,
) -> str:
    """Emit a generated corpus to disk: per-program ``.c`` source and
    ``.truth.json`` answer key, plus a ``manifest.json`` naming them all.

    Returns the manifest path.  The manifest alone reproduces the corpus: it
    records the sweep seed, the profile preset name, the family member count
    (0 for an independent corpus) and the generator version alongside each
    program's own seed.
    """
    os.makedirs(out_dir, exist_ok=True)
    manifest = {
        "generator_version": GENERATOR_VERSION,
        "profile": profile_name,
        "seed": seed,
        "count": len(programs),
        "members": members,
        "programs": [],
    }
    for program in programs:
        source_name = f"{program.name}.c"
        truth_name = f"{program.name}.truth.json"
        with open(os.path.join(out_dir, source_name), "w", encoding="utf-8") as handle:
            handle.write(program.source)
        with open(os.path.join(out_dir, truth_name), "w", encoding="utf-8") as handle:
            json.dump(answer_key_json(program), handle, indent=2, sort_keys=True)
            handle.write("\n")
        manifest["programs"].append(
            {
                "name": program.name,
                "seed": program.seed,
                "source": source_name,
                "truth": truth_name,
                "functions": len(program.functions),
            }
        )
    manifest_path = os.path.join(out_dir, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest_path


__all__ = [
    "ALL_BACKENDS",
    "EDIT_STATEMENT",
    "GENERATOR_VERSION",
    "FamilyMember",
    "FamilyToggle",
    "GenProfile",
    "GeneratedEdit",
    "GeneratedFamily",
    "GeneratedProgram",
    "MinimizationResult",
    "ORACLE_PREDICATES",
    "OracleMismatch",
    "OracleReport",
    "answer_key_json",
    "apply_toggles",
    "check_predicate",
    "emit_regression_test",
    "enumerate_toggles",
    "family_answer_key_json",
    "generate_corpus",
    "generate_edit",
    "generate_families",
    "generate_family",
    "generate_program",
    "load_naive_reference",
    "minimize_program",
    "named_profiles",
    "result_fingerprint",
    "run_oracle",
    "write_corpus",
]
