"""Variant *families*: N programs derived from one base by feature toggles.

Real corpora are not independent programs -- they are product lines: many
binaries sharing most of their code, differing in a handful of configuration
choices (in the spirit of "A Core Calculus for Type-safe Product Lines of C
Programs").  :func:`generate_family` manufactures exactly that workload: one
:func:`~repro.gen.generate_program` base plus ``members - 1`` variants, each
obtained by applying a small, *declared* set of deterministic feature-toggle
edits:

* ``add-field`` -- append a fresh ``int`` field to a struct (layout grows,
  every ``sizeof``-taking constructor changes);
* ``remove-field`` -- drop a field no function ever accesses (subsequent
  field offsets shift);
* ``swap-handler`` -- re-target a handler registration: rotate the slot a
  dispatch table's ``select`` returns, or move a ``signal`` registration to a
  different signal number;
* ``inline-helper`` -- inline a call-chain helper into its caller (a call
  edge disappears; the callee may go dead).

Every member re-derives its own ground-truth answer key through the real
parse + typecheck path, so the family carries a per-member answer key; the
member list (with the exact toggles applied) is the family's feature model.

Determinism is the same hard contract as the base generator: toggles are
enumerated in source order, chosen through a private ``random.Random``, and
``generate_family(seed, profile, members)`` is byte-identical across
processes and ``PYTHONHASHSEED`` values.  Variant members share most SCCs
with the base byte-for-byte, which is what makes families the canonical
workload for cross-member summary-store reuse and incremental sessions
(:func:`repro.gen.oracle.run_oracle` with ``members > 0`` asserts both).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import GroundTruth, extract_ground_truth, parse_c, typecheck
from .generator import GeneratedProgram, _render, generate_program
from .profile import GenProfile


class ToggleError(ValueError):
    """A toggle does not apply to this program (pattern not found)."""


@dataclass(frozen=True)
class FamilyToggle:
    """One deterministic feature-toggle edit.

    ``kind`` is one of ``add-field`` / ``remove-field`` / ``swap-handler`` /
    ``inline-helper``; ``target`` names the struct or function edited;
    ``detail`` carries the toggle-specific payload (field name, replacement
    signal number, inlined callee).
    """

    kind: str
    target: str
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.kind}:{self.target}"
        return f"{text}:{self.detail}" if self.detail else text


@dataclass
class FamilyMember:
    """One member of a generated family: the base plus declared toggles."""

    name: str
    index: int
    toggles: Tuple[FamilyToggle, ...]
    program: GeneratedProgram

    @property
    def source(self) -> str:
        return self.program.source

    @property
    def ground_truth(self) -> GroundTruth:
        return self.program.ground_truth


@dataclass
class GeneratedFamily:
    """A base program plus its toggle-derived variants (member 0 is the base)."""

    name: str
    seed: int
    profile: GenProfile
    members: List[FamilyMember]

    @property
    def base(self) -> GeneratedProgram:
        return self.members[0].program

    def answer_key(self) -> Dict[str, GroundTruth]:
        """The per-family answer key: member name -> declared-type tables."""
        return {member.name: member.program.ground_truth for member in self.members}


# ---------------------------------------------------------------------------
# Toggle enumeration
# ---------------------------------------------------------------------------

_STRUCT_NAME = re.compile(r"^struct (\w+) \{")
_FIELD_LINE = re.compile(r"^    [\w* ]*?(\w+);$")
_SIGNAL_CALL = re.compile(r"signal\((\d+), ")
_CHAIN_NAME = re.compile(r"(\w+_chain)(\d+)$")


def _struct_fields(struct_block: str) -> List[str]:
    return [
        match.group(1)
        for line in struct_block.splitlines()
        for match in [_FIELD_LINE.match(line)]
        if match
    ]


def enumerate_toggles(program: GeneratedProgram) -> List[FamilyToggle]:
    """Every toggle applicable to ``program``, in deterministic source order."""
    toggles: List[FamilyToggle] = []
    function_text = "\n".join(text for _, text in program._blocks)
    for struct_block in program._struct_blocks:
        match = _STRUCT_NAME.match(struct_block)
        if not match:  # pragma: no cover - render format guarantees a match
            continue
        struct = match.group(1)
        toggles.append(FamilyToggle("add-field", struct, "fam_extra"))
        fields = _struct_fields(struct_block)
        if len(fields) > 1:
            for field in fields:
                if not re.search(rf"(->|\.)\s*{re.escape(field)}\b", function_text):
                    toggles.append(FamilyToggle("remove-field", struct, field))
    block_names = {name for name, _ in program._blocks}
    for name, text in program._blocks:
        signal_match = _SIGNAL_CALL.search(text)
        if signal_match:
            signum = int(signal_match.group(1))
            toggles.append(FamilyToggle("swap-handler", name, str(signum % 15 + 1)))
        if name.startswith("select_") and "return table->on_read;" in text:
            toggles.append(FamilyToggle("swap-handler", name, "rotate"))
        chain = _CHAIN_NAME.search(name)
        if chain and int(chain.group(2)) > 0:
            helper = f"{chain.group(1)}{int(chain.group(2)) - 1}"
            if helper in block_names and f"{helper}(" in text:
                toggles.append(FamilyToggle("inline-helper", name, helper))
    return toggles


# ---------------------------------------------------------------------------
# Toggle application
# ---------------------------------------------------------------------------


def _apply_to_struct(struct_blocks: List[str], toggle: FamilyToggle) -> List[str]:
    edited = list(struct_blocks)
    for i, block in enumerate(edited):
        match = _STRUCT_NAME.match(block)
        if not match or match.group(1) != toggle.target:
            continue
        if toggle.kind == "add-field":
            if f" {toggle.detail};" in block:
                raise ToggleError(f"{toggle.target} already has {toggle.detail}")
            edited[i] = block.replace("\n};", f"\n    int {toggle.detail};\n}};")
        else:  # remove-field
            lines = block.splitlines()
            kept = [
                line
                for line in lines
                if not (
                    (field := _FIELD_LINE.match(line)) and field.group(1) == toggle.detail
                )
            ]
            if len(kept) == len(lines):
                raise ToggleError(f"{toggle.target} has no field {toggle.detail}")
            edited[i] = "\n".join(kept)
        return edited
    raise ToggleError(f"no struct {toggle.target}")


_ROTATION = [("on_read", "on_write"), ("on_write", "on_fail"), ("on_fail", "on_read")]


def _apply_to_function(blocks: List[Tuple[str, str]], toggle: FamilyToggle) -> List[Tuple[str, str]]:
    edited = list(blocks)
    texts = dict(blocks)
    for i, (name, text) in enumerate(edited):
        if name != toggle.target:
            continue
        if toggle.kind == "swap-handler" and toggle.detail == "rotate":
            for slot, _ in _ROTATION:
                text = text.replace(f"return table->{slot};", f"return table->@{slot};")
            for slot, replacement in _ROTATION:
                text = text.replace(f"return table->@{slot};", f"return table->{replacement};")
        elif toggle.kind == "swap-handler":
            match = _SIGNAL_CALL.search(text)
            if not match:
                raise ToggleError(f"{name} has no signal registration")
            text = text.replace(match.group(0), f"signal({toggle.detail}, ")
        else:  # inline-helper
            helper_text = texts.get(toggle.detail)
            if helper_text is None:
                raise ToggleError(f"no helper {toggle.detail}")
            helper_expr = helper_text[
                helper_text.index("return ") + len("return ") : helper_text.rindex(";")
            ]
            call = re.search(rf"{re.escape(toggle.detail)}\((.*)\)", text)
            if not call:
                raise ToggleError(f"{name} does not call {toggle.detail}")
            inlined = re.sub(r"\bx\b", f"({call.group(1)})", helper_expr)
            text = text[: call.start()] + f"({inlined})" + text[call.end() :]
        if text == texts[toggle.target]:
            raise ToggleError(f"{toggle.describe()} is a no-op")
        edited[i] = (name, text)
        return edited
    raise ToggleError(f"no function {toggle.target}")


def apply_toggles(
    program: GeneratedProgram, toggles: Sequence[FamilyToggle], name: Optional[str] = None
) -> GeneratedProgram:
    """Apply ``toggles`` to ``program``, re-deriving the answer key.

    Raises :class:`ToggleError` if any toggle does not apply, and propagates
    frontend errors if the edited unit no longer typechecks -- callers that
    enumerate candidate toggles (``generate_family``) catch both and move on
    to the next candidate.
    """
    struct_blocks = list(program._struct_blocks)
    blocks = list(program._blocks)
    for toggle in toggles:
        if toggle.kind in ("add-field", "remove-field"):
            struct_blocks = _apply_to_struct(struct_blocks, toggle)
        else:
            blocks = _apply_to_function(blocks, toggle)
    source = _render(struct_blocks, blocks, program._global_decls)
    checked = typecheck(parse_c(source))
    return GeneratedProgram(
        name=name or program.name,
        seed=program.seed,
        profile=program.profile,
        source=source,
        functions=[fname for fname, _ in blocks],
        dead_functions=list(program.dead_functions),
        ground_truth=extract_ground_truth(checked),
        _blocks=blocks,
        _struct_blocks=struct_blocks,
        _global_decls=list(program._global_decls),
    )


# ---------------------------------------------------------------------------
# Family generation
# ---------------------------------------------------------------------------

#: per-member attempts at drawing a valid toggle set before giving up.
_MAX_DRAWS = 24


def generate_family(
    seed: int,
    profile: Optional[GenProfile] = None,
    members: int = 4,
    name: Optional[str] = None,
) -> GeneratedFamily:
    """Deterministically derive a ``members``-strong family from one base.

    Member 0 is the base program; members 1..N-1 each apply one or two
    toggles drawn from :func:`enumerate_toggles`.  Every member re-derives
    its ground truth through parse + typecheck, so ``family.answer_key()``
    is authoritative for all of them.
    """
    if members < 1:
        raise ValueError("a family needs at least one member")
    profile = profile or GenProfile.default()
    name = name or f"fam{seed}"
    base = generate_program(seed, profile, name=name)
    pool = enumerate_toggles(base)
    rng = random.Random(seed * 1_000_003 + members)
    family_members = [FamilyMember(name=base.name, index=0, toggles=(), program=base)]
    for index in range(1, members):
        member: Optional[GeneratedProgram] = None
        chosen: Tuple[FamilyToggle, ...] = ()
        for _ in range(_MAX_DRAWS):
            count = 1 + rng.randrange(min(2, len(pool)))
            candidate = tuple(rng.sample(pool, count))
            try:
                variant = apply_toggles(base, candidate, name=f"{name}_v{index}")
            except (ToggleError, SyntaxError, TypeError):
                continue
            if variant.source != base.source:
                member, chosen = variant, candidate
                break
        if member is None:
            raise RuntimeError(
                f"could not derive family member {index} from seed {seed} "
                f"({len(pool)} candidate toggles)"
            )
        family_members.append(
            FamilyMember(name=member.name, index=index, toggles=chosen, program=member)
        )
    return GeneratedFamily(name=name, seed=seed, profile=profile, members=family_members)


def generate_families(
    count: int,
    seed: int,
    profile: Optional[GenProfile] = None,
    members: int = 4,
    name_prefix: str = "fam",
) -> List[GeneratedFamily]:
    """``count`` independent families; family seeds are pure arithmetic on
    ``seed`` so any family regenerates without the rest."""
    return [
        generate_family(
            seed * 1_000_003 + index,
            profile,
            members=members,
            name=f"{name_prefix}{seed}_{index}",
        )
        for index in range(count)
    ]
