"""repro -- a reproduction of "Polymorphic Type Inference for Machine Code" (Retypd).

Grown from the paper's algorithms into a deployable system: a cached,
incremental, process-parallel analysis service and a network type-query
server.  The most common entry points::

    from repro import analyze_program          # one program -> ProgramTypes
    from repro import analyze_corpus           # many programs, shared summaries
    from repro import AnalysisService          # caching/parallel/incremental driver
    from repro.server import TypeQueryClient   # talk to a running daemon

``docs/paper-map.md`` maps every paper artifact to its implementation,
``docs/protocol.md`` specifies the server wire protocol, and
``docs/operations.md`` is the operator guide.

Subpackages
-----------
``repro.core``
    The type system and inference algorithms (the paper's contribution).
``repro.ir``
    The machine-code intermediate representation substrate.
``repro.typegen``
    Constraint generation by abstract interpretation of the IR.
``repro.frontend``
    A miniature C compiler used to produce realistic, type-erased binaries with
    known ground-truth types.
``repro.baselines``
    Unification-, interval- and propagation-based comparison algorithms.
``repro.eval``
    Benchmark-suite generation, metrics and the evaluation harness.
``repro.service``
    The analysis service layer: content-addressed summary caching, incremental
    re-analysis, SCC-wave parallelism and batched corpus analysis.
``repro.server``
    The type-query server: an asyncio daemon (``python -m repro.server``),
    newline-delimited JSON protocol and sync/async clients that serve analyses
    to concurrent users.

Command line: ``python -m repro analyze file.s [--json]`` for one-shot use.
"""

__version__ = "0.1.0"

from . import core
from .pipeline import FunctionTypes, ProgramTypes, analyze_program
from .service import AnalysisService, IncrementalSession, ServiceConfig, SummaryStore, analyze_corpus

__all__ = [
    "AnalysisService",
    "FunctionTypes",
    "IncrementalSession",
    "ProgramTypes",
    "ServiceConfig",
    "SummaryStore",
    "analyze_corpus",
    "analyze_program",
    "core",
    "__version__",
]
