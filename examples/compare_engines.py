"""Run every inference engine over a synthetic benchmark program and score it.

This is the evaluation of section 6 in miniature: one generated workload, four
engines (Retypd, unification, TIE-like, signature propagation), and the TIE
metrics plus pointer accuracy and const recall for each.

Run with::

    python examples/compare_engines.py [n_functions] [seed]
"""

import sys

from repro.baselines import ALL_ENGINES
from repro.eval.metrics import evaluate_program
from repro.eval.workloads import make_workload


def main() -> None:
    n_functions = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20160613

    workload = make_workload("example", n_functions, seed=seed)
    print(
        f"generated workload: {len(workload.program.procedures)} procedures, "
        f"{workload.instructions} instructions\n"
    )

    header = f"{'engine':<14}{'distance':>10}{'interval':>10}{'conserv.':>10}{'ptr acc.':>10}{'const':>8}{'time (s)':>10}"
    print(header)
    print("-" * len(header))
    for name, engine_cls in ALL_ENGINES.items():
        engine = engine_cls()
        types = engine.analyze(workload.program)
        metrics = evaluate_program(workload.name, types, workload.ground_truth)
        print(
            f"{name:<14}"
            f"{metrics.mean_distance:>10.2f}"
            f"{metrics.mean_interval:>10.2f}"
            f"{metrics.conservativeness:>10.1%}"
            f"{metrics.pointer_accuracy:>10.1%}"
            f"{metrics.const_recall:>8.1%}"
            f"{metrics.analysis_seconds:>10.2f}"
        )

    print()
    print("(lower is better for distance/interval; higher is better otherwise)")
    print("Paper reference points (real binaries, Figures 8/9): Retypd distance 0.54,")
    print("interval 1.2, conservativeness 95%, pointer accuracy 88%, const recall 98%.")


if __name__ == "__main__":
    main()
