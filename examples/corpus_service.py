"""The analysis service layer: corpus batching, warm caches, SCC waves.

Three demonstrations on a synthetic cluster of binaries that statically link
the same library code (the shape of the paper's coreutils/vpx clusters,
Figure 10):

1. ``repro.analyze_corpus`` -- analyze the whole cluster against one shared
   summary store; after the first member, every shared SCC is a cache hit;
2. warm-cache re-analysis -- re-analyzing an unmodified program performs zero
   SCC solves, and editing one procedure re-solves only its SCC and the
   transitive callers (``IncrementalSession`` reports the invalidation cone);
3. the parallel scheduler -- independent SCCs of one topological wave of the
   call-graph condensation are solved concurrently.

Run with::

    python examples/corpus_service.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import AnalysisService, IncrementalSession, ServiceConfig, analyze_corpus
from repro.eval.workloads import make_cluster


def main() -> None:
    print("generating a cluster of binaries sharing a statically-linked library ...")
    workloads = make_cluster(
        "democluster", members=4, shared_functions=18, member_functions=5, seed=2016
    )
    corpus = {workload.name: workload.program for workload in workloads}

    # -- 1. batched corpus analysis over one shared store ----------------------
    print("\n=== analyze_corpus: one shared summary store ===")
    service = AnalysisService()
    report = analyze_corpus(corpus, service=service)
    print(report.summary())
    print(
        f"shared-library reuse: {report.total_cache_hits} SCC summaries served "
        f"from cache ({report.hit_rate:.0%} of lookups)"
    )

    # -- 2. warm-cache and incremental re-analysis -----------------------------
    print("\n=== warm-cache re-analysis ===")
    session = IncrementalSession(service)
    target = workloads[0].program

    start = time.perf_counter()
    first = session.analyze(target)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    second = session.analyze(target)
    warm_seconds = time.perf_counter() - start
    assert second.report() == first.report(), "warm results must be identical"
    print(f"unmodified program:  {second.stats['sccs_solved']} SCCs solved "
          f"(was {first.stats['sccs_solved'] + first.stats['sccs_cached']}), "
          f"{cold_seconds * 1000:.1f} ms -> {warm_seconds * 1000:.1f} ms")

    # Edit one procedure: append a harmless instruction, changing its content
    # hash without changing its meaning.
    from repro.ir.instructions import Nop

    edited = workloads[0].program
    name = sorted(edited.procedures)[0]
    edited.procedures[name].instructions.append(Nop())
    third = session.analyze(edited)
    print(f"after editing {name!r}: invalidation cone = "
          f"{third.stats.get('invalidated_procedures', [])}")
    print(f"re-solved procedures  = {third.stats['solved_procedures']}")

    # -- 3. serial vs. parallel wave scheduling --------------------------------
    print("\n=== SCC-wave scheduling ===")
    big = workloads[-1].program
    serial = AnalysisService(ServiceConfig(use_cache=False, parallel=False))
    parallel = AnalysisService(ServiceConfig(use_cache=False, parallel=True))

    start = time.perf_counter()
    serial_types = serial.analyze(big)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_types = parallel.analyze(big)
    parallel_seconds = time.perf_counter() - start

    assert parallel_types.report() == serial_types.report()
    widths = serial_types.stats["dag_wave_widths"]
    print(f"wave widths: {widths} (max {max(widths)} SCCs solvable concurrently)")
    print(f"serial {serial_seconds * 1000:.1f} ms, "
          f"parallel {parallel_seconds * 1000:.1f} ms -- identical results")


if __name__ == "__main__":
    main()
