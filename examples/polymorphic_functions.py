"""Polymorphic functions in machine code (section 2.2).

``malloc``-style allocators, ``free``, ``memcpy`` and user-defined wrappers
around them are used at many incompatible types.  A monomorphic
(unification-based) analysis merges all of those uses; Retypd instantiates the
callee's type scheme freshly at every callsite, so each caller keeps its own
view.

This example builds a program with one allocation wrapper used for two
different structures, analyzes it with Retypd and with the unification
baseline, and shows how the callsite types differ.

Run with::

    python examples/polymorphic_functions.py
"""

from repro.baselines import RetypdEngine, UnificationEngine
from repro.frontend import compile_c

SOURCE = """
struct point {
    int x;
    int y;
};

struct edge {
    struct point * src;
    struct point * dst;
    int weight;
};

void * xalloc(unsigned size) {
    void * p;
    p = malloc(size);
    if (p == NULL) {
        abort();
    }
    return p;
}

struct point * point_new(int x, int y) {
    struct point * p;
    p = (struct point *) xalloc(sizeof(struct point));
    p->x = x;
    p->y = y;
    return p;
}

struct edge * edge_new(struct point * src, struct point * dst, int weight) {
    struct edge * e;
    e = (struct edge *) xalloc(sizeof(struct edge));
    e->src = src;
    e->dst = dst;
    e->weight = weight;
    return e;
}

int edge_length_squared(const struct edge * e) {
    int dx;
    int dy;
    dx = e->dst->x - e->src->x;
    dy = e->dst->y - e->src->y;
    return dx * dx + dy * dy;
}
"""


def main() -> None:
    compiled = compile_c(SOURCE)
    program = compiled.program

    print("=== Retypd (polymorphic callsite instantiation) ===")
    retypd = RetypdEngine().analyze(program)
    print(retypd.report())
    print()
    print("xalloc's scheme stays fully general (its return is unconstrained):")
    print(retypd.scheme("xalloc"))
    print()

    print("=== Unification baseline (monomorphic) ===")
    unification = UnificationEngine().analyze(program)
    for name in ("point_new", "edge_new", "xalloc"):
        print(unification.signature(name))
    print()
    print(
        "With unification every caller of xalloc shares one return type, so the\n"
        "point and edge structures are merged into a single blob; with Retypd\n"
        "each callsite instantiates the scheme separately and the two structs\n"
        "stay distinct."
    )


if __name__ == "__main__":
    main()
