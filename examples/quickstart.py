"""Quickstart: recover C types from a snippet of disassembly.

This reproduces the paper's running example (Figure 2): ``close_last`` walks a
singly linked list and closes the file descriptor stored in its last node.
Starting from nothing but the machine code, Retypd recovers

* that the parameter is a pointer to a recursive (linked-list) structure,
* that the structure's second field is a file descriptor,
* that the parameter is never written through (so it is ``const``), and
* that the return value is an ``int`` tagged ``#SuccessZ``.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_program

CLOSE_LAST_ASM = """
.extern close

close_last:
    mov edx, [esp+4]
    jmp .loc_8048402
.loc_8048400:
    mov edx, eax
.loc_8048402:
    mov eax, [edx]
    test eax, eax
    jnz .loc_8048400
    mov eax, [edx+4]
    push eax
    call close
    add esp, 4
    ret
"""


def main() -> None:
    types = analyze_program(CLOSE_LAST_ASM)

    print("=== inferred type scheme (Figure 2) ===")
    print(types.scheme("close_last"))
    print()

    print("=== reconstructed C declaration ===")
    print(types.signature("close_last"))
    for name, struct in sorted(types.struct_definitions().items()):
        print(f"{struct};")
    print()

    print("=== analysis statistics ===")
    for key in ("instructions", "cfg_nodes", "total_seconds"):
        print(f"{key:>16}: {types.stats[key]}")


if __name__ == "__main__":
    main()
